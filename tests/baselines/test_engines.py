"""Tests for the end-to-end engines (section 6.2 comparators)."""

import pytest

from repro.baselines import (
    ENGINES,
    EngineUnsupported,
    compile_model_with_engine,
    engine_supported,
    modeled_compile_seconds,
)
from repro.hw import AMPERE, HOPPER, VOLTA
from repro.ir import program_from_graph
from repro.models import build_model, mha_graph
from repro.pipeline import simulate_model


@pytest.fixture(scope="module")
def tiny_bert():
    return build_model("bert", batch=1, seq=128)


class TestAvailabilityMatrix:
    def test_nnfusion_volta_only(self):
        assert engine_supported("nnfusion", VOLTA)
        assert not engine_supported("nnfusion", AMPERE)
        assert not engine_supported("nnfusion", HOPPER)

    def test_bladedisc_not_on_hopper(self):
        assert engine_supported("bladedisc", VOLTA)
        assert engine_supported("bladedisc", AMPERE)
        assert not engine_supported("bladedisc", HOPPER)

    def test_others_everywhere(self):
        for engine in ("pytorch", "tensorrt", "kernl", "spacefusion"):
            for gpu in (VOLTA, AMPERE, HOPPER):
                assert engine_supported(engine, gpu)

    def test_unsupported_raises(self, tiny_bert):
        with pytest.raises(EngineUnsupported):
            compile_model_with_engine(tiny_bert, AMPERE, "nnfusion")

    def test_unknown_engine_raises(self, tiny_bert):
        with pytest.raises(ValueError, match="unknown engine"):
            compile_model_with_engine(tiny_bert, AMPERE, "onnxruntime")


class TestEngineSchedules:
    def test_all_supported_engines_compile_bert(self, tiny_bert):
        for engine in ENGINES:
            if not engine_supported(engine, AMPERE):
                continue
            model = compile_model_with_engine(tiny_bert, AMPERE, engine)
            assert model.subprograms
            counters = simulate_model(model, AMPERE)
            assert counters.time_s > 0

    def test_spacefusion_fuses_most(self, tiny_bert):
        kernels = {}
        for engine in ("spacefusion", "pytorch", "bladedisc"):
            model = compile_model_with_engine(tiny_bert, AMPERE, engine)
            kernels[engine] = sum(
                s.schedule.num_kernels for s in model.subprograms)
        assert kernels["spacefusion"] <= kernels["bladedisc"]
        assert kernels["spacefusion"] < kernels["pytorch"]

    def test_bladedisc_never_fuses_ci_with_mi(self, tiny_bert):
        from repro.ir.traits import is_compute_intensive
        model = compile_model_with_engine(tiny_bert, AMPERE, "bladedisc")
        for sub in model.subprograms:
            for kernel in sub.schedule.kernels:
                g = kernel.exec_graph
                ci = [op for op in g.ops
                      if is_compute_intensive(op, g.dims)]
                if ci:
                    assert len(g.ops) == 1

    def test_kernl_uses_triton_attention(self):
        graph = mha_graph(1, 2, 128, 128, 32)
        graph.ops[0].attrs.setdefault("fusion_group", None)
        prog = program_from_graph(graph)
        model = compile_model_with_engine(prog, AMPERE, "kernl")
        kernels = [k for s in model.subprograms for k in s.schedule.kernels]
        assert any(k.meta.get("baseline") == "fa_triton" for k in kernels)

    def test_tensorrt_fuses_attention(self):
        graph = mha_graph(1, 2, 128, 128, 32)
        prog = program_from_graph(graph)
        model = compile_model_with_engine(prog, AMPERE, "tensorrt")
        kernels = [k for s in model.subprograms for k in s.schedule.kernels]
        assert len(kernels) == 1
        assert kernels[0].meta["baseline"] == "tensorrt"

    def test_cuda_graphs_marked_for_engines(self, tiny_bert):
        for engine in ("tensorrt", "kernl", "bladedisc"):
            model = compile_model_with_engine(tiny_bert, AMPERE, engine)
            assert any(s.schedule.meta.get("cuda_graphs")
                       for s in model.subprograms
                       if s.schedule.kernels)

    def test_pytorch_no_cuda_graphs(self, tiny_bert):
        model = compile_model_with_engine(tiny_bert, AMPERE, "pytorch")
        assert not any(s.schedule.meta.get("cuda_graphs")
                       for s in model.subprograms)


class TestCompileTimeModel:
    def test_spacefusion_records_modeled_compile(self, tiny_bert):
        model = compile_model_with_engine(tiny_bert, AMPERE, "spacefusion")
        assert model.stats.phase_times["modeled_compile"] > 0

    def test_spacefusion_compiles_faster_than_comparators(self, tiny_bert):
        times = {}
        for engine in ("spacefusion", "tensorrt", "bladedisc"):
            model = compile_model_with_engine(tiny_bert, AMPERE, engine)
            times[engine] = model.stats.phase_times["modeled_compile"]
        # Table 5's ordering: SpaceFusion < TensorRT, BladeDISC.
        assert times["spacefusion"] < times["tensorrt"]
        assert times["spacefusion"] < times["bladedisc"]

    def test_modeled_compile_monotone_in_patterns(self, tiny_bert):
        model = compile_model_with_engine(tiny_bert, AMPERE, "tensorrt")
        t = modeled_compile_seconds("tensorrt", model)
        assert t > 20.0
