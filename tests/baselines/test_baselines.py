"""Tests for the baseline schedule generators."""

import pytest

from repro.baselines import (
    FlashAttentionUnavailable,
    schedule_cublaslt,
    schedule_flash_attention,
    schedule_fused_layernorm,
    schedule_pytorch,
    schedule_unfused_primitive,
)
from repro.hw import AMPERE, VOLTA
from repro.models import layernorm_graph, lstm_cell_graph, mha_graph, mlp_graph


class TestUnfused:
    def test_one_kernel_per_op(self, small_mha):
        sched = schedule_unfused_primitive(small_mha, AMPERE)
        assert sched.num_kernels == len(small_mha.ops)

    def test_dispatch_overhead_flag(self, small_mha):
        with_fw = schedule_unfused_primitive(small_mha, AMPERE)
        without = schedule_unfused_primitive(small_mha, AMPERE,
                                             framework_overhead=False)
        assert "dispatch_overhead" in with_fw.meta
        assert "dispatch_overhead" not in without.meta


class TestPyTorch:
    def test_softmax_group_fused(self):
        # The model-zoo MHA tags its softmax ops; PyTorch fuses that group.
        graph = mha_graph(1, 1, 64, 64, 16, scaled=False)
        sched = schedule_pytorch(graph, AMPERE)
        # GEMM, GEMM as single kernels + 1 fused softmax kernel.
        assert sched.num_kernels == 3
        assert max(len(k.exec_graph.ops) for k in sched.kernels) == 5

    def test_untagged_graph_runs_per_op(self, small_mha):
        # The conftest MHA is built from raw primitives (no tags): eager
        # PyTorch launches one kernel per op.
        sched = schedule_pytorch(small_mha, AMPERE)
        assert sched.num_kernels == len(small_mha.ops)

    def test_layernorm_group_fused(self, small_ln):
        sched = schedule_pytorch(small_ln, AMPERE)
        assert sched.num_kernels == 1

    def test_rmsnorm_runs_eager(self, small_rmsnorm):
        # Huggingface RMSNorm is plain python ops: one kernel per op.
        sched = schedule_pytorch(small_rmsnorm, AMPERE)
        assert sched.num_kernels == len(small_rmsnorm.ops)

    def test_lstm_five_kernel_structure(self, small_lstm):
        sched = schedule_pytorch(small_lstm, AMPERE,
                                 framework_overhead=False,
                                 fuse_groups="all")
        # 2 GEMMs + 3 hand-grouped element-wise kernels (section 6.1).
        assert sched.num_kernels == 5


class TestCublasLt:
    def test_mlp_one_kernel_per_layer(self):
        graph = mlp_graph(4, 64, 32, 32)
        sched = schedule_cublaslt(graph, AMPERE)
        assert sched.num_kernels == 4
        for kernel in sched.kernels:
            kinds = [op.kind for op in kernel.exec_graph.ops]
            assert kinds[0] == "matmul"

    def test_plain_cublas_no_epilogue(self):
        graph = mlp_graph(2, 64, 32, 32)
        lt = schedule_cublaslt(graph, AMPERE)
        plain = schedule_cublaslt(graph, AMPERE, fuse_epilogue=False)
        assert plain.num_kernels > lt.num_kernels

    def test_lstm_kernel_count_between_unfused_and_fused(self, small_lstm):
        sched = schedule_cublaslt(small_lstm, AMPERE)
        assert 2 < sched.num_kernels < len(small_lstm.ops)

    def test_epilogue_stops_at_reduction(self, small_softmax_gemm):
        sched = schedule_cublaslt(small_softmax_gemm, AMPERE)
        for kernel in sched.kernels:
            ops = kernel.exec_graph.ops
            if any(op.is_contraction for op in ops):
                assert not any(op.kind.startswith("reduce_") for op in ops
                               if not op.is_contraction)


class TestFlashAttention:
    def test_variants_single_kernel(self, small_mha):
        for variant in ("fa1", "fa2", "fa_triton"):
            sched = schedule_flash_attention(small_mha, AMPERE, variant)
            assert sched.num_kernels == 1
            assert sched.kernels[0].plan.uses_uta

    def test_fa2_unavailable_on_volta(self, small_mha):
        with pytest.raises(FlashAttentionUnavailable):
            schedule_flash_attention(small_mha, VOLTA, "fa2")

    def test_fa1_available_on_volta(self, small_mha):
        sched = schedule_flash_attention(small_mha, VOLTA, "fa1")
        assert sched.num_kernels == 1

    def test_fa1_spills_output(self, small_mha):
        sched = schedule_flash_attention(small_mha, AMPERE, "fa1")
        assert sched.kernels[0].meta["output_spill_factor"] > 1

    def test_fa2_does_not_spill(self, small_mha):
        sched = schedule_flash_attention(small_mha, AMPERE, "fa2")
        assert "output_spill_factor" not in sched.kernels[0].meta

    def test_unknown_variant_raises(self, small_mha):
        with pytest.raises(ValueError):
            schedule_flash_attention(small_mha, AMPERE, "fa9")

    def test_non_mha_graph_raises(self, small_ln):
        with pytest.raises(ValueError):
            schedule_flash_attention(small_ln, AMPERE, "fa2")

    def test_batched_mha_blocks_lead_dims(self, batched_mha):
        sched = schedule_flash_attention(batched_mha, AMPERE, "fa2")
        cfg = sched.kernels[0].config
        assert cfg.block_of("b") == 1
        assert cfg.block_of("h") == 1


class TestFusedLayerNorm:
    def test_variants_single_kernel(self, small_ln):
        for variant in ("pytorch_op", "apex", "ln_triton"):
            sched = schedule_fused_layernorm(small_ln, AMPERE, variant)
            assert sched.num_kernels == 1

    def test_apex_persistent_when_it_fits(self, small_ln):
        sched = schedule_fused_layernorm(small_ln, AMPERE, "apex")
        assert sched.kernels[0].plan is None  # single pass

    def test_apex_falls_back_for_huge_rows(self):
        graph = layernorm_graph(64, 65536)
        sched = schedule_fused_layernorm(graph, AMPERE, "apex")
        assert sched.kernels[0].plan is not None  # two-pass fallback

    def test_pytorch_op_one_row_blocks(self, small_ln):
        sched = schedule_fused_layernorm(small_ln, AMPERE, "pytorch_op")
        assert sched.kernels[0].config.block_of("m") == 1

    def test_unknown_variant_raises(self, small_ln):
        with pytest.raises(ValueError):
            schedule_fused_layernorm(small_ln, AMPERE, "oneflow")
