"""Tests for the tile-graph fuser and the Figure-2 motivation experiment."""

import numpy as np
import pytest

from repro.baselines.welder_tilegraph import (
    DEFAULT_TILE,
    group_smem_bytes,
    propagate_tiles,
    schedule_welder,
    tile_graph_fuse,
)
from repro.bench.motivation import fig2_motivation
from repro.hw import AMPERE, VOLTA
from repro.models import mha_graph, softmax_gemm_graph
from repro.pipeline import compile_for, simulate
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds


class TestTilePropagation:
    def test_reduce_demands_full_extent(self):
        """The paper's core observation: a reduction's input tile spans the
        whole reduced dimension (Figure 2(a))."""
        graph = softmax_gemm_graph(64, 256, 32)
        ops = graph.topological_ops()
        plan = propagate_tiles(graph, ops, {d: 16 for d in
                                            graph.dims.names()})
        # Softmax's input X is demanded at (tile_m, full K).
        assert plan.tiles["X"]["m"] == 16
        assert plan.tiles["X"]["k"] == 256

    def test_aligned_intermediate_is_tile_by_k(self):
        """Figure 2(c): the stitched intermediate is TileM_align x K —
        16x256 fp16 = 8 KiB per tensor."""
        graph = softmax_gemm_graph(64, 256, 32)
        ops = graph.topological_ops()
        plan = propagate_tiles(graph, ops, {d: 16 for d in
                                            graph.dims.names()})
        div_out = next(op.output for op in graph.ops if op.kind == "div")
        assert plan.tile_bytes(graph, div_out) == 16 * 256 * 2

    def test_smem_grows_linearly_with_k(self):
        sizes = {}
        for k in (256, 512, 1024):
            graph = softmax_gemm_graph(64, k, 32)
            ops = graph.topological_ops()
            plan = propagate_tiles(graph, ops,
                                   {d: 16 for d in graph.dims.names()})
            sizes[k] = group_smem_bytes(graph, ops, plan)
        assert sizes[512] == pytest.approx(2 * sizes[256], rel=0.01)
        assert sizes[1024] == pytest.approx(4 * sizes[256], rel=0.01)

    def test_elementwise_passes_tile_through(self):
        from repro.ir import GraphBuilder
        b = GraphBuilder("g")
        x = b.input("X", [("m", 64), ("n", 32)])
        e = b.unary("exp", x)
        b.unary("relu", e, out_name="Y")
        graph = b.build()
        plan = propagate_tiles(graph, graph.topological_ops(),
                               {"m": 8, "n": 8})
        assert plan.tiles["X"] == {"m": 8, "n": 8}


class TestTileGraphFusion:
    def test_small_k_fuses_single_group(self):
        graph = softmax_gemm_graph(4096, 256, 64)
        groups = tile_graph_fuse(graph, VOLTA)
        assert len(groups) == 1
        assert groups[0].smem_bytes <= VOLTA.smem_per_block

    def test_large_k_fusion_failure(self):
        """Figure 2(c)'s K=1024 failure: 16 x 1024 intermediates overflow
        Volta's 96 KiB shared memory, cutting the kernel."""
        graph = softmax_gemm_graph(4096, 1024, 64)
        groups = tile_graph_fuse(graph, VOLTA)
        assert len(groups) > 1

    def test_every_group_fits_budget(self):
        for k in (256, 1024, 4096):
            graph = softmax_gemm_graph(2048, k, 64)
            for group in tile_graph_fuse(graph, VOLTA):
                if len(group.ops) > 1:
                    assert group.smem_bytes <= VOLTA.smem_per_block

    def test_groups_cover_all_ops(self):
        graph = mha_graph(1, 2, 256, 256, 64)
        groups = tile_graph_fuse(graph, AMPERE)
        covered = [op.name for g in groups for op in g.ops]
        assert sorted(covered) == sorted(op.name for op in graph.ops)


class TestWelderSchedules:
    def test_schedule_executes_correctly(self):
        graph = softmax_gemm_graph(64, 48, 24)
        sched = schedule_welder(graph, AMPERE)
        feeds = random_feeds(graph, seed=0)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["Out"], ref["Out"], atol=1e-9)

    def test_split_schedule_still_correct(self):
        graph = softmax_gemm_graph(128, 1024, 32)
        sched = schedule_welder(graph, VOLTA)
        assert sched.num_kernels > 1
        feeds = random_feeds(graph, seed=1)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["Out"], ref["Out"], atol=1e-8)

    def test_never_uses_uta(self):
        graph = mha_graph(1, 2, 512, 512, 64)
        sched = schedule_welder(graph, AMPERE)
        for kernel in sched.kernels:
            if kernel.plan is not None:
                assert not kernel.plan.uses_uta


class TestFig2Motivation:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_motivation("volta", k_values=(256, 1024, 2048))

    def test_k256_both_fuse(self, result):
        row = result.filtered(k=256)[0]
        assert row["welder_fused"]
        assert row["spacefusion_kernels"] == 1

    def test_k1024_alignment_fails_spacefusion_survives(self, result):
        """The paper's headline contrast, quantified."""
        row = result.filtered(k=1024)[0]
        assert not row["welder_fused"]
        assert row["spacefusion_kernels"] == 1
        assert row["speedup_vs_welder"] > 1.3

    def test_aligned_tile_matches_paper_example(self, result):
        # 16x256 intermediate tiles: 3 stitched intermediates at 8 KiB.
        row = result.filtered(k=256)[0]
        assert row["aligned_tile_kb"] == pytest.approx(24.06, abs=0.1)

    def test_gap_grows_with_k(self, result):
        sus = [r["speedup_vs_welder"] for r in result.rows]
        assert sus[-1] > sus[0]
