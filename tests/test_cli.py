"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, WORKLOADS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_inspect_args(self):
        args = build_parser().parse_args(["inspect", "mha", "--dot"])
        assert args.workload == "mha" and args.dot

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "resnet"])

    def test_every_experiment_named(self):
        for exp in ("fig11a", "fig13", "fig14", "table4", "table6"):
            assert exp in EXPERIMENTS


class TestCommands:
    def test_inspect_prints_smg(self, capsys):
        assert main(["inspect", "softmax-gemm"]) == 0
        out = capsys.readouterr().out
        assert "SMG" in out and "A2O chains" in out

    def test_inspect_dot(self, capsys):
        assert main(["inspect", "softmax-gemm", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_compile_reports_schedule(self, capsys):
        assert main(["compile", "softmax-gemm", "--gpu", "volta"]) == 0
        out = capsys.readouterr().out
        assert "modelled cost" in out and "kernel" in out

    def test_compile_pseudocode_flag(self, capsys):
        assert main(["compile", "softmax-gemm", "--pseudocode"]) == 0
        assert "parallel_for" in capsys.readouterr().out

    def test_validate_passes(self, capsys):
        assert main(["validate", "softmax-gemm", "--seed", "3"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_bench_runs_small_experiment(self, capsys):
        assert main(["bench", "table4"]) == 0
        assert "Compilation time" in capsys.readouterr().out

    def test_all_workloads_buildable(self):
        for fn in WORKLOADS.values():
            graph = fn()
            assert graph.ops

    def test_compile_cache_dir_miss_then_hit(self, capsys, tmp_path):
        assert main(["compile", "layernorm",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "MISS" in capsys.readouterr().out
        assert main(["compile", "layernorm",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "HIT" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_demo_reports_stats(self, capsys, tmp_path):
        assert main(["serve", "layernorm", "--requests", "8",
                     "--clients", "4", "--workers", "2",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 wrong answer(s)" in out
        assert "serve-stats" in out
        assert "requests_served" in out
        assert "state=ready" in out

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "mlp"])
        assert args.clients == 4 and args.max_batch == 8
        assert args.fn is not None

    def test_serve_rejects_nonpositive_knobs(self, capsys):
        assert main(["serve", "mlp", "--clients", "0"]) == 2
        assert "--clients" in capsys.readouterr().err
        assert main(["serve", "mlp", "--max-batch", "0"]) == 2
        assert "--max-batch" in capsys.readouterr().err
