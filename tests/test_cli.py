"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, WORKLOADS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_inspect_args(self):
        args = build_parser().parse_args(["inspect", "mha", "--dot"])
        assert args.workload == "mha" and args.dot

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "resnet"])

    def test_every_experiment_named(self):
        for exp in ("fig11a", "fig13", "fig14", "table4", "table6"):
            assert exp in EXPERIMENTS


class TestCommands:
    def test_inspect_prints_smg(self, capsys):
        assert main(["inspect", "softmax-gemm"]) == 0
        out = capsys.readouterr().out
        assert "SMG" in out and "A2O chains" in out

    def test_inspect_dot(self, capsys):
        assert main(["inspect", "softmax-gemm", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_compile_reports_schedule(self, capsys):
        assert main(["compile", "softmax-gemm", "--gpu", "volta"]) == 0
        out = capsys.readouterr().out
        assert "modelled cost" in out and "kernel" in out

    def test_compile_pseudocode_flag(self, capsys):
        assert main(["compile", "softmax-gemm", "--pseudocode"]) == 0
        assert "parallel_for" in capsys.readouterr().out

    def test_validate_passes(self, capsys):
        assert main(["validate", "softmax-gemm", "--seed", "3"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_bench_runs_small_experiment(self, capsys):
        assert main(["bench", "table4"]) == 0
        assert "Compilation time" in capsys.readouterr().out

    def test_all_workloads_buildable(self):
        for fn in WORKLOADS.values():
            graph = fn()
            assert graph.ops
