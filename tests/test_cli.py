"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, WORKLOADS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_inspect_args(self):
        args = build_parser().parse_args(["inspect", "mha", "--dot"])
        assert args.workload == "mha" and args.dot

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "resnet"])

    def test_every_experiment_named(self):
        for exp in ("fig11a", "fig13", "fig14", "table4", "table6"):
            assert exp in EXPERIMENTS


class TestCommands:
    def test_inspect_prints_smg(self, capsys):
        assert main(["inspect", "softmax-gemm"]) == 0
        out = capsys.readouterr().out
        assert "SMG" in out and "A2O chains" in out

    def test_inspect_dot(self, capsys):
        assert main(["inspect", "softmax-gemm", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_compile_reports_schedule(self, capsys):
        assert main(["compile", "softmax-gemm", "--gpu", "volta"]) == 0
        out = capsys.readouterr().out
        assert "modelled cost" in out and "kernel" in out

    def test_compile_pseudocode_flag(self, capsys):
        assert main(["compile", "softmax-gemm", "--pseudocode"]) == 0
        assert "parallel_for" in capsys.readouterr().out

    def test_validate_passes(self, capsys):
        assert main(["validate", "softmax-gemm", "--seed", "3"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_bench_runs_small_experiment(self, capsys):
        assert main(["bench", "table4"]) == 0
        assert "Compilation time" in capsys.readouterr().out

    def test_all_workloads_buildable(self):
        for fn in WORKLOADS.values():
            graph = fn()
            assert graph.ops

    def test_compile_cache_dir_miss_then_hit(self, capsys, tmp_path):
        assert main(["compile", "layernorm",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "MISS" in capsys.readouterr().out
        assert main(["compile", "layernorm",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "HIT" in capsys.readouterr().out


class TestValidateCommand:
    def test_nan_output_fails_validation(self, capsys, monkeypatch):
        """Regression: a NaN-producing schedule used to exit 0 because
        ``max(0.0, nan)`` stays 0.0.  The NaN-safe reduction must make
        ``validate`` exit non-zero."""
        import repro.cli as cli

        def nan_engine(schedule, feeds, dtype=np.float64):
            graph = WORKLOADS["softmax-gemm"]()
            from repro.runtime.kernels import execute_graph_reference
            env = {k: np.asarray(v, dtype=np.float64).copy()
                   for k, v in execute_graph_reference(
                       graph, feeds, dtype=dtype).items()}
            next(iter(env.values())).flat[0] = np.nan
            return env

        monkeypatch.setattr(cli, "execute_schedule", nan_engine)
        assert main(["validate", "softmax-gemm"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "nan" in out.lower()

    def test_float32_engine_passes_with_dtype_tolerance(self, capsys):
        assert main(["validate", "softmax-gemm", "--dtype", "float32"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "[float32]" in out

    def test_explicit_tol_overrides_default(self, capsys):
        assert main(["validate", "softmax-gemm", "--dtype", "float32",
                     "--tol", "1e-30"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_validate_parser_flags(self):
        args = build_parser().parse_args(
            ["validate", "mha", "--dtype", "float16", "--tol", "0.5",
             "--engine", "compiled"])
        assert args.dtype == "float16" and args.tol == 0.5
        assert args.engine == "compiled"

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "mha", "--dtype", "int8"])


class TestAuditCommand:
    def test_audit_smoke_with_selftest_and_json(self, capsys, tmp_path):
        """One small workload end to end: static audit + oracle + seeded
        mutations + JSON report."""
        import json

        out_json = tmp_path / "audit.json"
        assert main(["audit", "--workloads", "mlp", "--gpus", "volta",
                     "--selftest", "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "audit clean" in out
        assert "oracle" in out
        assert "selftest" in out
        payload = json.loads(out_json.read_text())
        assert payload["failures"] == 0
        assert payload["reports"][0]["ok"] is True
        assert payload["reports"][0]["oracle_ok"] is True
        assert payload["reports"][0]["selftest_missed"] == []

    def test_audit_static_only(self, capsys):
        assert main(["audit", "--workloads", "layernorm",
                     "--gpus", "ampere", "--no-oracle"]) == 0
        out = capsys.readouterr().out
        assert "audit clean" in out
        assert "oracle" not in out

    def test_audit_parser_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.oracle is True
        assert args.selftest is False and args.zoo is False
        assert args.workloads is None and args.gpus is None
        assert args.fn is not None

    def test_audit_rejects_unknown_arch(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--gpus", "tpu"])


class TestTraceCommand:
    def test_trace_prints_breakdown(self, capsys):
        assert main(["trace", "layernorm"]) == 0
        out = capsys.readouterr().out
        assert "compile breakdown" in out
        assert "tuning" in out
        assert "total compile time" in out
        assert "raw span totals" in out

    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        """Acceptance: the exported file is loadable trace_event JSON and
        its per-phase durations sum to the reported compile wall time."""
        import json
        import re

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        assert main(["trace", "mlp", "--chrome-trace", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "chrome trace written" in out
        trace = json.loads(out_path.read_text())
        assert validate_chrome_trace(trace) == []
        assert any(ev["ph"] == "X" for ev in trace["traceEvents"])
        # Tuning dominates the printed breakdown, and the phase rows sum
        # to the reported total (the breakdown is exhaustive).
        total = float(re.search(r"total compile time: ([0-9.]+)s", out)
                      .group(1))
        breakdown_block = out.split("raw span totals")[0]
        rows = re.findall(r"^(\w+)\s+\d+\s+([0-9.]+)s", breakdown_block,
                          re.M)
        phase_sum = sum(float(s) for _name, s in rows)
        assert phase_sum == pytest.approx(total, rel=0.05)
        tuning = next(float(s) for name, s in rows if name == "tuning")
        assert tuning > 0.5 * total

    def test_trace_parser(self):
        args = build_parser().parse_args(
            ["trace", "mha", "--chrome-trace", "/tmp/t.json"])
        assert args.workload == "mha" and args.chrome_trace == "/tmp/t.json"
        assert args.fn is not None


class TestServeCommand:
    def test_serve_demo_reports_stats(self, capsys, tmp_path):
        assert main(["serve", "layernorm", "--requests", "8",
                     "--clients", "4", "--workers", "2",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 wrong answer(s)" in out
        assert "serve-stats" in out
        assert "requests_served" in out
        assert "state=ready" in out
        assert "p95<=" in out                 # percentiles in the report

    def test_serve_metrics_out_writes_prometheus(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        assert main(["serve", "layernorm", "--requests", "4",
                     "--clients", "2", "--cache-dir", str(tmp_path / "c"),
                     "--metrics-out", str(prom)]) == 0
        text = prom.read_text()
        assert "# TYPE repro_requests_served counter" in text
        assert "# TYPE repro_request_latency histogram" in text
        assert 'repro_request_latency_bucket{le="+Inf"}' in text

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "mlp"])
        assert args.clients == 4 and args.max_batch == 8
        assert args.fn is not None

    def test_serve_rejects_nonpositive_knobs(self, capsys):
        assert main(["serve", "mlp", "--clients", "0"]) == 2
        assert "--clients" in capsys.readouterr().err
        assert main(["serve", "mlp", "--max-batch", "0"]) == 2
        assert "--max-batch" in capsys.readouterr().err
