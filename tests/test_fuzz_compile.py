"""Compiler fuzzing: random dataflow DAGs must compile and run correctly.

The strongest correctness evidence a compiler can have: generate random
graphs mixing element-wise ops, broadcasts, reductions and contractions,
run the whole pipeline (SMG -> slicing -> partitioning -> tuning), execute
the resulting schedule, and require equality with the unfused reference.
Every path — UTA chains, Simple Aggregate, pass-2 epilogues, partition
fallbacks, per-op fallbacks — gets exercised by some generated graph.

Three generator axes go beyond the barrier-free 2-D (m, n) base space:

* an optional third (batch) dimension;
* reshape/transpose layout barriers (compiled via program partitioning);
* float32 execution through the differential oracle, exercising the
  compiled engine's non-float64 interpreter fallback for temporal kernels.

Oracle-based tests shrink any failing graph to a minimal reproducer and
save it under ``$REPRO_ARTIFACT_DIR`` for CI to upload.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hw import AMPERE
from repro.ir import GraphBuilder
from repro.pipeline import compile_for
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds
from repro.runtime.oracle import (
    differential_test,
    save_reproducer,
    shrink_graph,
)

#: Safe element-wise ops (bounded outputs, no domain restrictions).
_SAFE_UNARY = ("tanh", "sigmoid", "relu", "abs", "neg", "identity")
_SAFE_BINARY = ("add", "sub", "maximum", "minimum")


@st.composite
def random_graph(draw, allow_batch=True):
    """A random barrier-free DAG over an (m, n) base space, optionally
    extended by a third batch dimension."""
    m = draw(st.integers(2, 24))
    n = draw(st.integers(2, 24))
    batch = (draw(st.integers(2, 4))
             if allow_batch and draw(st.booleans()) else None)
    b = GraphBuilder("fuzz")
    base_dims = ([("b", batch)] if batch else []) + [("m", m), ("n", n)]
    values = [b.input("X0", base_dims)]
    if draw(st.booleans()):
        values.append(b.input("X1", base_dims))

    n_ops = draw(st.integers(1, 8))
    reduced = []  # reductions over n, broadcastable back
    for i in range(n_ops):
        choice = draw(st.integers(0, 4))
        if choice == 0:  # unary
            src = draw(st.sampled_from(values))
            kind = draw(st.sampled_from(_SAFE_UNARY))
            values.append(b.unary(kind, src))
        elif choice == 1 and len(values) >= 2:  # binary same-shape
            lhs = draw(st.sampled_from(values))
            rhs = draw(st.sampled_from(values))
            kind = draw(st.sampled_from(_SAFE_BINARY))
            values.append(b.binary(kind, lhs, rhs))
        elif choice == 2:  # reduction over n
            src = draw(st.sampled_from(values))
            kind = draw(st.sampled_from(("sum", "max", "mean", "min")))
            reduced.append(b.reduce(kind, src, dim="n"))
        elif choice == 3 and reduced:  # broadcast a reduction back
            src = draw(st.sampled_from(values))
            agg = draw(st.sampled_from(reduced))
            kind = draw(st.sampled_from(("sub", "add", "maximum")))
            values.append(b.binary(kind, src, agg))
        else:  # scalar op
            src = draw(st.sampled_from(values))
            kind = draw(st.sampled_from(("mul", "add")))
            values.append(b.scalar(kind, src, draw(
                st.floats(-2.0, 2.0, allow_nan=False))))
    # Guarantee a full-rank output so something meaningful is produced.
    b.unary("identity", values[-1], out_name="Fin")
    return b.build()


@st.composite
def random_barrier_graph(draw):
    """A DAG with a layout barrier in the middle: prefix ops over (m, n),
    then a transpose or reshape, then suffix ops over the new space.
    Compiles through program partitioning rather than a single SMG."""
    m = draw(st.integers(2, 12))
    n = draw(st.integers(2, 12))
    b = GraphBuilder("fuzz_barrier")
    val = b.input("X0", [("m", m), ("n", n)])
    for _ in range(draw(st.integers(0, 3))):
        val = b.unary(draw(st.sampled_from(_SAFE_UNARY)), val)
    if draw(st.booleans()):
        val = b.barrier("transpose", val, ("n", "m"), perm=(1, 0))
        reduce_dim = "m"
    else:
        val = b.barrier("reshape", val, [("mn", m * n)])
        reduce_dim = None
    for _ in range(draw(st.integers(0, 3))):
        val = b.unary(draw(st.sampled_from(_SAFE_UNARY)), val)
    if reduce_dim is not None and draw(st.booleans()):
        agg = b.reduce(draw(st.sampled_from(("sum", "max"))), val,
                       dim=reduce_dim)
        val = b.binary("sub", val, agg)
    b.unary("identity", val, out_name="Fin")
    return b.build()


def _report_oracle_failure(graph, result, seed, label):
    """Shrink a failing graph, save it as a CI artifact, and fail loudly."""

    def failing(g):
        return not differential_test(
            g, AMPERE, seed=seed,
            dtype=np.dtype(result.dtype).type).ok

    try:
        shrunk = shrink_graph(graph, failing)
    except Exception:
        shrunk = graph
    saved = ""
    art_dir = os.environ.get("REPRO_ARTIFACT_DIR")
    if art_dir:
        os.makedirs(art_dir, exist_ok=True)
        path = os.path.join(
            art_dir, f"repro-{label}-seed{seed}-{len(shrunk.ops)}ops.json")
        save_reproducer(shrunk, path, meta={
            "seed": seed, "dtype": result.dtype, "label": label})
        saved = f"; reproducer saved to {path}"
    ops = [f"{op.name}:{op.kind}" for op in shrunk.ops]
    pytest.fail(f"oracle mismatch ({label}, seed={seed}): "
                f"{result.render()}\nshrunk to {len(shrunk.ops)} op(s): "
                f"{ops}{saved}")


class TestCompileFuzz:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large,
                                     HealthCheck.filter_too_much])
    @given(graph=random_graph(), seed=st.integers(0, 1 << 16))
    def test_random_graph_compiles_and_matches_reference(self, graph, seed):
        schedule, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(schedule, feeds)
        for name, expected in ref.items():
            np.testing.assert_allclose(
                env[name], expected, atol=1e-8,
                err_msg=f"{name} diverged; schedule:\n"
                        f"{schedule.describe()}")

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(graph=random_graph(), seed=st.integers(0, 1 << 16))
    def test_generated_python_matches_too(self, graph, seed):
        from repro.codegen.python_backend import run_generated
        schedule, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        ref = execute_graph_reference(graph, feeds)
        env = run_generated(schedule, feeds)
        for name, expected in ref.items():
            np.testing.assert_allclose(env[name], expected, atol=1e-8)


class TestOracleFuzz:
    """Differential-oracle fuzzing: both engines vs the float64 reference."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large,
                                     HealthCheck.filter_too_much])
    @given(graph=random_graph(), seed=st.integers(0, 1 << 16))
    def test_oracle_float32(self, graph, seed):
        """float32 execution hits the compiled engine's interpreter
        fallback for temporal kernels; the dtype-aware tolerance absorbs
        the precision loss."""
        result = differential_test(graph, AMPERE, seed=seed,
                                   dtype=np.float32)
        if not result.ok:
            _report_oracle_failure(graph, result, seed, "float32")

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large,
                                     HealthCheck.filter_too_much])
    @given(graph=random_barrier_graph(), seed=st.integers(0, 1 << 16))
    def test_oracle_barrier_graphs(self, graph, seed):
        """Graphs with reshape/transpose barriers compile via program
        partitioning; both engines must still match the reference."""
        result = differential_test(graph, AMPERE, seed=seed)
        if not result.ok:
            _report_oracle_failure(graph, result, seed, "barrier")
