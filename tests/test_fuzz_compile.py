"""Compiler fuzzing: random dataflow DAGs must compile and run correctly.

The strongest correctness evidence a compiler can have: generate random
graphs mixing element-wise ops, broadcasts, reductions and contractions,
run the whole pipeline (SMG -> slicing -> partitioning -> tuning), execute
the resulting schedule, and require equality with the unfused reference.
Every path — UTA chains, Simple Aggregate, pass-2 epilogues, partition
fallbacks, per-op fallbacks — gets exercised by some generated graph.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hw import AMPERE
from repro.ir import GraphBuilder
from repro.pipeline import compile_for
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds

#: Safe element-wise ops (bounded outputs, no domain restrictions).
_SAFE_UNARY = ("tanh", "sigmoid", "relu", "abs", "neg", "identity")
_SAFE_BINARY = ("add", "sub", "maximum", "minimum")


@st.composite
def random_graph(draw):
    """A random barrier-free DAG over a 2-D (m, n) base space."""
    m = draw(st.integers(2, 24))
    n = draw(st.integers(2, 24))
    b = GraphBuilder("fuzz")
    values = [b.input("X0", [("m", m), ("n", n)])]
    if draw(st.booleans()):
        values.append(b.input("X1", [("m", m), ("n", n)]))

    n_ops = draw(st.integers(1, 8))
    reduced = []  # (ref over (m,)) results
    for i in range(n_ops):
        choice = draw(st.integers(0, 4))
        if choice == 0:  # unary
            src = draw(st.sampled_from(values))
            kind = draw(st.sampled_from(_SAFE_UNARY))
            values.append(b.unary(kind, src))
        elif choice == 1 and len(values) >= 2:  # binary same-shape
            lhs = draw(st.sampled_from(values))
            rhs = draw(st.sampled_from(values))
            kind = draw(st.sampled_from(_SAFE_BINARY))
            values.append(b.binary(kind, lhs, rhs))
        elif choice == 2:  # reduction over n
            src = draw(st.sampled_from(values))
            kind = draw(st.sampled_from(("sum", "max", "mean", "min")))
            reduced.append(b.reduce(kind, src, dim="n"))
        elif choice == 3 and reduced:  # broadcast a reduction back
            src = draw(st.sampled_from(values))
            agg = draw(st.sampled_from(reduced))
            kind = draw(st.sampled_from(("sub", "add", "maximum")))
            values.append(b.binary(kind, src, agg))
        else:  # scalar op
            src = draw(st.sampled_from(values))
            kind = draw(st.sampled_from(("mul", "add")))
            values.append(b.scalar(kind, src, draw(
                st.floats(-2.0, 2.0, allow_nan=False))))
    # Guarantee a 2-D output so something meaningful is produced.
    b.unary("identity", values[-1], out_name="Fin")
    return b.build()


class TestCompileFuzz:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large,
                                     HealthCheck.filter_too_much])
    @given(graph=random_graph(), seed=st.integers(0, 1 << 16))
    def test_random_graph_compiles_and_matches_reference(self, graph, seed):
        schedule, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(schedule, feeds)
        for name, expected in ref.items():
            np.testing.assert_allclose(
                env[name], expected, atol=1e-8,
                err_msg=f"{name} diverged; schedule:\n"
                        f"{schedule.describe()}")

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(graph=random_graph(), seed=st.integers(0, 1 << 16))
    def test_generated_python_matches_too(self, graph, seed):
        from repro.codegen.python_backend import run_generated
        schedule, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        ref = execute_graph_reference(graph, feeds)
        env = run_generated(schedule, feeds)
        for name, expected in ref.items():
            np.testing.assert_allclose(env[name], expected, atol=1e-8)
