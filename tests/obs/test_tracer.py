"""Tests for the structured tracer: nesting, threads, zero-cost off."""

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    timed_phase,
    use_tracer,
)


class TestNesting:
    def test_parent_child_ids(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {sp.name: sp for sp in tr.spans()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_siblings_share_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("a"):
                pass
            with tr.span("b"):
                pass
        by_name = {sp.name: sp for sp in tr.spans()}
        assert by_name["a"].parent_id == by_name["b"].parent_id \
            == by_name["outer"].span_id

    def test_stack_unwinds_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("failing"):
                raise RuntimeError("boom")
        with tr.span("after"):
            pass
        by_name = {sp.name: sp for sp in tr.spans()}
        assert by_name["failing"].end_s is not None   # still collected
        assert by_name["after"].parent_id is None     # not under "failing"

    def test_durations_and_order(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = tr.spans()                     # completion order
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.duration_s >= inner.duration_s >= 0.0
        assert outer.start_s <= inner.start_s
        assert outer.end_s >= inner.end_s

    def test_attrs_and_note(self):
        tr = Tracer()
        with tr.span("tuning", category="compile", kernel="mha") as sp:
            sp.note(configs=7)
        (collected,) = tr.spans()
        assert collected.category == "compile"
        assert collected.attrs == {"kernel": "mha", "configs": 7}

    def test_event_is_instant(self):
        tr = Tracer()
        tr.event("cache_hit", tier="memory")
        (ev,) = tr.spans()
        assert ev.end_s == ev.start_s and ev.duration_s == 0.0
        assert ev.attrs == {"tier": "memory"}

    def test_phase_totals_filters_category(self):
        tr = Tracer()
        with tr.span("tuning", category="compile"):
            pass
        with tr.span("tuning", category="compile"):
            pass
        with tr.span("request", category="serve"):
            pass
        totals = tr.phase_totals(category="compile")
        assert set(totals) == {"tuning"}
        assert totals["tuning"] > 0.0

    def test_clear(self):
        tr = Tracer()
        with tr.span("x"):
            pass
        tr.clear()
        assert tr.spans() == []


class TestThreads:
    def test_concurrent_threads_nest_independently(self):
        tr = Tracer()
        n_threads, per_thread = 4, 25
        barrier = threading.Barrier(n_threads)

        def work(i):
            barrier.wait()
            for j in range(per_thread):
                with tr.span(f"outer-{i}"):
                    with tr.span(f"inner-{i}"):
                        pass

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tr.spans()
        assert len(spans) == n_threads * per_thread * 2
        by_id = {sp.span_id: sp for sp in spans}
        for sp in spans:
            if sp.name.startswith("inner"):
                parent = by_id[sp.parent_id]
                # Parents never cross threads.
                assert parent.thread_id == sp.thread_id
                assert parent.name == sp.name.replace("inner", "outer")


class TestAmbient:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_tracer_is_free_no_op(self):
        handle = NULL_TRACER.span("anything", category="compile", k=1)
        with handle as sp:
            sp.note(ignored=True)
        # One shared handle, never any data.
        assert NULL_TRACER.span("other") is handle
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.phase_totals() == {}

    def test_use_tracer_scopes_and_restores(self):
        tr = Tracer()
        with use_tracer(tr):
            assert get_tracer() is tr
            with span("inside"):
                pass
        assert get_tracer() is NULL_TRACER
        assert [sp.name for sp in tr.spans()] == ["inside"]

    def test_use_tracer_restores_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with use_tracer(tr):
                raise ValueError("boom")
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        tr = Tracer()
        set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestTimedPhase:
    def test_records_and_spans(self):
        tr = Tracer()
        recorded = {}
        with use_tracer(tr):
            with timed_phase("spatial_slice", recorded.__setitem__,
                             category="compile", smg="g"):
                pass
        assert recorded["spatial_slice"] >= 0.0
        (sp,) = tr.spans()
        assert sp.name == "spatial_slice" and sp.category == "compile"
        # The record wraps the span, so it can only be >= the span time.
        assert recorded["spatial_slice"] >= sp.duration_s

    def test_disabled_records_without_span(self):
        tr = Tracer()
        recorded = {}
        with use_tracer(tr):
            with timed_phase("probe", recorded.__setitem__, enabled=False):
                pass
        assert "probe" in recorded
        assert tr.spans() == []

    def test_records_even_when_body_raises(self):
        recorded = {}
        with pytest.raises(RuntimeError):
            with timed_phase("failing", recorded.__setitem__):
                raise RuntimeError("boom")
        assert "failing" in recorded

    def test_record_optional(self):
        with timed_phase("unrecorded"):
            pass
