"""Tests for the span exporters and Chrome-trace validation."""

import json

from repro.obs import (
    Tracer,
    phase_table,
    render_phase_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _traced():
    tr = Tracer()
    with tr.span("compile", category="compile", workload="mha"):
        with tr.span("tuning", category="compile") as sp:
            sp.note(modeled_wall_s=1.5, shape=(2, 3))
    tr.event("cache_hit", tier="memory")
    return tr


class TestChromeTrace:
    def test_structure(self):
        trace = to_chrome_trace(_traced())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        phases = {ev["ph"] for ev in trace["traceEvents"]}
        assert phases == {"M", "X", "i"}
        complete = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
        assert {ev["name"] for ev in complete} == {"compile", "tuning"}
        for ev in complete:
            assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0

    def test_timestamps_rebased_and_nested(self):
        trace = to_chrome_trace(_traced())
        by_name = {ev["name"]: ev for ev in trace["traceEvents"]
                   if ev["ph"] == "X"}
        outer, inner = by_name["compile"], by_name["tuning"]
        assert outer["ts"] == 0.0                    # earliest span is base
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0

    def test_thread_metadata(self):
        trace = to_chrome_trace(_traced())
        meta = [ev for ev in trace["traceEvents"] if ev["ph"] == "M"]
        assert meta and meta[0]["name"] == "thread_name"
        assert meta[0]["args"]["name"]

    def test_args_json_safe(self):
        trace = to_chrome_trace(_traced())
        tuning = next(ev for ev in trace["traceEvents"]
                      if ev["name"] == "tuning")
        assert tuning["args"]["modeled_wall_s"] == 1.5
        assert tuning["args"]["shape"] == "(2, 3)"    # repr'd, not dropped
        json.dumps(trace)                             # round-trips

    def test_write_and_validate(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(path, _traced())
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert validate_chrome_trace(loaded) == []

    def test_empty_trace_flagged(self):
        # An empty trace is structurally fine but flagged: `repro trace`
        # emitting zero events means the instrumentation broke.
        errors = validate_chrome_trace(to_chrome_trace(Tracer()))
        assert errors == ["'traceEvents' is empty"]


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2, 3])

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_bad_phase(self):
        trace = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1,
                                  "tid": 1, "ts": 0.0}]}
        errors = validate_chrome_trace(trace)
        assert errors and any("ph" in e for e in errors)

    def test_rejects_bad_field_types(self):
        trace = {"traceEvents": [{"name": 42, "ph": "X", "pid": 1,
                                  "tid": 1, "ts": "zero", "dur": 1.0}]}
        assert validate_chrome_trace(trace)


class TestPhaseTable:
    def test_rows_sorted_by_total(self):
        rows = phase_table(_traced(), category="compile")
        names = [name for name, _count, _total in rows]
        assert set(names) == {"compile", "tuning"}
        totals = [total for _name, _count, total in rows]
        assert totals == sorted(totals, reverse=True)

    def test_counts_aggregate(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("tuning", category="compile"):
                pass
        ((name, count, total),) = phase_table(tr, category="compile")
        assert name == "tuning" and count == 3 and total >= 0.0

    def test_render(self):
        text = render_phase_table(phase_table(_traced()), title="breakdown")
        assert text.startswith("breakdown")
        assert "tuning" in text and "%" in text
