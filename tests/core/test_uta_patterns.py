"""Additional Update-then-Aggregate patterns beyond the attention chain.

Each test builds a dependent-reduction pattern, lets the pipeline derive
its plan, and validates numerically across tilings — widening the evidence
that the factor analysis generalises rather than pattern-matching softmax.
"""

import numpy as np
import pytest

from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from repro.core.temporal_slicer import TemporalSliceError, plan_temporal_slice
from repro.hw import AMPERE
from repro.ir import GraphBuilder
from repro.pipeline import compile_for
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds


def _check(graph, tdim, spatial=("m",), block=8, tile=8, atol=1e-8):
    smg = build_smg(graph)
    plan = plan_temporal_slice(smg, tdim)
    kernel = KernelSchedule(
        "k", smg, spatial, plan,
        config=ScheduleConfig(block=tuple((d, block) for d in spatial),
                              tile=tile))
    feeds = random_feeds(graph, seed=11)
    ref = execute_graph_reference(graph, feeds)
    env = execute_schedule(ProgramSchedule("p", [kernel]), feeds)
    for name, expected in ref.items():
        np.testing.assert_allclose(env[name], expected, atol=atol)
    return plan


class TestNormalizationChains:
    def test_sum_then_normalized_sum(self):
        """S1 = sum(x); S2 = sum(x / S1): id-factor UTA without exp."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 24), ("n", 32)])
        e = b.unary("sigmoid", x)  # keep sums positive and well scaled
        s1 = b.reduce("sum", e, dim="n", out_name="S1")
        d = b.binary("div", e, s1)
        b.reduce("sum", d, dim="n", out_name="S2")
        plan = _check(b.build(), "n")
        assert plan.uses_uta
        s2 = plan.stages[1]
        assert [f.func for f in s2.update.factors] == ["id"]

    def test_mul_normalizer(self):
        """sum(x * S1): a positive-power id factor."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 16), ("n", 24)])
        e = b.unary("sigmoid", x)
        s1 = b.reduce("sum", e, dim="n", out_name="S1")
        m = b.binary("mul", e, s1)
        b.reduce("sum", m, dim="n", out_name="S2")
        plan = _check(b.build(), "n")
        assert plan.stages[1].update.factors[0].power == 1

    def test_squared_normalizer(self):
        """sum((x / S1)^2): the square doubles the factor power."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 12), ("n", 20)])
        e = b.unary("sigmoid", x)
        s1 = b.reduce("sum", e, dim="n", out_name="S1")
        d = b.binary("div", e, s1)
        sq = b.unary("square", d)
        b.reduce("sum", sq, dim="n", out_name="S2")
        plan = _check(b.build(), "n")
        assert plan.stages[1].update.factors[0].power == -2

    def test_three_stage_mixed_chain(self):
        """max -> normalized sum -> normalized dot: the full softmax-GEMM
        chain with an extra scalar op interleaved."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 16), ("n", 24)])
        w = b.input("W", [("n", 24), ("d", 8)])
        mx = b.reduce("max", x, dim="n")
        c = b.binary("sub", x, mx)
        cs = b.scalar("mul", c, 0.5)
        e = b.unary("exp", cs)
        s = b.reduce("sum", e, dim="n")
        d = b.binary("div", e, s)
        b.matmul(d, w, reduce_dim="n", out_name="Out")
        plan = _check(b.build(), "n")
        assert len(plan.stages) == 3
        assert plan.stages[2].uses_uta


class TestMinChains:
    def test_min_first_chain(self):
        """min -> sum(exp(min - x)): the mirrored stability trick."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 12), ("n", 16)])
        mn = b.reduce("min", x, dim="n", out_name="Mn")
        c = b.binary("sub", x, mn)       # x - min >= 0
        e = b.unary("exp", b.unary("neg", c))
        b.reduce("sum", e, dim="n", out_name="S")
        plan = _check(b.build(), "n")
        assert plan.stages[0].combiner == "min"
        assert plan.stages[1].uses_uta


class TestLogSumExp:
    def test_logsumexp_epilogue(self):
        """LSE = log(sum(exp(x - max))) + max: log and the final add are
        epilogue ops over aggregates; the chain itself is the softmax
        denominator."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 20), ("n", 28)])
        mx = b.reduce("max", x, dim="n", out_name="Mx")
        c = b.binary("sub", x, mx)
        e = b.unary("exp", c)
        s = b.reduce("sum", e, dim="n", out_name="S")
        lg = b.unary("log", s)
        b.binary("add", lg, mx, out_name="LSE")
        plan = _check(b.build(), "n")
        assert plan.has_pass2
        assert set(plan.pass2_op_names) >= {
            op.name for op in plan.graph.ops if op.kind in ("log",)}

    def test_logsumexp_compiles_end_to_end(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 40), ("n", 56)])
        mx = b.reduce("max", x, dim="n")
        e = b.unary("exp", b.binary("sub", x, mx))
        s = b.reduce("sum", e, dim="n")
        b.binary("add", b.unary("log", s), mx, out_name="LSE")
        graph = b.build()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=2)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["LSE"], ref["LSE"], atol=1e-9)


class TestUnsliceableVariants:
    def test_sum_of_offset_rejected(self):
        """sum(x - mean(x)) over the sliced dim: additive offsets cannot
        cross a sum without element counts -> falls to partitioning."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8), ("n", 16)])
        mu = b.reduce("max", x, dim="n")   # any earlier aggregate
        c = b.binary("sub", x, mu)
        b.reduce("sum", c, dim="n", out_name="S")
        smg = build_smg(b.build())
        with pytest.raises(TemporalSliceError):
            plan_temporal_slice(smg, "n")

    def test_compiler_still_handles_it(self):
        """The unsliceable chain must still compile (spatial-only or
        partitioned) and produce correct results."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8), ("n", 16)])
        mu = b.reduce("max", x, dim="n")
        c = b.binary("sub", x, mu)
        b.reduce("sum", c, dim="n", out_name="S")
        graph = b.build()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=3)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["S"], ref["S"], atol=1e-9)
