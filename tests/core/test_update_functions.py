"""Tests for broadcast postposition and update-function synthesis (Fig. 8)."""

import numpy as np
import pytest

from repro.core.builder import build_smg
from repro.core.rewrites import prepare_for_temporal_slicing
from repro.core.update_functions import (
    AddOffset,
    FactorAnalysis,
    NormFactor,
    Representation,
    UpdateFunction,
    UTAError,
    synthesize_update_functions,
)
from repro.ir import GraphBuilder


def _stage_ops(graph, dim):
    return [op for op in graph.topological_ops() if dim in op.reduce_dims]


class TestRepresentation:
    def test_pure(self):
        rep = Representation.pure()
        assert rep.is_pure()

    def test_with_mult_accumulates(self):
        rep = Representation.pure().with_mult("M", "exp", -1)
        rep = rep.with_mult("M", "exp", -1)
        assert rep.mult[("M", "exp")] == -2

    def test_with_mult_cancels_to_identity(self):
        rep = Representation.pure().with_mult("M", "exp", 1)
        rep = rep.with_mult("M", "exp", -1)
        assert rep.is_pure()

    def test_with_add(self):
        rep = Representation.pure().with_add("M", -1)
        assert rep.add == {"M": -1}
        assert rep.referenced_aggs() == {"M"}

    def test_copy_is_deep(self):
        rep = Representation.pure().with_add("M", 1)
        clone = rep.copy()
        clone.add["M"] = 5
        assert rep.add["M"] == 1


class TestUpdateFunctionApply:
    def test_identity(self):
        upd = UpdateFunction("S", (), ())
        assert upd.is_identity
        out = upd.apply(np.array([3.0]), {}, {})
        assert out[0] == 3.0

    def test_exp_factor_rescaling(self):
        """stored = raw / exp(M): advancing M from 1 to 3 scales stored by
        exp(1-3)."""
        upd = UpdateFunction("S", (NormFactor("M", "exp", -1),), ())
        out = upd.apply(np.array([2.0]), {"M": np.array([1.0])},
                        {"M": np.array([3.0])})
        assert np.allclose(out, 2.0 * np.exp(-2.0))

    def test_id_factor_rescaling(self):
        """stored = raw / S: update multiplies by S_old/S_new."""
        upd = UpdateFunction("O", (NormFactor("S", "id", -1),), ())
        out = upd.apply(np.array([6.0]), {"S": np.array([2.0])},
                        {"S": np.array([4.0])})
        assert np.allclose(out, 3.0)

    def test_id_factor_zero_old_is_safe(self):
        upd = UpdateFunction("O", (NormFactor("S", "id", -1),), ())
        out = upd.apply(np.array([0.0]), {"S": np.array([0.0])},
                        {"S": np.array([4.0])})
        assert np.isfinite(out).all()

    def test_additive_offset(self):
        upd = UpdateFunction("Mx", (), (AddOffset("C", -1),))
        out = upd.apply(np.array([5.0]), {"C": np.array([1.0])},
                        {"C": np.array([4.0])})
        assert np.allclose(out, 5.0 - 3.0)

    def test_exp_factors_stay_in_log_domain(self):
        """Large magnitudes must not overflow: exp(a)/exp(b) is computed as
        exp(a-b)."""
        upd = UpdateFunction("S", (NormFactor("M", "exp", -1),), ())
        out = upd.apply(np.array([1.0]), {"M": np.array([1000.0])},
                        {"M": np.array([1001.0])})
        assert np.isfinite(out).all()

    def test_describe_mentions_old_new(self):
        upd = UpdateFunction("S", (NormFactor("M", "exp", -1),), ())
        text = upd.describe()
        assert "old" in text and "exp(M" in text

    def test_referenced_aggs_deduplicated(self):
        upd = UpdateFunction("O", (NormFactor("M", "exp", -1),
                                   NormFactor("S", "id", -1)),
                             (AddOffset("M", 1),))
        assert upd.referenced_aggs() == ("M", "S")


class TestSoftmaxChainSynthesis:
    def _plan_graph(self, small_mha):
        graph, _ = prepare_for_temporal_slicing(small_mha, "l")
        return graph

    def test_full_chain(self, small_mha):
        graph = self._plan_graph(small_mha)
        stages = _stage_ops(graph, "l")
        updates = synthesize_update_functions(graph, "l", stages)
        assert updates[0].is_identity                      # max
        assert len(updates[1].factors) == 1                # sum / exp(max)
        assert len(updates[2].factors) == 2                # dot / exp(max)/sum

    def test_numerical_consistency_of_sum_update(self, small_mha):
        """Verify updateSum against a two-tile online softmax by hand."""
        graph = self._plan_graph(small_mha)
        stages = _stage_ops(graph, "l")
        updates = synthesize_update_functions(graph, "l", stages)
        upd_sum = updates[1]
        rng = np.random.default_rng(0)
        x = rng.standard_normal(16)
        x1, x2 = x[:8], x[8:]
        m1 = x1.max()
        s1 = np.exp(x1 - m1).sum()
        m2 = max(m1, x2.max())
        s2 = upd_sum.apply(np.array(s1), {stages[0].output: np.array(m1)},
                           {stages[0].output: np.array(m2)}) \
            + np.exp(x2 - m2).sum()
        assert np.allclose(s2, np.exp(x - m2).sum())


class TestFactorAnalysisRules:
    def _graph_sub_exp_sum(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        mx = b.reduce("max", x, dim="n", out_name="M")
        c = b.binary("sub", x, mx)
        e = b.unary("exp", c)
        b.reduce("sum", e, dim="n", out_name="S")
        return b.build()

    def test_exp_of_sub_becomes_exp_factor(self):
        g = self._graph_sub_exp_sum()
        fa = FactorAnalysis(g, "n", ["M", "S"])
        exp_out = g.ops[2].output
        rep = fa.repr_of(exp_out)
        assert rep.mult == {("M", "exp"): -1}

    def test_div_by_aggregate_gives_id_factor(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        s = b.reduce("sum", x, dim="n", out_name="S")
        d = b.binary("div", x, s)
        g = b.build()
        fa = FactorAnalysis(g, "n", ["S"])
        assert fa.repr_of(d.name).mult == {("S", "id"): -1}

    def test_mul_by_aggregate_gives_positive_factor(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        s = b.reduce("sum", x, dim="n", out_name="S")
        d = b.binary("mul", x, s)
        g = b.build()
        fa = FactorAnalysis(g, "n", ["S"])
        assert fa.repr_of(d.name).mult == {("S", "id"): 1}

    def test_tanh_of_offset_is_opaque(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        mx = b.reduce("max", x, dim="n", out_name="M")
        c = b.binary("sub", x, mx)
        t = b.unary("tanh", c)
        g = b.build()
        fa = FactorAnalysis(g, "n", ["M"])
        assert fa.repr_of(t.name).opaque

    def test_square_doubles_powers(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        s = b.reduce("sum", x, dim="n", out_name="S")
        d = b.binary("div", x, s)
        sq = b.unary("square", d)
        g = b.build()
        fa = FactorAnalysis(g, "n", ["S"])
        assert fa.repr_of(sq.name).mult == {("S", "id"): -2}

    def test_derived_aggregate_is_opaque(self):
        """A unary transform of an aggregate broadcast into the tile is
        conservatively opaque (only direct broadcast forms postpose)."""
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        mx = b.reduce("max", x, dim="n", out_name="M")
        m2 = b.unary("exp", mx, out_name="Mexp")
        d = b.binary("div", x, m2)
        b.reduce("sum", d, dim="n", out_name="S")
        g = b.build()
        fa = FactorAnalysis(g, "n", ["M", "S"])
        assert fa.repr_of(d.name).opaque

    def test_non_temporal_constant_is_pure(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        bias = b.input("Bias", [("m", 4)])
        a = b.binary("add", x, bias)
        g = b.build()
        fa = FactorAnalysis(g, "n", [])
        assert fa.repr_of(a.name).is_pure()

    def test_same_factor_operands_combine_under_add(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        s = b.reduce("sum", x, dim="n", out_name="S")
        d1 = b.binary("div", x, s)
        d2 = b.binary("div", x, s)
        a = b.binary("add", d1, d2)
        g = b.build()
        fa = FactorAnalysis(g, "n", ["S"])
        assert fa.repr_of(a.name).mult == {("S", "id"): -1}

    def test_mixed_factor_operands_opaque_under_add(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        s = b.reduce("sum", x, dim="n", out_name="S")
        d1 = b.binary("div", x, s)
        a = b.binary("add", d1, x)
        g = b.build()
        fa = FactorAnalysis(g, "n", ["S"])
        assert fa.repr_of(a.name).opaque


class TestSynthesisErrors:
    def test_opaque_raises_uta_error(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        mx = b.reduce("max", x, dim="n", out_name="M")
        c = b.binary("sub", x, mx)
        t = b.unary("tanh", c)
        b.reduce("sum", t, dim="n", out_name="S")
        g = b.build()
        stages = _stage_ops(g, "n")
        with pytest.raises(UTAError, match="postposition failed"):
            synthesize_update_functions(g, "n", stages)

    def test_forward_reference_raises(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        s = b.reduce("sum", x, dim="n", out_name="S")
        d = b.binary("div", x, s)
        b.reduce("max", d, dim="n", out_name="M2")
        g = b.build()
        stages = _stage_ops(g, "n")
        # Reverse the order so the max "precedes" its dependency.
        with pytest.raises(UTAError):
            synthesize_update_functions(g, "n", list(reversed(stages)))

    def test_additive_through_sum_raises(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 16)])
        mx = b.reduce("max", x, dim="n", out_name="M")
        c = b.binary("sub", x, mx)
        b.reduce("sum", c, dim="n", out_name="S")
        g = b.build()
        stages = _stage_ops(g, "n")
        with pytest.raises(UTAError, match="additive offsets"):
            synthesize_update_functions(g, "n", stages)
