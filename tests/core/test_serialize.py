"""Tests for schedule serialization and the on-disk compile cache."""

import numpy as np
import pytest

from repro.core.serialize import (
    ScheduleCache,
    SerializeError,
    compile_cached,
    graph_from_dict,
    graph_to_dict,
    schedule_from_json,
    schedule_to_json,
)
from repro.hw import AMPERE
from repro.ir import GraphBuilder, program_from_graph
from repro.pipeline import compile_for, compile_model_for
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds


class TestGraphRoundTrip:
    def test_roundtrip_preserves_structure(self, small_mha):
        clone = graph_from_dict(graph_to_dict(small_mha))
        assert [op.name for op in clone.ops] == \
            [op.name for op in small_mha.ops]
        assert clone.dims.items() == small_mha.dims.items()
        assert set(clone.tensors) == set(small_mha.tensors)

    def test_roundtrip_preserves_semantics(self, small_ln):
        clone = graph_from_dict(graph_to_dict(small_ln))
        feeds = random_feeds(small_ln, seed=0)
        a = execute_graph_reference(small_ln, feeds)
        b = execute_graph_reference(clone, feeds)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_scalar_attrs_survive(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4)])
        b.scalar("mul", x, 0.125)
        clone = graph_from_dict(graph_to_dict(b.build()))
        assert clone.ops[0].attrs["scalar"] == 0.125

    def test_declared_outputs_survive(self, small_lstm):
        clone = graph_from_dict(graph_to_dict(small_lstm))
        assert set(clone.output_tensors) == {"CellOut", "Out"}


class TestScheduleRoundTrip:
    def test_uta_schedule_roundtrip(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        restored = schedule_from_json(schedule_to_json(sched))
        assert restored.num_kernels == sched.num_kernels
        k0, k1 = sched.kernels[0], restored.kernels[0]
        assert k1.spatial_dims == k0.spatial_dims
        assert k1.config == k0.config
        assert k1.plan is not None
        assert [s.update.describe() for s in k1.plan.stages] == \
            [s.update.describe() for s in k0.plan.stages]

    def test_restored_schedule_executes_identically(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        restored = schedule_from_json(schedule_to_json(sched))
        feeds = random_feeds(small_mha, seed=4)
        a = execute_schedule(sched, feeds)
        b = execute_schedule(restored, feeds)
        np.testing.assert_array_equal(a["Out"], b["Out"])

    def test_restored_schedule_simulates_identically(self, small_ln):
        from repro.pipeline import simulate
        sched, _ = compile_for(small_ln, AMPERE)
        restored = schedule_from_json(schedule_to_json(sched))
        assert simulate(restored, AMPERE).time_s == \
            pytest.approx(simulate(sched, AMPERE).time_s)

    def test_barrier_kernels_roundtrip(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8), ("n", 4)])
        e = b.unary("exp", x)
        b.barrier("reshape", e, [("f", 32)], out_name="Y")
        model = compile_model_for(program_from_graph(b.build()), AMPERE)
        sched = model.expanded_schedule()
        restored = schedule_from_json(schedule_to_json(sched))
        assert restored.num_kernels == sched.num_kernels
        feeds = random_feeds(b.graph, seed=0)
        env = execute_schedule(restored, {"X": feeds["X"]})
        assert env["Y"].shape == (32,)

    def test_bad_version_rejected(self):
        with pytest.raises(SerializeError, match="version"):
            schedule_from_json('{"version": 99, "name": "x", "meta": {}, '
                               '"kernels": []}')

    def test_missing_version_rejected(self):
        with pytest.raises(SerializeError, match="version"):
            schedule_from_json('{"name": "x", "meta": {}, "kernels": []}')

    def test_malformed_json_raises_serialize_error(self):
        with pytest.raises(SerializeError, match="malformed"):
            schedule_from_json('{"version": 1, "name": ')

    def test_non_object_payload_rejected(self):
        with pytest.raises(SerializeError, match="object"):
            schedule_from_json('[1, 2, 3]')

    def test_truncated_payload_raises_serialize_error(self):
        with pytest.raises(SerializeError, match="truncated|corrupt"):
            schedule_from_json('{"version": 1, "name": "x", "meta": {}, '
                               '"kernels": [{"name": "k"}]}')


class TestScheduleCache:
    def test_miss_then_hit(self, small_mha, tmp_path):
        cache = ScheduleCache(tmp_path)
        first, stats = compile_cached(small_mha, AMPERE, cache)
        assert stats is not None            # compiled
        second, stats2 = compile_cached(small_mha, AMPERE, cache)
        assert stats2 is None               # served from cache
        assert cache.hits == 1 and cache.misses == 1
        assert second.num_kernels == first.num_kernels

    def test_cached_schedule_correct(self, small_ln, tmp_path):
        cache = ScheduleCache(tmp_path)
        compile_cached(small_ln, AMPERE, cache)
        restored, _ = compile_cached(small_ln, AMPERE, cache)
        feeds = random_feeds(small_ln, seed=1)
        ref = execute_graph_reference(small_ln, feeds)
        env = execute_schedule(restored, feeds)
        np.testing.assert_allclose(env["Y"], ref["Y"], atol=1e-9)

    def test_different_gpu_different_entry(self, small_mha, tmp_path):
        from repro.hw import VOLTA
        cache = ScheduleCache(tmp_path)
        compile_cached(small_mha, AMPERE, cache)
        _sched, stats = compile_cached(small_mha, VOLTA, cache)
        assert stats is not None  # not a hit: different target

    def test_different_graph_different_entry(self, tmp_path):
        from repro.models import layernorm_graph
        cache = ScheduleCache(tmp_path)
        compile_cached(layernorm_graph(32, 64), AMPERE, cache)
        _s, stats = compile_cached(layernorm_graph(32, 128), AMPERE, cache)
        assert stats is not None


class TestAtomicWrites:
    """A crash mid-``put`` must never leave a truncated cache entry."""

    def test_put_leaves_no_temp_files(self, small_ln, tmp_path):
        cache = ScheduleCache(tmp_path)
        compile_cached(small_ln, AMPERE, cache)
        leftovers = list(tmp_path.glob("*.tmp"))
        assert leftovers == []
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_crash_during_replace_keeps_old_entry(self, small_ln, tmp_path,
                                                  monkeypatch):
        import os as _os

        cache = ScheduleCache(tmp_path)
        sched, _ = compile_cached(small_ln, AMPERE, cache)
        entry = next(tmp_path.glob("*.json"))
        before = entry.read_text()

        def exploding_replace(src, dst):
            raise OSError("power loss")

        monkeypatch.setattr("repro.core.serialize.os.replace",
                            exploding_replace)
        with pytest.raises(OSError, match="power loss"):
            cache.put(small_ln, AMPERE.name, sched)
        monkeypatch.undo()
        # The previous entry is byte-identical and no temp debris remains.
        assert entry.read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get(small_ln, AMPERE.name) is not None
        assert _os.path.exists(entry)

    def test_crash_during_write_leaves_no_partial_entry(self, small_ln,
                                                        tmp_path,
                                                        monkeypatch):
        cache = ScheduleCache(tmp_path)
        sched, _ = compile_for(small_ln, AMPERE)[0], None

        monkeypatch.setattr(
            "repro.core.serialize.schedule_to_json",
            lambda s: (_ for _ in ()).throw(OSError("disk full")))
        with pytest.raises(OSError, match="disk full"):
            cache.put(small_ln, AMPERE.name, sched)
        # Neither a target entry nor temp debris exists.
        assert list(tmp_path.iterdir()) == []


class TestDoctoredCacheEntries:
    """A poisoned on-disk entry must degrade to a miss, never a crash."""

    def _doctor_entries(self, tmp_path, text):
        entries = list(tmp_path.glob("*.json"))
        assert entries, "cache should have written an entry"
        for path in entries:
            path.write_text(text)

    def test_version_mismatch_is_a_miss(self, small_ln, tmp_path):
        cache = ScheduleCache(tmp_path)
        compile_cached(small_ln, AMPERE, cache)
        self._doctor_entries(
            tmp_path, '{"version": 999, "name": "x", "meta": {}, '
                      '"kernels": []}')
        schedule, stats = compile_cached(small_ln, AMPERE, cache)
        assert stats is not None              # recompiled, not crashed
        assert cache.misses == 2              # cold boot + doctored entry
        feeds = random_feeds(small_ln, seed=3)
        ref = execute_graph_reference(small_ln, feeds)
        env = execute_schedule(schedule, feeds)
        np.testing.assert_allclose(env["Y"], ref["Y"], atol=1e-9)

    def test_corrupt_json_is_a_miss(self, small_ln, tmp_path):
        cache = ScheduleCache(tmp_path)
        compile_cached(small_ln, AMPERE, cache)
        self._doctor_entries(tmp_path, "{definitely not json")
        _schedule, stats = compile_cached(small_ln, AMPERE, cache)
        assert stats is not None

    def test_doctored_entry_is_replaced_on_disk(self, small_ln, tmp_path):
        cache = ScheduleCache(tmp_path)
        compile_cached(small_ln, AMPERE, cache)
        self._doctor_entries(tmp_path, '{"version": 999}')
        compile_cached(small_ln, AMPERE, cache)
        # The recompile overwrote the bad entry: next boot hits again.
        _schedule, stats = compile_cached(small_ln, AMPERE, cache)
        assert stats is None

    def test_direct_get_raises_nothing(self, small_ln, tmp_path):
        cache = ScheduleCache(tmp_path)
        compile_cached(small_ln, AMPERE, cache)
        self._doctor_entries(tmp_path, '{"version": null}')
        assert cache.get(small_ln, AMPERE.name) is None
