"""Tests for computational spaces and space mappings (section 4.1)."""

import pytest

from repro.core.mappings import A2O, O2A, O2O, Mapping
from repro.core.spaces import DataSpace, IterationSpace, SlicedExtent, Space
from repro.ir.tensor import DimRegistry


@pytest.fixture
def reg():
    r = DimRegistry()
    r.define("m", 8)
    r.define("n", 4)
    r.define("k", 2)
    return r


class TestSpaces:
    def test_volume(self, reg):
        assert Space("S", ("m", "n")).volume(reg) == 32
        assert Space("S", ()).volume(reg) == 1

    def test_has_dim(self):
        s = Space("S", ("m",))
        assert s.has_dim("m") and not s.has_dim("n")

    def test_render_with_placeholders(self):
        s = Space("Query", ("m", "k"))
        # The paper writes Query(M,-,K) for a space absent along N.
        assert s.render(("m", "n", "k")) == "Query(m,-,k)"

    def test_data_space_roles(self):
        d = DataSpace("X", ("m",), role="input")
        assert d.is_graph_input and not d.is_graph_output
        o = DataSpace("Y", ("m",), role="output")
        assert o.is_graph_output

    def test_data_space_nbytes(self, reg):
        d = DataSpace("X", ("m", "n"), dtype="fp16")
        assert d.nbytes(reg) == 64

    def test_iteration_space_links_op(self):
        it = IterationSpace("mm", ("m", "n", "k"), op_name="matmul_1",
                            op_kind="matmul")
        assert it.op_name == "matmul_1"


class TestSlicedExtent:
    def test_num_slices_exact(self):
        s = SlicedExtent("m", 8, 4)
        assert s.num_slices == 2
        assert s.slice_bounds(0) == (0, 4)
        assert s.slice_bounds(1) == (4, 8)

    def test_ragged_final_slice(self):
        s = SlicedExtent("m", 10, 4)
        assert s.num_slices == 3
        assert s.slice_bounds(2) == (8, 10)

    def test_out_of_range_raises(self):
        s = SlicedExtent("m", 8, 4)
        with pytest.raises(IndexError):
            s.slice_bounds(2)

    def test_invalid_block_raises(self):
        with pytest.raises(ValueError):
            SlicedExtent("m", 8, 0)
        with pytest.raises(ValueError):
            SlicedExtent("m", 8, 9)


class TestMappings:
    def test_o2o_has_no_dims(self):
        m = Mapping("a", "b", O2O)
        assert not m.dims
        with pytest.raises(ValueError, match="no direction"):
            Mapping("a", "b", O2O, dims=frozenset({"m"}))

    def test_o2a_requires_dims(self):
        with pytest.raises(ValueError, match="requires direction"):
            Mapping("a", "b", O2A)
        m = Mapping("a", "b", O2A, dims=frozenset({"n"}))
        assert m.along("n") and not m.along("m")

    def test_a2o_requires_reduce_kind(self):
        with pytest.raises(ValueError, match="reduce_kind"):
            Mapping("a", "b", A2O, dims=frozenset({"k"}))
        m = Mapping("a", "b", A2O, dims=frozenset({"k"}), reduce_kind="sum")
        assert m.reduce_kind == "sum"

    def test_non_a2o_cannot_carry_reduce_kind(self):
        with pytest.raises(ValueError, match="only All-to-One"):
            Mapping("a", "b", O2A, dims=frozenset({"k"}), reduce_kind="sum")

    def test_describe(self):
        m = Mapping("GEMM", "QK", A2O, dims=frozenset({"k"}),
                    reduce_kind="sum")
        assert "A2O(dim=k):sum" in m.describe()
        assert Mapping("a", "b", O2O).describe() == "a -O2O-> b"
