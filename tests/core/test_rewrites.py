"""Tests for the algebraic graph rewrites backing broadcast postposition."""

import numpy as np
import pytest

from repro.core.rewrites import (
    copy_graph,
    find_variance_patterns,
    lower_mean_reductions,
    prepare_for_temporal_slicing,
    prune_dead_ops,
    variance_decomposition,
)
from repro.ir import GraphBuilder
from repro.runtime.kernels import execute_graph_reference, random_feeds


class TestCopyAndPrune:
    def test_copy_pins_outputs(self, small_ln):
        clone = copy_graph(small_ln)
        assert clone.declared_outputs == small_ln.output_tensors
        clone.ops = clone.ops[:-1]
        # The original's op list is untouched.
        assert len(small_ln.ops) > len(clone.ops)

    def test_prune_removes_dead_chain(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4)])
        live = b.unary("exp", x, out_name="Live")
        b.unary("relu", x, out_name="Dead")
        g = b.build()
        g.declared_outputs = ["Live"]
        prune_dead_ops(g)
        assert [op.output for op in g.ops] == ["Live"]
        assert "Dead" not in g.tensors

    def test_prune_keeps_transitive_producers(self, small_mha):
        g = copy_graph(small_mha)
        prune_dead_ops(g)
        assert len(g.ops) == len(small_mha.ops)


class TestMeanLowering:
    def test_mean_becomes_sum_plus_scale(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 8)])
        b.reduce("mean", x, dim="n", out_name="Mu")
        g = copy_graph(b.build())
        lower_mean_reductions(g, "n")
        kinds = [op.kind for op in g.ops]
        assert "reduce_mean" not in kinds
        assert "reduce_sum" in kinds and "scalar_mul" in kinds

    def test_lowering_preserves_semantics(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 8)])
        b.reduce("mean", x, dim="n", out_name="Mu")
        g = b.build()
        feeds = random_feeds(g, seed=7)
        ref = execute_graph_reference(g, feeds)
        lowered = copy_graph(g)
        lower_mean_reductions(lowered, "n")
        out = execute_graph_reference(lowered, feeds)
        assert np.allclose(out["Mu"], ref["Mu"])

    def test_mean_over_other_dim_untouched(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 8)])
        b.reduce("mean", x, dim="m", out_name="Mu")
        g = copy_graph(b.build())
        lower_mean_reductions(g, "n")
        assert g.ops[0].kind == "reduce_mean"


class TestVarianceDecomposition:
    def test_pattern_found_in_layernorm(self, small_ln):
        patterns = find_variance_patterns(small_ln, "n")
        assert len(patterns) == 1
        assert patterns[0].var_op.kind == "reduce_mean"

    def test_rewrite_fires_and_removes_dependency(self, small_ln):
        g = copy_graph(small_ln)
        assert variance_decomposition(g, "n")
        # After E[x^2]-E[x]^2 the two means are independent: no reduction's
        # ancestors include the other reduction.
        means = [op for op in g.ops if op.kind == "reduce_mean"]
        assert len(means) == 2
        for op in means:
            ancestors = {o.output for o in g.topological_ops()
                         if g.producer_of(op.inputs[0]) and o is not op}
        # structural check: the centered sub no longer feeds a reduction
        sub = next(op for op in g.ops if op.kind == "sub")
        consumers = {c.kind for c in g.consumers_of(sub.output)}
        assert "reduce_mean" not in consumers

    def test_rewrite_preserves_semantics(self, small_ln):
        feeds = random_feeds(small_ln, seed=3)
        ref = execute_graph_reference(small_ln, feeds)
        g = copy_graph(small_ln)
        variance_decomposition(g, "n")
        out = execute_graph_reference(g, feeds)
        out_name = small_ln.output_tensors[0]
        assert np.allclose(out[out_name], ref[out_name])

    def test_no_pattern_returns_false(self, small_mha):
        g = copy_graph(small_mha)
        assert not variance_decomposition(g, "l")

    def test_mul_self_square_matches(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 8)])
        mu = b.reduce("mean", x, dim="n")
        c = b.binary("sub", x, mu)
        sq = b.binary("mul", c, c)
        b.reduce("mean", sq, dim="n", out_name="Var")
        g = b.build()
        assert len(find_variance_patterns(g, "n")) == 1


class TestPrepare:
    def test_layernorm_prepared_graph_is_equivalent(self, small_ln):
        feeds = random_feeds(small_ln, seed=11)
        ref = execute_graph_reference(small_ln, feeds)
        prepared, rewrote = prepare_for_temporal_slicing(small_ln, "n")
        assert rewrote
        out = execute_graph_reference(prepared, feeds)
        name = small_ln.output_tensors[0]
        assert np.allclose(out[name], ref[name])

    def test_original_graph_is_untouched(self, small_ln):
        n_ops = len(small_ln.ops)
        prepare_for_temporal_slicing(small_ln, "n")
        assert len(small_ln.ops) == n_ops

    def test_mha_prepare_is_identity_modulo_means(self, small_mha):
        prepared, rewrote = prepare_for_temporal_slicing(small_mha, "l")
        assert not rewrote
        assert len(prepared.ops) == len(small_mha.ops)
