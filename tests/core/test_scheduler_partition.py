"""Tests for Algorithm 1 (resource-aware slicing) and Algorithm 2 (partitioning)."""

import pytest

from repro.core.builder import build_smg
from repro.core.partition import (
    partition_round,
    reorganize_sub_smgs,
    subgraph_from_ops,
)
from repro.core.resources import ResourceConfig
from repro.core.scheduler import SlicingOptions, resource_aware_slicing
from repro.hw import AMPERE
from repro.ir import GraphBuilder

RC = AMPERE.resource_config()


class TestAlgorithm1:
    def test_mha_yields_spatial_and_temporal_candidates(self, small_mha):
        result = resource_aware_slicing(build_smg(small_mha), RC)
        assert result.scheduled
        slicings = {k.meta["slicing"] for k in result.candidates}
        assert "spatial+temporal" in slicings

    def test_candidates_carry_search_spaces(self, small_mha):
        result = resource_aware_slicing(build_smg(small_mha), RC)
        for kernel in result.candidates:
            assert kernel.search_space

    def test_memory_plan_applied(self, small_mha):
        result = resource_aware_slicing(build_smg(small_mha), RC)
        for kernel in result.candidates:
            assert kernel.memory_levels

    def test_phase_times_recorded(self, small_mha):
        result = resource_aware_slicing(build_smg(small_mha), RC)
        assert "spatial_slice" in result.phase_times
        assert "enum_cfg" in result.phase_times

    def test_unparallelisable_graph_fails(self):
        b = GraphBuilder("g")
        x = b.input("X", [("n", 64)])
        b.reduce("sum", x, dim="n")
        result = resource_aware_slicing(build_smg(b.build()), RC)
        assert not result.scheduled

    def test_temporal_disabled_option(self, small_mha):
        result = resource_aware_slicing(
            build_smg(small_mha), RC, SlicingOptions(enable_temporal=False))
        slicings = {k.meta["slicing"] for k in result.candidates}
        assert slicings == {"spatial"}

    def test_uta_disabled_blocks_mha_chain_dim(self, small_mha):
        """Without UTA the dependent chain along l cannot be sliced; the
        temporal slicer can still split-K along dk (Simple Aggregate), so
        any temporal candidate must avoid l."""
        result = resource_aware_slicing(
            build_smg(small_mha), RC, SlicingOptions(enable_uta=False))
        for kernel in result.candidates:
            if kernel.plan is not None:
                assert kernel.plan.dim != "l"
                assert not kernel.plan.uses_uta

    def test_uta_disabled_still_allows_sa(self, small_ln):
        # LayerNorm's chain becomes Simple Aggregate after the variance
        # rewrite, so Welder-style compilers can still slice it.
        result = resource_aware_slicing(
            build_smg(small_ln), RC, SlicingOptions(enable_uta=False))
        slicings = {k.meta["slicing"] for k in result.candidates}
        assert "spatial+temporal" in slicings

    def test_oversized_spatial_only_falls_to_temporal(self):
        """When the spatial-only schedule exceeds shared memory, only the
        temporally sliced variant survives (the paper's K=1024 fusion
        failure of Figure 2(c) fixed by 2(d))."""
        b = GraphBuilder("bigrow")
        x = b.input("X", [("m", 512), ("n", 65536)])
        b.softmax(x, dim="n", out_name="P")
        result = resource_aware_slicing(build_smg(b.build()), RC)
        assert result.scheduled
        slicings = {k.meta["slicing"] for k in result.candidates}
        assert slicings == {"spatial+temporal"}


class TestSubSMGReorganization:
    def test_mha_segments(self, small_mha):
        segments = reorganize_sub_smgs(small_mha)
        kinds = [s.kind for s in segments]
        # GEMM1 | max | sub,exp | sum | div | GEMM2
        assert kinds == ["A2O", "A2O", "nonA2O", "A2O", "nonA2O", "A2O"]

    def test_elementwise_run_groups(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8)])
        y = b.unary("exp", x)
        z = b.unary("relu", y)
        b.reduce("sum", z, dim="m")
        segments = reorganize_sub_smgs(b.build())
        assert [s.kind for s in segments] == ["nonA2O", "A2O"]
        assert len(segments[0].ops) == 2

    def test_subgraph_from_ops_declares_crossing_tensors(self, small_mha):
        ops = small_mha.topological_ops()[:2]  # GEMM1 + reduce_max
        later = {t for op in small_mha.topological_ops()[2:]
                 for t in op.inputs}
        sub = subgraph_from_ops(small_mha, ops, "front",
                                downstream_needs=later)
        # QK is consumed by later ops, so it must be a declared output even
        # though it is consumed inside the front graph too.
        assert "QK" in sub.output_tensors


class TestAlgorithm2:
    def test_partition_peels_until_schedulable(self):
        """A graph whose tail cannot be fused (opaque chain) partitions
        into a schedulable former part and the remainder."""
        b = GraphBuilder("hard")
        x = b.input("X", [("m", 64), ("n", 256)])
        mx = b.reduce("max", x, dim="n")
        c = b.binary("sub", x, mx)
        t = b.unary("tanh", c)
        s = b.reduce("sum", t, dim="n")
        b.binary("div", t, s, out_name="Y")
        graph = b.build()

        def schedulable(g):
            try:
                smg = build_smg(g)
            except Exception:
                return False
            return resource_aware_slicing(smg, RC).scheduled

        # The full graph is actually schedulable spatially (m), so force
        # the partitioner by rejecting multi-reduction graphs.
        def strict(g):
            return schedulable(g) and sum(
                1 for op in g.ops if op.is_reduction) <= 1

        candidates = partition_round(graph, strict)
        assert candidates
        front = candidates[0].former
        assert strict(front)
        assert candidates[0].latter is not None

    def test_partition_trivial_when_whole_graph_passes(self, small_mha):
        candidates = partition_round(small_mha, lambda g: True,
                                     explore_candidates=False)
        assert len(candidates) == 1
        assert candidates[0].latter is None
        assert len(candidates[0].former.ops) == len(small_mha.ops)

    def test_explore_candidates_adds_second_split(self, small_mha):
        # Accept everything: the 5.3 exploration peels the trailing
        # non-A2O sub-SMG (div) into a second candidate.
        candidates = partition_round(small_mha, lambda g: True,
                                     explore_candidates=True)
        assert len(candidates) >= 1

    def test_unschedulable_everything_returns_empty(self, small_mha):
        assert partition_round(small_mha, lambda g: False) == []

    def test_partition_sides_validate(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 16), ("n", 32)])
        e = b.unary("exp", x)
        s = b.reduce("sum", e, dim="n")
        b.binary("div", e, s, out_name="Y")
        graph = b.build()
        candidates = partition_round(
            graph, lambda g: len(g.ops) <= 2, explore_candidates=False)
        assert candidates
        candidates[0].former.validate()
        if candidates[0].latter is not None:
            candidates[0].latter.validate()
