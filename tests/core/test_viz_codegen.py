"""Tests for visualisation exports and kernel pseudocode generation."""

import pytest

from repro.codegen import generate_kernel_pseudocode, generate_program_pseudocode
from repro.core.builder import build_smg
from repro.core.viz import schedule_to_text, smg_to_dot
from repro.hw import AMPERE
from repro.ir import GraphBuilder, program_from_graph
from repro.models import mha_graph
from repro.pipeline import compile_for, compile_model_for


class TestDotExport:
    def test_dot_is_wellformed(self, small_mha):
        dot = smg_to_dot(build_smg(small_mha))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count('"Q"') >= 2  # node decl + edge

    def test_every_space_and_mapping_rendered(self, small_mha):
        smg = build_smg(small_mha)
        dot = smg_to_dot(smg)
        for space in smg.spaces.values():
            assert f'"{space.name}"' in dot
        assert dot.count("->") == len(smg.mappings)

    def test_mapping_colours(self, small_mha):
        dot = smg_to_dot(build_smg(small_mha))
        assert "forestgreen" in dot  # One-to-All
        assert "red3" in dot         # All-to-One
        assert "gray40" in dot       # One-to-One

    def test_roles_get_fills(self, small_mha):
        dot = smg_to_dot(build_smg(small_mha))
        assert "lightgoldenrod1" in dot   # inputs
        assert "mediumpurple1" in dot     # outputs

    def test_paper_style_placeholders_in_labels(self, small_mha):
        dot = smg_to_dot(build_smg(small_mha))
        assert "Q(m,-,dk,-)" in dot


class TestScheduleText:
    def test_report_contains_update_functions(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        text = schedule_to_text(sched)
        assert "update" in text
        assert "UTA" in text

    def test_report_lists_memory_levels(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        text = schedule_to_text(sched)
        assert "shared:" in text or "register:" in text


class TestPseudocode:
    def test_uta_kernel_structure(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        code = generate_kernel_pseudocode(sched.kernels[0])
        assert "parallel_for Block in SMG_Blocks:" in code
        assert "for IntraBlock in Block:" in code
        assert "aggr_max(" in code
        assert "aggr_sum(update_" in code
        assert "store(Out)" in code
        assert "Broadcast Postposition" in code

    def test_invariant_loads_hoisted(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        code = generate_kernel_pseudocode(sched.kernels[0])
        lines = code.splitlines()
        q_line = next(i for i, l in enumerate(lines) if "Q = load" in l)
        loop_line = next(i for i, l in enumerate(lines)
                         if "for IntraBlock" in l)
        assert q_line < loop_line  # Q hoisted out of the tile loop

    def test_streamed_loads_inside_loop(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        code = generate_kernel_pseudocode(sched.kernels[0])
        lines = code.splitlines()
        k_line = next(i for i, l in enumerate(lines) if "K = load" in l)
        loop_line = next(i for i, l in enumerate(lines)
                         if "for IntraBlock" in l)
        assert k_line > loop_line
        assert "tile_l" in lines[k_line]

    def test_pass2_epilogue_emitted(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        kernel = sched.kernels[0]
        code = generate_kernel_pseudocode(kernel)
        if kernel.plan is not None and kernel.plan.has_pass2:
            assert "# epilogue pass" in code

    def test_plain_kernel(self, small_mlp):
        from repro.core.compiler import FusionOptions
        sched, _ = compile_for(small_mlp, AMPERE,
                               FusionOptions(enable_temporal=False))
        code = generate_program_pseudocode(sched)
        assert "parallel_for" in code
        assert "matmul(" in code

    def test_barrier_kernels_annotated(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8), ("n", 4)])
        e = b.unary("exp", x)
        b.barrier("reshape", e, [("f", 32)], out_name="Y")
        prog = program_from_graph(b.build())
        model = compile_model_for(prog, AMPERE)
        code = generate_program_pseudocode(model.expanded_schedule())
        assert "layout op reshape" in code


class TestGQAExtension:
    def test_gqa_fuses_like_mha(self):
        from repro.models import gqa_graph
        graph = gqa_graph(1, 8, 2, 128, 128, 32)
        sched, _ = compile_for(graph, AMPERE)
        assert sched.num_kernels == 1
        assert sched.kernels[0].plan.uses_uta

    def test_group_dim_spatially_sliceable(self):
        from repro.core.spatial_slicer import spatial_sliceable_dims
        from repro.models import gqa_graph
        graph = gqa_graph(1, 8, 2, 64, 64, 16)
        dims = spatial_sliceable_dims(build_smg(graph))
        # K/V reuse along r is an *input* One-to-All: still sliceable.
        assert "r" in dims and "g" in dims and "m" in dims

    def test_gqa_numerics(self):
        import numpy as np
        from repro.models import gqa_graph
        from repro.runtime.executor import execute_schedule
        from repro.runtime.kernels import execute_graph_reference, random_feeds
        graph = gqa_graph(2, 4, 2, 24, 32, 8)
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=3)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["Out"], ref["Out"], atol=1e-9)

    def test_invalid_grouping_raises(self):
        from repro.models import gqa_graph
        with pytest.raises(ValueError, match="multiple"):
            gqa_graph(1, 7, 2, 16, 16, 8)
