"""Tests for spatial and temporal slicers (sections 4.2/4.3, Table 3)."""

import pytest

from repro.core.builder import build_smg
from repro.core.spatial_slicer import slice_spatial, spatial_sliceable_dims
from repro.core.temporal_slicer import (
    TemporalSliceError,
    plan_temporal_slice,
    temporal_dim_candidates,
    try_plan_best_temporal_slice,
)
from repro.ir import GraphBuilder


class TestSpatialLegality:
    """Table 3 legality plus the every-iteration-space coverage rule."""

    def test_mha_only_m_and_lead_dims(self, batched_mha):
        smg = build_smg(batched_mha)
        dims = spatial_sliceable_dims(smg)
        # Batch/head dims carry no mappings; m carries only input O2As.
        assert dims == ["b", "h", "m"]

    def test_reduction_dim_blocked(self, small_mha):
        smg = build_smg(small_mha)
        assert "l" not in spatial_sliceable_dims(smg)
        assert "dk" not in spatial_sliceable_dims(smg)

    def test_intermediate_o2a_blocks(self, small_mha):
        # dv: Div (an intermediate) is broadcast along dv into GEMM2.
        smg = build_smg(small_mha)
        assert "dv" not in spatial_sliceable_dims(smg)

    def test_input_o2a_is_sliceable(self):
        b = GraphBuilder("bcast")
        x = b.input("X", [("m", 8), ("n", 4)])
        v = b.input("V", [("m", 8)])
        b.binary("sub", x, v)
        smg = build_smg(b.build())
        # V is a kernel input broadcast along n: still sliceable (Table 3
        # "Input One-to-All" row).
        assert spatial_sliceable_dims(smg) == ["m", "n"]

    def test_intermediate_broadcast_blocks(self):
        b = GraphBuilder("bcast2")
        x = b.input("X", [("m", 8), ("n", 4)])
        mx = b.reduce("max", x, dim="n")
        b.binary("sub", x, mx)
        smg = build_smg(b.build())
        # mx is an intermediate broadcast along n -> n not sliceable.
        assert spatial_sliceable_dims(smg) == ["m"]

    def test_partial_iteration_coverage_blocks(self):
        # Two independent GEMMs sharing X: slicing one GEMM's output dim
        # would replicate the other GEMM's work.
        b = GraphBuilder("two_gemms")
        x = b.input("X", [("m", 8), ("k", 4)])
        w1 = b.input("W1", [("n1", 6), ("k", 4)])
        w2 = b.input("W2", [("n2", 6), ("k", 4)])
        b.matmul(x, w1, reduce_dim="k")
        b.matmul(x, w2, reduce_dim="k")
        smg = build_smg(b.build())
        assert spatial_sliceable_dims(smg) == ["m"]

    def test_slice_spatial_records_input_o2a(self, small_mha):
        result = slice_spatial(build_smg(small_mha))
        assert result.dims == ("m",)
        assert {m.src for m in result.sliced_input_o2a} == {"K", "V"}

    def test_fully_reduced_graph_unsliceable(self):
        b = GraphBuilder("scalarize")
        x = b.input("X", [("n", 16)])
        b.reduce("sum", x, dim="n")
        smg = build_smg(b.build())
        assert slice_spatial(smg).empty


class TestTemporalCandidates:
    def test_priority_orders_by_volume(self, small_mha):
        smg = build_smg(small_mha)
        cands = temporal_dim_candidates(smg, excluded={"m"})
        assert cands[0] == "l"  # the largest data-space volume

    def test_excluded_dims_skipped(self, small_mha):
        smg = build_smg(small_mha)
        assert "m" not in temporal_dim_candidates(smg, excluded={"m"})

    def test_mapping_free_dims_skipped(self, batched_mha):
        smg = build_smg(batched_mha)
        cands = temporal_dim_candidates(smg, excluded=set())
        assert "b" not in cands and "h" not in cands


class TestTemporalPlans:
    def test_mha_uses_uta(self, small_mha):
        plan = plan_temporal_slice(build_smg(small_mha), "l")
        assert plan.uses_uta
        assert [s.combiner for s in plan.stages] == ["max", "sum", "sum"]
        assert not plan.has_pass2  # Out is itself the final aggregate

    def test_mha_update_functions_match_figure8(self, small_mha):
        plan = plan_temporal_slice(build_smg(small_mha), "l")
        max_stage, sum_stage, out_stage = plan.stages
        assert max_stage.update.is_identity
        # updateSum = Sum_old * exp(Max_old)/exp(Max)
        assert [f.func for f in sum_stage.update.factors] == ["exp"]
        assert [f.power for f in sum_stage.update.factors] == [-1]
        # updateOut = Out_old * exp(Max_old)/exp(Max) * Sum_old/Sum
        funcs = sorted((f.func, f.power) for f in out_stage.update.factors)
        assert funcs == [("exp", -1), ("id", -1)]

    def test_layernorm_becomes_simple_aggregate(self, small_ln):
        plan = plan_temporal_slice(build_smg(small_ln), "n")
        assert not plan.uses_uta  # variance decomposition fired
        assert plan.rewritten
        assert plan.has_pass2
        assert all(s.combiner == "sum" for s in plan.stages)

    def test_softmax_plan_has_pass2(self, small_softmax):
        plan = plan_temporal_slice(build_smg(small_softmax), "n")
        assert plan.uses_uta
        assert plan.has_pass2  # the div output needs re-walking the tiles

    def test_streaming_dim_without_reductions(self):
        b = GraphBuilder("stream")
        x = b.input("X", [("m", 8), ("n", 64)])
        v = b.input("V", [("m", 8)])
        b.binary("sub", x, v, out_name="Y")
        plan = plan_temporal_slice(build_smg(b.build()), "n")
        assert not plan.stages
        assert plan.pass2_op_names  # pure streaming epilogue

    def test_unknown_dim_raises(self, small_mha):
        with pytest.raises(TemporalSliceError, match="unknown"):
            plan_temporal_slice(build_smg(small_mha), "zz")

    def test_try_best_falls_back(self, small_mha):
        plan = try_plan_best_temporal_slice(build_smg(small_mha), {"m"})
        assert plan is not None and plan.dim == "l"

    def test_tile_ops_are_stage_ancestors(self, small_mha):
        plan = plan_temporal_slice(build_smg(small_mha), "l")
        graph = plan.graph
        stage_outs = set(plan.stage_outputs)
        produced = {graph.op(n).output for n in plan.tile_op_names}
        assert stage_outs <= produced

    def test_describe_is_readable(self, small_mha):
        text = plan_temporal_slice(build_smg(small_mha), "l").describe()
        assert "UTA" in text and "update" in text


class TestUnsliceableChains:
    def test_opaque_chain_raises(self):
        # A nonlinear function of a prior aggregate feeding a sum cannot be
        # renormalised: sum(tanh(x - max(x))) has no update function.
        b = GraphBuilder("hard")
        x = b.input("X", [("m", 4), ("n", 16)])
        mx = b.reduce("max", x, dim="n")
        c = b.binary("sub", x, mx)
        t = b.unary("tanh", c)
        b.reduce("sum", t, dim="n", out_name="S")
        smg = build_smg(b.build())
        with pytest.raises(TemporalSliceError, match="postposition failed"):
            plan_temporal_slice(smg, "n")

    def test_try_best_returns_none_when_all_fail(self):
        b = GraphBuilder("hard2")
        x = b.input("X", [("m", 4), ("n", 16)])
        mx = b.reduce("max", x, dim="n")
        c = b.binary("sub", x, mx)
        t = b.unary("tanh", c)
        b.reduce("sum", t, dim="n", out_name="S")
        smg = build_smg(b.build())
        assert try_plan_best_temporal_slice(smg, {"m"}) is None
