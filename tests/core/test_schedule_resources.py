"""Tests for the schedule data model and resource estimation (section 5.1)."""

import pytest

from repro.core.builder import build_smg
from repro.core.resources import (
    ResourceConfig,
    check_resources,
    enumerate_configs,
    estimate_block_resources,
)
from repro.core.schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from repro.core.temporal_slicer import plan_temporal_slice


def _mha_kernel(small_mha, config=None):
    smg = build_smg(small_mha)
    plan = plan_temporal_slice(smg, "l")
    return KernelSchedule("k", smg, ("m",), plan, config=config)


class TestScheduleConfig:
    def test_block_of(self):
        cfg = ScheduleConfig(block=(("m", 32),), tile=16)
        assert cfg.block_of("m") == 32
        assert cfg.block_of("n") is None

    def test_as_dict_and_describe(self):
        cfg = ScheduleConfig(block=(("m", 32), ("n", 8)), tile=4)
        assert cfg.as_dict() == {"m": 32, "n": 8}
        assert "tile=4" in cfg.describe()


class TestKernelSchedule:
    def test_grid_size(self, small_mha):
        k = _mha_kernel(small_mha, ScheduleConfig(block=(("m", 32),), tile=16))
        assert k.grid_size() == 3  # ceil(96/32)

    def test_grid_requires_block(self, small_mha):
        k = _mha_kernel(small_mha, ScheduleConfig(block=(), tile=16))
        with pytest.raises(ValueError, match="lacks block"):
            k.grid_size()

    def test_num_intra_blocks(self, small_mha):
        k = _mha_kernel(small_mha, ScheduleConfig(block=(("m", 32),), tile=16))
        assert k.num_intra_blocks() == 5  # ceil(80/16)

    def test_sliced_extent(self, small_mha):
        k = _mha_kernel(small_mha, ScheduleConfig(block=(("m", 32),), tile=16))
        assert k.sliced_extent("m") == 32
        assert k.sliced_extent("l") == 16   # temporal tile
        assert k.sliced_extent("dk") == 24  # unsliced: full extent

    def test_tensor_block_elems(self, small_mha):
        k = _mha_kernel(small_mha, ScheduleConfig(block=(("m", 32),), tile=16))
        assert k.tensor_block_elems("QK") == 32 * 16
        assert k.tensor_block_elems("K") == 16 * 24

    def test_effective_config_fallbacks(self, small_mha):
        k = _mha_kernel(small_mha)
        k.search_space = [ScheduleConfig(block=(("m", 8),), tile=16)]
        assert k.effective_config().block_of("m") == 8
        k.search_space = []
        with pytest.raises(ValueError, match="no configuration"):
            k.effective_config()

    def test_exec_graph_is_rewritten_graph(self, small_ln):
        smg = build_smg(small_ln)
        plan = plan_temporal_slice(smg, "n")
        k = KernelSchedule("k", smg, ("m",), plan)
        assert k.exec_graph is plan.graph
        assert k.temporal_dim == "n"

    def test_program_schedule_counts(self, small_mha):
        prog = ProgramSchedule("p")
        prog.add(_mha_kernel(small_mha, ScheduleConfig(block=(("m", 32),),
                                                       tile=16)))
        assert prog.num_kernels == 1
        assert prog.fused_op_counts() == [7]
        assert "p" in prog.describe()


class TestResourceEstimation:
    RC = ResourceConfig(smem_per_block=96 * 1024, regs_per_block=128 * 1024)

    def test_temporal_slicing_shrinks_smem(self, small_mha):
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule("k", smg, ("m",), plan)
        small_tile = estimate_block_resources(
            kernel, ScheduleConfig(block=(("m", 32),), tile=16), self.RC)
        big_tile = estimate_block_resources(
            kernel, ScheduleConfig(block=(("m", 32),), tile=80), self.RC)
        assert small_tile.smem_bytes < big_tile.smem_bytes

    def test_bigger_blocks_cost_more_smem(self, small_mha):
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule("k", smg, ("m",), plan)
        small = estimate_block_resources(
            kernel, ScheduleConfig(block=(("m", 8),), tile=16), self.RC)
        big = estimate_block_resources(
            kernel, ScheduleConfig(block=(("m", 96),), tile=16), self.RC)
        assert small.smem_bytes < big.smem_bytes

    def test_aggregates_charged_to_registers(self, small_mha):
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule("k", smg, ("m",), plan)
        res = estimate_block_resources(
            kernel, ScheduleConfig(block=(("m", 32),), tile=16), self.RC)
        # Out (32x40) + rsum (32) + rmax (32) accumulators in fp32.
        assert res.reg_bytes >= (32 * 40 + 64) * 4

    def test_check_resources_bounds(self, small_mha):
        smg = build_smg(small_mha)
        kernel = KernelSchedule("k", smg, ("m",))
        tiny_rc = ResourceConfig(smem_per_block=1024, regs_per_block=1 << 20)
        assert not check_resources(
            kernel, ScheduleConfig(block=(("m", 96),)), tiny_rc)

    def test_fits_predicate(self):
        from repro.core.resources import BlockResources
        res = BlockResources(smem_bytes=1000, reg_bytes=1000)
        assert res.fits(ResourceConfig(2000, 2000))
        assert not res.fits(ResourceConfig(500, 2000))


class TestOutputStreamBufferCharge:
    """Regression for the shared-memory under-count: non-reduction outputs
    used to be charged zero bytes, so an elementwise kernel with a large
    output block 'fit' any budget its inputs fit."""

    def _elementwise_kernel(self):
        from repro.ir import GraphBuilder
        b = GraphBuilder("ew", dtype="fp16")
        x = b.input("X", [("m", 128), ("n", 128)])
        b.unary("relu", x, out_name="Fin")
        smg = build_smg(b.build())
        return KernelSchedule("k", smg, ("m",))

    def test_output_buffer_charged(self):
        kernel = self._elementwise_kernel()
        cfg = ScheduleConfig(block=(("m", 128),))
        rc = ResourceConfig(smem_per_block=24 * 1024,
                            regs_per_block=1 << 20)
        res = estimate_block_resources(kernel, cfg, rc)
        # Input stream buffer (16 KiB cap) + output stream buffer (16 KiB
        # cap on the 32 KiB block): the old estimate stopped at 16 KiB and
        # this schedule sailed through a 24 KiB budget it cannot meet.
        assert res.smem_bytes == 2 * rc.stream_buffer_bytes
        assert not check_resources(kernel, cfg, rc)

    def test_small_blocks_still_fit(self):
        kernel = self._elementwise_kernel()
        cfg = ScheduleConfig(block=(("m", 8),))
        rc = ResourceConfig(smem_per_block=24 * 1024,
                            regs_per_block=1 << 20)
        assert check_resources(kernel, cfg, rc)

    def test_output_reread_in_kernel_charged_full_block(self):
        """An output consumed again later in the kernel must stay resident
        at full block size, not just a stream-out buffer."""
        from repro.ir import GraphBuilder
        b = GraphBuilder("ew2", dtype="fp16")
        x = b.input("X", [("m", 128), ("n", 128)])
        mid = b.unary("relu", x, out_name="Mid")
        b.unary("tanh", mid, out_name="Fin")
        graph = b.build()
        graph.declared_outputs = ["Mid", "Fin"]
        smg = build_smg(graph)
        kernel = KernelSchedule("k", smg, ("m",))
        cfg = ScheduleConfig(block=(("m", 128),))
        rc = ResourceConfig(smem_per_block=1 << 20, regs_per_block=1 << 20)
        res = estimate_block_resources(kernel, cfg, rc)
        block_bytes = 128 * 128 * 2  # fp16 full block
        # Step 0: stream-in X (16K) + Mid resident at full block size.
        assert res.smem_bytes >= block_bytes + rc.stream_buffer_bytes

    def test_aggregate_outputs_not_double_charged(self, small_mha):
        """Reduction aggregates are register-resident; the stream-buffer
        fix must not charge them to shared memory as well."""
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule("k", smg, ("m",), plan)
        cfg = ScheduleConfig(block=(("m", 32),), tile=16)
        rc = ResourceConfig(smem_per_block=96 * 1024,
                            regs_per_block=128 * 1024)
        res = estimate_block_resources(kernel, cfg, rc)
        assert res.fits(rc)


class TestEnumerateConfigs:
    RC = ResourceConfig(smem_per_block=96 * 1024, regs_per_block=128 * 1024)

    def test_all_configs_fit(self, small_mha):
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule("k", smg, ("m",), plan)
        configs = enumerate_configs(kernel, self.RC)
        assert configs
        for cfg in configs:
            assert check_resources(kernel, cfg, self.RC)

    def test_dependency_free_dims_pinned_to_one(self, batched_mha):
        smg = build_smg(batched_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule("k", smg, ("b", "h", "m"), plan)
        for cfg in enumerate_configs(kernel, self.RC):
            assert cfg.block_of("b") == 1
            assert cfg.block_of("h") == 1

    def test_respects_max_configs(self, small_mha):
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule("k", smg, ("m",), plan)
        configs = enumerate_configs(kernel, self.RC, max_configs=5)
        assert len(configs) <= 5

    def test_no_spatial_dims_degenerate_config(self):
        from repro.ir import GraphBuilder
        b = GraphBuilder("g")
        x = b.input("X", [("n", 16)])
        b.reduce("sum", x, dim="n")
        smg = build_smg(b.build())
        kernel = KernelSchedule("k", smg, ())
        configs = enumerate_configs(kernel, self.RC)
        assert configs == [ScheduleConfig(block=(), tile=None)]

    def test_tiny_smem_prunes_everything(self, small_mha):
        smg = build_smg(small_mha)
        kernel = KernelSchedule("k", smg, ("m",))
        rc = ResourceConfig(smem_per_block=256, regs_per_block=1 << 20)
        assert enumerate_configs(kernel, rc) == []
