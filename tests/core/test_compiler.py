"""Tests for the end-to-end SpaceFusion compiler (Figure 9 pipeline)."""

import pytest

from repro.core.compiler import FusionOptions
from repro.hw import AMPERE
from repro.ir import GraphBuilder, program_from_graph
from repro.models import layernorm_graph, mha_graph, mlp_graph
from repro.pipeline import compile_for, compile_model_for, make_compiler


class TestCompileGraph:
    def test_mha_compiles_to_single_fused_kernel(self, small_mha):
        sched, _stats = compile_for(small_mha, AMPERE)
        assert sched.num_kernels == 1
        assert sched.kernels[0].plan is not None

    def test_layernorm_single_kernel(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        assert sched.num_kernels == 1

    def test_small_mlp_fuses_whole_stack(self):
        graph = mlp_graph(6, 2048, 256, 256)
        sched, _ = compile_for(graph, AMPERE)
        assert sched.num_kernels == 1
        assert len(sched.kernels[0].exec_graph.ops) == len(graph.ops)

    def test_wide_ffn_splits_at_contractions(self):
        """Llama-class FFN widths make whole-stack fusion lose: the
        compiler's candidate exploration must pick the split schedule."""
        graph = mlp_graph(2, 512, 4096, 11008)
        sched, _ = compile_for(graph, AMPERE)
        assert sched.num_kernels >= 2

    def test_all_kernels_configured(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        for kernel in sched.kernels:
            assert kernel.config is not None

    def test_stats_fields(self, small_mha):
        _sched, stats = compile_for(small_mha, AMPERE)
        assert stats.configs_evaluated > 0
        assert stats.tuning_wall_time > 0
        assert stats.kernels == 1
        assert stats.total_time > 0

    def test_unparallelisable_graph_partition_fallback(self):
        b = GraphBuilder("g")
        x = b.input("X", [("n", 4096)])
        s = b.reduce("sum", x, dim="n")
        graph = b.build()
        sched, _ = compile_for(graph, AMPERE)
        assert sched.num_kernels >= 1  # degenerate single-block kernel

    def test_pattern_census_records(self, small_mha):
        compiler = make_compiler(AMPERE)
        compiler.compile_graph(small_mha)
        assert len(compiler.fusion_patterns) == 1
        info = next(iter(compiler.fusion_patterns.values()))
        assert info["a2o_mappings"] == 4
        assert info["intensity"] in ("CI", "MI", "mixed")


class TestFusionOptions:
    def test_astitch_mode_never_fuses_ci(self, small_mha):
        options = FusionOptions(fuse_compute_intensive=False)
        sched, _ = compile_for(mha_graph(1, 2, 256, 256, 64), AMPERE,
                               options)
        from repro.ir.traits import is_compute_intensive
        for kernel in sched.kernels:
            g = kernel.exec_graph
            ci = [op for op in g.ops if is_compute_intensive(op, g.dims)]
            if ci:
                assert len(g.ops) == 1

    def test_welder_mode_splits_mha(self):
        """Without UTA the dependent attention chain cannot be temporally
        sliced; at long sequence lengths the spatial-only fusion overflows
        shared memory and the kernel splits (the paper's NNFusion
        failure)."""
        graph = mha_graph(1, 2, 4096, 4096, 64)
        full, _ = compile_for(graph, AMPERE)
        welder, _ = compile_for(graph, AMPERE,
                                FusionOptions(enable_uta=False))
        assert full.num_kernels == 1
        assert welder.num_kernels > 1

    def test_no_auto_tune_uses_fixed_config(self, small_mha):
        sched, stats = compile_for(small_mha, AMPERE,
                                   FusionOptions(auto_tune=False))
        assert stats.tuning_wall_time == 0.0
        assert sched.kernels[0].config is not None

    def test_slicing_options_propagate(self):
        options = FusionOptions(enable_temporal=False, enable_uta=False,
                                max_configs=7)
        so = options.slicing_options()
        assert not so.enable_temporal and not so.enable_uta
        assert so.max_configs == 7


class TestCompileModel:
    def test_model_with_barriers(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 64), ("n", 32)])
        e = b.unary("exp", x)
        r = b.barrier("reshape", e, [("f", 2048)])
        b.unary("relu", r, out_name="Out")
        prog = program_from_graph(b.build(), occurrences=3)
        model = compile_model_for(prog, AMPERE)
        assert len(model.subprograms) == 3
        assert all(s.occurrences == 3 for s in model.subprograms)
        barrier_kernels = [
            k for s in model.subprograms for k in s.schedule.kernels
            if k.meta.get("barrier")
        ]
        assert barrier_kernels

    def test_repeated_subprograms_compile_once(self):
        from repro.ir import TensorProgram
        prog = TensorProgram("p")
        prog.add(layernorm_graph(64, 64, name="ln"), occurrences=1)
        prog.add(layernorm_graph(64, 64, name="ln"), occurrences=1)
        model = compile_model_for(prog, AMPERE)
        assert len(model.subprograms) == 1
        assert model.subprograms[0].occurrences == 2

    def test_expanded_schedule_unrolls(self):
        from repro.ir import TensorProgram
        prog = TensorProgram("p")
        prog.add(layernorm_graph(64, 64, name="ln"), occurrences=4)
        model = compile_model_for(prog, AMPERE)
        assert model.expanded_schedule().num_kernels == 4
