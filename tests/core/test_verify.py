"""Schedule auditor tests: clean schedules audit clean, doctored ones fire.

The auditor is only worth having if (a) it accepts everything the compiler
legitimately emits, across workloads and hardware targets, and (b) every
seeded miscompile — the mutation self-test — produces at least one error
finding from the matching check family.
"""

import copy

import pytest

from repro.core.memory_planner import check_memory_plan
from repro.core.schedule import ScheduleConfig
from repro.core.smg import SMGError
from repro.core.verify import (
    AUDIT_CHECKS,
    SEEDED_MUTATIONS,
    audit_program,
    run_selftest,
)
from repro.hw import AMPERE, VOLTA, ARCHITECTURES
from repro.models import layernorm_graph, mha_graph, mlp_graph
from repro.pipeline import compile_for, compile_model_for
from repro.core.verify import audit_model


@pytest.fixture(scope="module")
def mha_schedule():
    """Large enough that whole-extent blocks cannot fit on-chip — the
    inflate-config mutation must actually exceed the Ampere budget."""
    graph = mha_graph(1, 2, 256, 256, 64, name="mha_audit")
    schedule, _ = compile_for(graph, AMPERE)
    return schedule


class TestAuditorAcceptsCompilerOutput:
    @pytest.mark.parametrize("gpu_name", sorted(ARCHITECTURES))
    def test_workloads_audit_clean(self, gpu_name, small_mha, small_ln,
                                   small_mlp):
        gpu = ARCHITECTURES[gpu_name]
        for graph in (small_mha, small_ln, small_mlp):
            schedule, _ = compile_for(graph, gpu)
            report = audit_program(schedule, gpu, name=graph.name)
            assert report.ok, report.render()
            assert report.kernels_audited >= 1

    def test_accepts_raw_resource_config(self, small_ln):
        schedule, _ = compile_for(small_ln, AMPERE)
        report = audit_program(schedule, AMPERE.resource_config())
        assert report.ok

    def test_barrier_kernels_skipped(self):
        """A model with reshape/transpose barriers audits its compute
        kernels and skips the data-movement ones."""
        from repro.models.zoo import build_model

        model = compile_model_for(build_model("bert", batch=1, seq=32),
                                  AMPERE)
        report = audit_model(model, AMPERE)
        assert report.ok, report.render()
        assert report.kernels_skipped >= 1
        assert report.kernels_audited >= 1

    def test_report_render_and_dict(self, mha_schedule):
        report = audit_program(mha_schedule, AMPERE, name="mha")
        text = report.render()
        assert "mha" in text and "OK" in text
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["kernels_audited"] == report.kernels_audited


class TestSeededMutations:
    """Every doctored schedule must be flagged — the auditor has teeth."""

    def test_unmutated_baseline_is_clean(self, mha_schedule):
        assert audit_program(mha_schedule, AMPERE).ok

    @pytest.mark.parametrize("mutation", sorted(SEEDED_MUTATIONS))
    def test_mutation_fires(self, mha_schedule, mutation):
        mutated = copy.deepcopy(mha_schedule)
        applied = SEEDED_MUTATIONS[mutation](mutated)
        assert applied, f"{mutation} found no site in the MHA schedule"
        report = audit_program(mutated, AMPERE)
        assert not report.ok, f"{mutation} was not flagged"

    def test_run_selftest_all_fire(self, mha_schedule):
        results = run_selftest(mha_schedule, AMPERE)
        assert len(results) == len(SEEDED_MUTATIONS)
        for r in results:
            assert r.applied, f"{r.mutation} found no site"
            assert r.flagged, f"{r.mutation} missed"
            assert all(c in AUDIT_CHECKS for c in r.checks_fired)

    def test_drop_update_function_fires_uta_check(self, mha_schedule):
        mutated = copy.deepcopy(mha_schedule)
        assert SEEDED_MUTATIONS["drop-update-function"](mutated)
        report = audit_program(mutated, AMPERE)
        assert any(f.check == "uta" for f in report.errors), report.render()

    def test_inflated_config_fires_resources_check(self, mha_schedule):
        mutated = copy.deepcopy(mha_schedule)
        assert SEEDED_MUTATIONS["inflate-config-past-budget"](mutated)
        report = audit_program(mutated, AMPERE)
        assert any(f.check == "resources" for f in report.errors)


class TestIndividualChecks:
    def test_missing_block_size_flagged(self, mha_schedule):
        mutated = copy.deepcopy(mha_schedule)
        kernel = next(k for k in mutated.kernels if k.spatial_dims)
        kernel.config = ScheduleConfig(block=(),
                                       tile=kernel.effective_config().tile)
        report = audit_program(mutated, AMPERE)
        assert any(f.check == "config" and "no block size" in f.message
                   for f in report.errors), report.render()

    def test_memory_plan_missing_tensor_flagged(self, mha_schedule):
        mutated = copy.deepcopy(mha_schedule)
        kernel = next(k for k in mutated.kernels if k.memory_levels)
        kernel.memory_levels.pop(next(iter(kernel.memory_levels)))
        problems = check_memory_plan(kernel)
        assert any("no memory level" in p for p in problems)

    def test_memory_plan_unknown_level_flagged(self, mha_schedule):
        mutated = copy.deepcopy(mha_schedule)
        kernel = next(k for k in mutated.kernels if k.memory_levels)
        t = next(iter(kernel.memory_levels))
        kernel.memory_levels[t] = "texture"
        assert any("unknown level" in p for p in check_memory_plan(kernel))

    def test_empty_memory_plan_flagged(self, mha_schedule):
        mutated = copy.deepcopy(mha_schedule)
        kernel = next(k for k in mutated.kernels if k.memory_levels)
        kernel.memory_levels = {}
        assert check_memory_plan(kernel)


class TestExtendedSmgValidate:
    """The stricter SMG.validate catches structurally corrupt graphs."""

    def test_compiler_smgs_validate(self, small_mha):
        from repro.core.builder import build_smg

        build_smg(small_mha).validate()  # must not raise

    def test_o2o_direction_dims_rejected(self, small_mha):
        from repro.core.builder import build_smg
        from repro.core.mappings import O2O, O2A, Mapping

        smg = build_smg(small_mha)
        # Doctor an O2O into carrying the dims of an O2A without updating
        # its endpoints: dataclass __post_init__ forbids constructing such
        # a Mapping directly, so splice mismatched endpoints instead.
        o2a = next(m for m in smg.mappings if m.kind is O2A)
        o2o = next(m for m in smg.mappings if m.kind is O2O)
        bad = Mapping(src=o2a.src, dst=o2a.dst, kind=O2O)
        smg.mappings[smg.mappings.index(o2o)] = bad
        with pytest.raises(SMGError):
            smg.validate()

    def test_unknown_endpoint_rejected(self, small_mha):
        from repro.core.builder import build_smg
        from repro.core.mappings import O2O, Mapping

        smg = build_smg(small_mha)
        smg.mappings.append(Mapping(src="QK", dst="ghost", kind=O2O))
        with pytest.raises(SMGError, match="endpoint"):
            smg.validate()

    def test_a2o_uncovered_dims_rejected(self, small_mha):
        from repro.core.builder import build_smg
        from repro.core.mappings import A2O, Mapping

        smg = build_smg(small_mha)
        m = next(m for m in smg.mappings if m.kind is A2O)
        # Shrink the direction so the source loses a dim the direction
        # does not cover.
        if len(m.dims) == 1:
            src = smg.spaces[m.src]
            dst = smg.spaces[m.dst]
            lost = set(src.dims) - set(dst.dims)
            assert lost == set(m.dims)
            # Retarget the A2O at a destination lacking more dims.
            smaller = next(
                (s.name for s in smg.data_spaces()
                 if set(s.dims) < set(dst.dims)), None)
            if smaller is None:
                pytest.skip("no smaller data space in this SMG")
            bad = Mapping(src=m.src, dst=smaller, kind=A2O,
                          dims=m.dims, reduce_kind=m.reduce_kind)
            smg.mappings[smg.mappings.index(m)] = bad
            with pytest.raises(SMGError):
                smg.validate()

    def test_bad_reduce_kind_rejected(self, small_mha):
        from repro.core.builder import build_smg
        from repro.core.mappings import A2O, Mapping

        smg = build_smg(small_mha)
        m = next(m for m in smg.mappings if m.kind is A2O)
        bad = Mapping(src=m.src, dst=m.dst, kind=A2O, dims=m.dims,
                      reduce_kind="xor")
        smg.mappings[smg.mappings.index(m)] = bad
        with pytest.raises(SMGError, match="reduce kind"):
            smg.validate()


class TestAuditAcrossTargets:
    def test_volta_and_ampere_budgets_differ_but_audit_clean(self):
        graph = mha_graph(1, 4, 128, 128, 32, name="mha_targets")
        for gpu in (VOLTA, AMPERE):
            schedule, _ = compile_for(graph, gpu)
            assert audit_program(schedule, gpu).ok

    def test_selftest_reports_unapplicable_mutations(self):
        """A kernel with no temporal plan has no UTA mutation site; the
        self-test reports applied=False rather than a spurious pass."""
        schedule, _ = compile_for(mlp_graph(4, 64, 32, 32,
                                            name="mlp_selftest"), AMPERE)
        results = {r.mutation: r for r in run_selftest(schedule, AMPERE)}
        drop = results["drop-update-function"]
        assert drop.ok  # not applied counts as ok, not as a miss
        infl = results["inflate-config-past-budget"]
        assert infl.applied
