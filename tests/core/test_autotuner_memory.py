"""Tests for the auto-tuner (section 6.5) and memory planner (section 5.4)."""

import pytest

from repro.core.autotuner import TuneResult, pick_best, tune_kernel
from repro.core.builder import build_smg
from repro.core.memory_planner import (
    GLOBAL,
    REGISTER,
    SHARED,
    plan_memory_levels,
    register_tensors,
    shared_tensors,
)
from repro.core.schedule import KernelSchedule, ScheduleConfig
from repro.core.temporal_slicer import plan_temporal_slice


def _kernel_with_space(small_mha, n=6):
    smg = build_smg(small_mha)
    plan = plan_temporal_slice(smg, "l")
    k = KernelSchedule("k", smg, ("m",), plan)
    k.search_space = [ScheduleConfig(block=(("m", 8 * (i + 1)),), tile=16)
                      for i in range(n)]
    return k


class TestAutotuner:
    def test_picks_fastest(self, small_mha):
        kernel = _kernel_with_space(small_mha)
        times = {cfg: 1.0 / (i + 1)
                 for i, cfg in enumerate(kernel.search_space)}
        res = tune_kernel(kernel, lambda k, c: times[c])
        assert res.best_config == kernel.search_space[-1]
        assert kernel.config == res.best_config

    def test_winner_always_completes_full_campaign(self, small_mha):
        """Regression (section 6.5): a 2x-better config lands inside the
        old rule's abandonment window (t * MEASURE_RUNS > budget), which
        abandoned it mid-campaign yet still crowned it — the winner was
        counted quit-early and billed a truncated campaign.  A config
        beating the incumbent must instead complete its full campaign.
        """
        kernel = _kernel_with_space(small_mha, n=2)
        times = dict(zip(kernel.search_space, (1.0, 0.5)))
        res = tune_kernel(kernel, lambda k, c: times[c], alpha=0.25)
        assert res.best_config == kernel.search_space[1]
        assert res.configs_quit_early == 0
        assert res.tuning_wall_time == pytest.approx(120 * 1.0 + 120 * 0.5)

    def test_early_quit_counts(self, small_mha):
        kernel = _kernel_with_space(small_mha)
        # First config is fast; the rest are 100x slower -> quit early.
        def timing(k, cfg):
            return 1e-6 if cfg is kernel.search_space[0] else 1e-4
        res = tune_kernel(kernel, timing, alpha=0.25)
        assert res.configs_quit_early == len(kernel.search_space) - 1

    def test_early_quit_shortens_campaign(self, small_mha):
        kernel = _kernel_with_space(small_mha)
        def timing(k, cfg):
            return 1e-6 if cfg is kernel.search_space[0] else 1e-4
        with_quit = tune_kernel(kernel, timing, alpha=0.25).tuning_wall_time
        without = tune_kernel(kernel, timing, alpha=1e9).tuning_wall_time
        assert with_quit < without

    def test_wall_time_counts_runs(self, small_mha):
        kernel = _kernel_with_space(small_mha, n=1)
        res = tune_kernel(kernel, lambda k, c: 1e-3)
        assert res.tuning_wall_time == pytest.approx(120 * 1e-3)

    def test_timings_recorded(self, small_mha):
        kernel = _kernel_with_space(small_mha)
        res = tune_kernel(kernel, lambda k, c: 1e-3)
        assert len(res.timings) == len(kernel.search_space)

    def test_pick_best(self, small_mha):
        kernel = _kernel_with_space(small_mha)
        results = [
            TuneResult(kernel, kernel.search_space[0], t, 1, 0, 0.0)
            for t in (3.0, 1.0, 2.0)
        ]
        assert pick_best(results).best_time == 1.0

    def test_pick_best_empty_raises(self):
        with pytest.raises(ValueError):
            pick_best([])


class TestMemoryPlanner:
    def test_inputs_outputs_global(self, small_mha):
        kernel = _kernel_with_space(small_mha)
        levels = plan_memory_levels(kernel)
        for t in ("Q", "K", "V", "Out"):
            assert levels[t] == GLOBAL

    def test_aggregates_in_registers(self, small_mha):
        """The running max/sum live in registers, like FlashAttention's
        online statistics."""
        kernel = _kernel_with_space(small_mha)
        levels = plan_memory_levels(kernel)
        outputs = set(kernel.exec_graph.output_tensors)
        for s in kernel.plan.stages:
            if s.output in levels and s.output not in outputs:
                assert levels[s.output] == REGISTER

    def test_a2o_sink_in_shared(self, small_mha):
        """QK — the sink of GEMM1's All-to-One — maps to shared memory
        (section 5.4)."""
        kernel = _kernel_with_space(small_mha)
        levels = plan_memory_levels(kernel)
        assert levels["QK"] == SHARED

    def test_o2o_chain_in_registers(self, small_mha):
        kernel = _kernel_with_space(small_mha)
        levels = plan_memory_levels(kernel)
        sub_out = next(op.output for op in kernel.exec_graph.ops
                       if op.kind == "sub")
        assert levels[sub_out] == REGISTER

    def test_every_tensor_assigned(self, small_ln):
        from repro.core.builder import build_smg as bs
        smg = bs(small_ln)
        plan = plan_temporal_slice(smg, "n")
        kernel = KernelSchedule("k", smg, ("m",), plan)
        levels = plan_memory_levels(kernel)
        assert set(levels) == set(kernel.exec_graph.tensors)

    def test_level_query_helpers(self, small_mha):
        kernel = _kernel_with_space(small_mha)
        kernel.memory_levels = plan_memory_levels(kernel)
        assert set(shared_tensors(kernel)) | set(register_tensors(kernel)) \
            <= set(kernel.exec_graph.tensors)
