"""Tests for SMG construction and queries, mirroring Figures 3, 4 and 5."""

import pytest

from repro.core.builder import build_op_smg, build_smg, iteration_space_of, op_of_iteration_space
from repro.core.mappings import A2O, O2A, O2O
from repro.core.smg import SMGError
from repro.core.spaces import DataSpace, IterationSpace
from repro.ir import GraphBuilder


@pytest.fixture
def gemm_graph():
    """The single-operator GEMM of Figure 3: QK = GEMM(Query, Key)."""
    b = GraphBuilder("gemm")
    q = b.input("Query", [("m", 8), ("k", 4)])
    k = b.input("Key", [("n", 6), ("k", 4)])
    b.matmul(q, k, reduce_dim="k", out_name="QK")
    return b.build()


class TestFigure3SingleOperator:
    """The SMG of one GEMM, as drawn in Figure 3(c)."""

    def test_four_spaces(self, gemm_graph):
        smg = build_smg(gemm_graph)
        data = {s.name for s in smg.data_spaces()}
        assert data == {"Query", "Key", "QK"}
        assert len(smg.iteration_spaces()) == 1

    def test_query_o2a_along_n(self, gemm_graph):
        smg = build_smg(gemm_graph)
        [edge] = [m for m in smg.out_edges("Query")]
        assert edge.kind is O2A
        assert edge.dims == frozenset({"n"})

    def test_key_o2a_along_m(self, gemm_graph):
        smg = build_smg(gemm_graph)
        [edge] = smg.out_edges("Key")
        assert edge.kind is O2A
        assert edge.dims == frozenset({"m"})

    def test_a2o_into_output_along_k(self, gemm_graph):
        smg = build_smg(gemm_graph)
        [edge] = smg.in_edges("QK")
        assert edge.kind is A2O
        assert edge.dims == frozenset({"k"})
        assert edge.reduce_kind == "sum"

    def test_render_shows_placeholders(self, gemm_graph):
        text = build_smg(gemm_graph).render()
        assert "Query(m,-,k)" in text
        assert "Key(-,n,k)" in text
        assert "QK(m,n,-)" in text

    def test_build_op_smg_matches(self, gemm_graph):
        smg = build_op_smg(gemm_graph, gemm_graph.ops[0].name)
        assert {s.name for s in smg.data_spaces()} == {"Query", "Key", "QK"}


class TestFigure4Fusion:
    """Connecting GEMM and Softmax into one fused SMG (Figure 4)."""

    def test_intermediate_fused_into_single_space(self, small_softmax_gemm):
        smg = build_smg(small_softmax_gemm)
        # Softmax's input and the final GEMM's input div tensor appear once.
        names = [s.name for s in smg.data_spaces()]
        assert len(names) == len(set(names))

    def test_inter_operator_o2o_edges_exist(self, small_mha):
        smg = build_smg(small_mha)
        o2o = [m for m in smg.mappings if m.kind is O2O]
        assert len(o2o) >= 4  # QK->max, QK->sub, exp->sum, exp->div chains


class TestFigure5MHA:
    def test_mha_has_ten_directed_mappings(self, small_mha):
        """Section 4.1: MHA's visualised SMG depicts 6 One-to-Alls and
        4 All-to-Ones (One-to-One fusion edges excluded)."""
        smg = build_smg(small_mha)
        o2a = [m for m in smg.mappings if m.kind is O2A]
        a2o = [m for m in smg.mappings if m.kind is A2O]
        assert len(a2o) == 4
        assert len(o2a) == 6

    def test_three_parallel_a2o_one_orthogonal(self, small_mha):
        """The last three All-to-Ones (softmax max/sum and GEMM2) are
        geometrically parallel along l; GEMM1's is orthogonal along dk."""
        smg = build_smg(small_mha)
        a2o = [m for m in smg.mappings if m.kind is A2O]
        along_l = [m for m in a2o if m.along("l")]
        along_dk = [m for m in a2o if m.along("dk")]
        assert len(along_l) == 3
        assert len(along_dk) == 1

    def test_aligned_dim_groups_merge_feature_dims(self, small_mha):
        """Dimension alignment folds the two feature dims into one slot
        (MHA's 3-dim core of Figure 5) when their extents match."""
        b = GraphBuilder("mha_eq")
        q = b.input("Q", [("m", 64), ("dk", 32)])
        k = b.input("K", [("l", 64), ("dk", 32)])
        v = b.input("V", [("l", 64), ("dv", 32)])
        qk = b.matmul(q, k, reduce_dim="dk", out_name="QK")
        p = b.softmax(qk, dim="l")
        b.matmul(p, v, reduce_dim="l", out_name="Out")
        smg = build_smg(b.build())
        groups = smg.aligned_dim_groups()
        assert ("dk", "dv") in groups or ("dv", "dk") in groups
        assert len(groups) == 3  # m, l, {dk,dv}

    def test_unequal_feature_dims_do_not_merge(self, small_mha):
        smg = build_smg(small_mha)  # dk=24, dv=40
        groups = smg.aligned_dim_groups()
        assert all(len(g) == 1 for g in groups)


class TestA2OChains:
    def test_mha_chain_is_dependent(self, small_mha):
        smg = build_smg(small_mha)
        chains = smg.a2o_dependency_chains("l")
        assert len(chains) == 1
        kinds = [m.reduce_kind for m in chains[0]]
        assert kinds == ["max", "sum", "sum"]  # max <- sum <- dot

    def test_independent_reductions_form_singletons(self):
        b = GraphBuilder("two_reduce")
        x = b.input("X", [("m", 8), ("n", 6)])
        b.reduce("max", x, dim="n", out_name="Mx")
        b.reduce("sum", x, dim="n", out_name="Sm")
        smg = build_smg(b.build())
        chains = smg.a2o_dependency_chains("n")
        assert len(chains) == 2
        assert all(len(c) == 1 for c in chains)

    def test_layernorm_chain_is_dependent_before_rewrite(self, small_ln):
        smg = build_smg(small_ln)
        chains = smg.a2o_dependency_chains("n")
        assert len(chains) == 1
        assert len(chains[0]) == 2  # mean <- mean of squares


class TestSMGQueries:
    def test_roles(self, small_mha):
        smg = build_smg(small_mha)
        assert {s.name for s in smg.input_spaces()} == {"Q", "K", "V"}
        assert {s.name for s in smg.output_spaces()} == {"Out"}
        assert len(smg.intermediate_spaces()) == 6

    def test_volume_along(self, small_mha):
        smg = build_smg(small_mha)
        assert smg.volume_along("l") > 0
        assert smg.volume_along("m") > smg.volume_along("dv")

    def test_reaches(self, small_mha):
        smg = build_smg(small_mha)
        assert smg.reaches("Q", "Out")
        assert not smg.reaches("Out", "Q")

    def test_unknown_space_raises(self, small_mha):
        smg = build_smg(small_mha)
        with pytest.raises(SMGError):
            smg.space("ghost")

    def test_iteration_space_lookup(self, small_mha):
        smg = build_smg(small_mha)
        it = iteration_space_of(smg, small_mha.ops[0].name)
        assert isinstance(smg.space(it), IterationSpace)
        op = op_of_iteration_space(smg, it)
        assert op.name == small_mha.ops[0].name

    def test_op_of_data_space_raises(self, small_mha):
        smg = build_smg(small_mha)
        with pytest.raises(SMGError, match="not an iteration space"):
            op_of_iteration_space(smg, "Q")

    def test_validate_passes(self, small_mha):
        build_smg(small_mha).validate()

    def test_barrier_graph_rejected(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8)])
        b.barrier("reshape", x, [("a", 2), ("c", 4)])
        with pytest.raises(SMGError, match="barrier"):
            build_smg(b.build())

    def test_input_o2a_along_spatial_dim(self, small_mha):
        smg = build_smg(small_mha)
        inputs = smg.input_o2a_along("m")
        assert {m.src for m in inputs} == {"K", "V"}

    def test_blocking_mappings_table3(self, small_mha):
        smg = build_smg(small_mha)
        assert smg.blocking_mappings_for_spatial("m") == []
        assert len(smg.blocking_mappings_for_spatial("l")) > 0
        # dk carries GEMM1's reduction
        assert any(m.kind is A2O
                   for m in smg.blocking_mappings_for_spatial("dk"))
