"""Auto-tuner edge cases: degenerate search spaces and extreme alpha.

Complements test_autotuner_memory.py, which covers the common paths;
here the concern is that TuneResult accounting (configs_quit_early,
tuning_wall_time) stays consistent when the space is empty, a single
point, or when alpha=0 makes the early-quit rule maximally aggressive.
"""

import math

import pytest

from repro.core.autotuner import (
    MEASURE_RUNS,
    WARMUP_RUNS,
    apply_tune_result,
    evaluate_search_space,
    tune_kernel,
)
from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ScheduleConfig
from repro.core.temporal_slicer import plan_temporal_slice


def _kernel(small_mha, n):
    smg = build_smg(small_mha)
    plan = plan_temporal_slice(smg, "l")
    k = KernelSchedule("k", smg, ("m",), plan)
    k.search_space = [ScheduleConfig(block=(("m", 8 * (i + 1)),), tile=16)
                      for i in range(n)]
    return k


class TestEmptySpace:
    def test_empty_space_accounting(self, small_mha):
        kernel = _kernel(small_mha, 0)
        res = tune_kernel(kernel, lambda k, c: 1.0)
        assert res.best_config is None
        assert math.isinf(res.best_time)
        assert res.configs_evaluated == 0
        assert res.configs_quit_early == 0
        assert res.tuning_wall_time == 0.0
        assert res.timings == []
        assert kernel.config is None


class TestSingleConfig:
    def test_single_config_never_quits_early(self, small_mha):
        kernel = _kernel(small_mha, 1)
        res = tune_kernel(kernel, lambda k, c: 0.25)
        assert res.best_config == kernel.search_space[0]
        assert kernel.config == res.best_config
        assert res.configs_evaluated == 1
        assert res.configs_quit_early == 0
        # The lone config pays the full campaign: warmup + measured runs.
        assert res.tuning_wall_time == \
            pytest.approx((WARMUP_RUNS + MEASURE_RUNS) * 0.25)


class TestAlphaZero:
    def test_alpha_zero_quits_every_later_config(self, small_mha):
        kernel = _kernel(small_mha, 5)
        times = {cfg: 1.0 + i
                 for i, cfg in enumerate(kernel.search_space)}
        res = tune_kernel(kernel, lambda k, c: times[c], alpha=0.0)
        # First config measured in full, all later configs get the minimum
        # one run before the zero budget cuts them off.
        assert res.configs_evaluated == 5
        assert res.configs_quit_early == 4
        expected_wall = (WARMUP_RUNS + MEASURE_RUNS) * 1.0 + \
            sum(times[c] for c in kernel.search_space[1:])
        assert res.tuning_wall_time == pytest.approx(expected_wall)
        assert res.best_config == kernel.search_space[0]

    def test_alpha_zero_still_finds_later_better_config(self, small_mha):
        """Regression (section 6.5): a config beating the incumbent is
        never cut short — even a zero budget only trims losers.  The old
        rule abandoned the faster config mid-campaign yet still crowned
        it, leaving quit_early and the wall-clock inconsistent with the
        winner having been measured in full.
        """
        kernel = _kernel(small_mha, 3)
        times = dict(zip(kernel.search_space, (2.0, 3.0, 0.5)))
        res = tune_kernel(kernel, lambda k, c: times[c], alpha=0.0)
        assert res.best_config == kernel.search_space[2]
        assert res.best_time == 0.5
        # Only the slower middle config is abandoned (one token run);
        # the winner pays its full campaign.
        assert res.configs_quit_early == 1
        assert res.tuning_wall_time == pytest.approx(
            (WARMUP_RUNS + MEASURE_RUNS) * 2.0 + 1 * 3.0
            + (WARMUP_RUNS + MEASURE_RUNS) * 0.5)


class TestWallTimeConsistency:
    def test_wall_time_equals_runs_times_cost(self, small_mha):
        """Recompute the campaign from TuneResult.timings and match it."""
        kernel = _kernel(small_mha, 6)
        times = {cfg: [1.0, 0.4, 5.0, 0.2, 9.0, 0.1][i]
                 for i, cfg in enumerate(kernel.search_space)}
        alpha = 0.25
        res = tune_kernel(kernel, lambda k, c: times[c], alpha=alpha)

        wall = 0.0
        best = None
        quit_early = 0
        for cfg, t in res.timings:
            abandoned = False
            if best is None or t < best:
                # Beating the incumbent: never cut short.
                runs = WARMUP_RUNS + MEASURE_RUNS
            else:
                budget = alpha * (WARMUP_RUNS + MEASURE_RUNS) * best
                if t * MEASURE_RUNS > budget:
                    runs = min(WARMUP_RUNS + MEASURE_RUNS,
                               max(1, int(budget / t)))
                    abandoned = runs < WARMUP_RUNS + MEASURE_RUNS
                    if abandoned:
                        quit_early += 1
                else:
                    runs = WARMUP_RUNS + MEASURE_RUNS
            wall += runs * t
            if not abandoned and (best is None or t < best):
                best = t
        assert res.tuning_wall_time == pytest.approx(wall)
        assert res.configs_quit_early == quit_early
        assert res.best_time == min(times.values())
        # For this walk only the losers (5.0 and 9.0) are cut short; the
        # improving configs 0.4, 0.2, 0.1 each complete a full campaign.
        assert res.configs_quit_early == 2


class TestPureEvaluation:
    def test_evaluate_does_not_mutate_kernel(self, small_mha):
        kernel = _kernel(small_mha, 4)
        assert kernel.config is None
        res = evaluate_search_space(kernel, lambda k, c: 1.0)
        assert kernel.config is None          # untouched by evaluation
        apply_tune_result(res)
        assert kernel.config == res.best_config
