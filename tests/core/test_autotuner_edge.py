"""Auto-tuner edge cases: degenerate search spaces and extreme alpha.

Complements test_autotuner_memory.py, which covers the common paths;
here the concern is that TuneResult accounting (configs_quit_early,
tuning_wall_time) stays consistent when the space is empty, a single
point, or when alpha=0 makes the early-quit rule maximally aggressive.
"""

import math

import pytest

from repro.core.autotuner import (
    MEASURE_RUNS,
    WARMUP_RUNS,
    apply_tune_result,
    config_sort_key,
    evaluate_search_space,
    pick_best,
    tune_kernel,
)
from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ScheduleConfig
from repro.core.temporal_slicer import plan_temporal_slice


def _kernel(small_mha, n):
    smg = build_smg(small_mha)
    plan = plan_temporal_slice(smg, "l")
    k = KernelSchedule("k", smg, ("m",), plan)
    k.search_space = [ScheduleConfig(block=(("m", 8 * (i + 1)),), tile=16)
                      for i in range(n)]
    return k


class TestEmptySpace:
    def test_empty_space_accounting(self, small_mha):
        kernel = _kernel(small_mha, 0)
        res = tune_kernel(kernel, lambda k, c: 1.0)
        assert res.best_config is None
        assert math.isinf(res.best_time)
        assert res.configs_evaluated == 0
        assert res.configs_quit_early == 0
        assert res.tuning_wall_time == 0.0
        assert res.timings == []
        assert kernel.config is None


class TestSingleConfig:
    def test_single_config_never_quits_early(self, small_mha):
        kernel = _kernel(small_mha, 1)
        res = tune_kernel(kernel, lambda k, c: 0.25)
        assert res.best_config == kernel.search_space[0]
        assert kernel.config == res.best_config
        assert res.configs_evaluated == 1
        assert res.configs_quit_early == 0
        # The lone config pays the full campaign: warmup + measured runs.
        assert res.tuning_wall_time == \
            pytest.approx((WARMUP_RUNS + MEASURE_RUNS) * 0.25)


class TestAlphaZero:
    def test_alpha_zero_quits_every_later_config(self, small_mha):
        kernel = _kernel(small_mha, 5)
        times = {cfg: 1.0 + i
                 for i, cfg in enumerate(kernel.search_space)}
        res = tune_kernel(kernel, lambda k, c: times[c], alpha=0.0)
        # First config measured in full, all later configs get the minimum
        # one run before the zero budget cuts them off.
        assert res.configs_evaluated == 5
        assert res.configs_quit_early == 4
        expected_wall = (WARMUP_RUNS + MEASURE_RUNS) * 1.0 + \
            sum(times[c] for c in kernel.search_space[1:])
        assert res.tuning_wall_time == pytest.approx(expected_wall)
        assert res.best_config == kernel.search_space[0]

    def test_alpha_zero_still_finds_later_better_config(self, small_mha):
        """Regression (section 6.5): a config beating the incumbent is
        never cut short — even a zero budget only trims losers.  The old
        rule abandoned the faster config mid-campaign yet still crowned
        it, leaving quit_early and the wall-clock inconsistent with the
        winner having been measured in full.
        """
        kernel = _kernel(small_mha, 3)
        times = dict(zip(kernel.search_space, (2.0, 3.0, 0.5)))
        res = tune_kernel(kernel, lambda k, c: times[c], alpha=0.0)
        assert res.best_config == kernel.search_space[2]
        assert res.best_time == 0.5
        # Only the slower middle config is abandoned (one token run);
        # the winner pays its full campaign.
        assert res.configs_quit_early == 1
        assert res.tuning_wall_time == pytest.approx(
            (WARMUP_RUNS + MEASURE_RUNS) * 2.0 + 1 * 3.0
            + (WARMUP_RUNS + MEASURE_RUNS) * 0.5)


class TestWallTimeConsistency:
    def test_wall_time_equals_runs_times_cost(self, small_mha):
        """Recompute the campaign from TuneResult.timings and match it."""
        kernel = _kernel(small_mha, 6)
        times = {cfg: [1.0, 0.4, 5.0, 0.2, 9.0, 0.1][i]
                 for i, cfg in enumerate(kernel.search_space)}
        alpha = 0.25
        res = tune_kernel(kernel, lambda k, c: times[c], alpha=alpha)

        wall = 0.0
        best = None
        quit_early = 0
        for cfg, t in res.timings:
            abandoned = False
            if best is None or t < best:
                # Beating the incumbent: never cut short.
                runs = WARMUP_RUNS + MEASURE_RUNS
            else:
                budget = alpha * (WARMUP_RUNS + MEASURE_RUNS) * best
                if t * MEASURE_RUNS > budget:
                    runs = min(WARMUP_RUNS + MEASURE_RUNS,
                               max(1, int(budget / t)))
                    abandoned = runs < WARMUP_RUNS + MEASURE_RUNS
                    if abandoned:
                        quit_early += 1
                else:
                    runs = WARMUP_RUNS + MEASURE_RUNS
            wall += runs * t
            if not abandoned and (best is None or t < best):
                best = t
        assert res.tuning_wall_time == pytest.approx(wall)
        assert res.configs_quit_early == quit_early
        assert res.best_time == min(times.values())
        # For this walk only the losers (5.0 and 9.0) are cut short; the
        # improving configs 0.4, 0.2, 0.1 each complete a full campaign.
        assert res.configs_quit_early == 2


class TestPureEvaluation:
    def test_evaluate_does_not_mutate_kernel(self, small_mha):
        kernel = _kernel(small_mha, 4)
        assert kernel.config is None
        res = evaluate_search_space(kernel, lambda k, c: 1.0)
        assert kernel.config is None          # untouched by evaluation
        apply_tune_result(res)
        assert kernel.config == res.best_config


class TestDeterministicTieBreak:
    def test_tie_resolves_by_config_key_not_order(self, small_mha):
        """Exact timing ties crown the smallest config_sort_key whichever
        side of the comparison it arrives on — forward and reversed
        evaluation orders must agree."""
        kernel = _kernel(small_mha, 6)
        forward = evaluate_search_space(kernel, lambda k, c: 1.0)
        reverse = evaluate_search_space(
            kernel, lambda k, c: 1.0,
            candidates=list(reversed(kernel.search_space)))
        assert forward.best_config == reverse.best_config
        assert forward.best_config == min(
            kernel.search_space, key=config_sort_key)

    def test_tie_winner_bills_full_campaign(self, small_mha):
        """A tie-winning config counts as on-track: it completes (and is
        billed for) the full campaign rather than being abandoned."""
        kernel = _kernel(small_mha, 2)
        # Reversed order: the smaller-key config arrives second, tied.
        res = evaluate_search_space(
            kernel, lambda k, c: 2.0,
            candidates=list(reversed(kernel.search_space)))
        assert res.configs_quit_early == 0
        assert res.tuning_wall_time == pytest.approx(
            2 * (WARMUP_RUNS + MEASURE_RUNS) * 2.0)

    def test_pick_best_tie_ignores_result_order(self, small_mha):
        ka = _kernel(small_mha, 2)
        ka.name = "alpha"
        kb = _kernel(small_mha, 3)
        kb.name = "beta"
        a = tune_kernel(ka, lambda k, c: 1.0)
        b = tune_kernel(kb, lambda k, c: 1.0)
        # Fully tied (time and config key): the kernel name breaks the
        # tie, never the list position.
        assert pick_best([a, b]) is a
        assert pick_best([b, a]) is a


class TestCandidatesOverride:
    def test_candidates_change_wall_not_winner(self, small_mha):
        """Feeding the eventual winner first lets the budget trim every
        later config; the winner itself is order-independent."""
        kernel = _kernel(small_mha, 6)
        # Worst-first in enumeration order, so plain evaluation never
        # gets to trim anything while guided trims everything.
        times = {cfg: 6.0 - i
                 for i, cfg in enumerate(kernel.search_space)}
        plain = evaluate_search_space(kernel, lambda k, c: times[c])
        best_first = sorted(kernel.search_space, key=lambda c: times[c])
        guided = evaluate_search_space(kernel, lambda k, c: times[c],
                                       candidates=best_first)
        assert guided.best_config == plain.best_config
        assert guided.best_time == plain.best_time
        assert guided.tuning_wall_time < plain.tuning_wall_time

    def test_candidates_counted_as_evaluated(self, small_mha):
        kernel = _kernel(small_mha, 4)
        res = evaluate_search_space(
            kernel, lambda k, c: 1.0,
            candidates=kernel.search_space[:2])
        assert res.configs_evaluated == 2


class TestKeepTimings:
    def test_keep_timings_false_drops_trace_only(self, small_mha):
        kernel = _kernel(small_mha, 5)
        times = {cfg: 5.0 - i * 0.5
                 for i, cfg in enumerate(kernel.search_space)}
        kept = evaluate_search_space(kernel, lambda k, c: times[c])
        dropped = evaluate_search_space(kernel, lambda k, c: times[c],
                                        keep_timings=False)
        assert len(kept.timings) == 5
        assert dropped.timings == []
        # Identical accounting either way: the trace is observability,
        # not state the campaign depends on.
        assert dropped.best_config == kept.best_config
        assert dropped.tuning_wall_time == pytest.approx(
            kept.tuning_wall_time)
        assert dropped.configs_quit_early == kept.configs_quit_early

    def test_tune_kernel_passes_keep_timings(self, small_mha):
        kernel = _kernel(small_mha, 3)
        res = tune_kernel(kernel, lambda k, c: 1.0, keep_timings=False)
        assert res.timings == []
        assert kernel.config == res.best_config
