"""Tests for the section-2 dependency census."""

import pytest

from repro.core.analysis import mapping_census, single_output_dependency_stats
from repro.ir import GraphBuilder


def _mha(L, K, M=6):
    """Plain MHA in the paper's Figure-1 setting (no scale/mask)."""
    b = GraphBuilder("mha")
    q = b.input("Query", [("m", M), ("dk", K)])
    k = b.input("Key", [("l", L), ("dk", K)])
    v = b.input("Value", [("l", L), ("dv", K)])
    qk = b.matmul(q, k, reduce_dim="dk", out_name="QK")
    p = b.softmax(qk, dim="l")
    b.matmul(p, v, reduce_dim="l", out_name="Out")
    return b.build()


class TestMHACensus:
    """The paper (section 2): a single MHA output element depends on
    (2LK + 4K + 2) elements from 8 tensors through 6 layers of nesting,
    via 6 One-to-Alls and 4 All-to-Ones.

    Our decomposition is one op finer (the paper folds ``exp(QK - Max)``
    into one node and counts Value rows at full width), so the machine-
    derived closed form here is ``LK + 5L + K + 2`` over 9 tensors with
    7 nesting layers — same quadratic structure, same mapping census.
    """

    @pytest.mark.parametrize("L,K", [(5, 3), (8, 4), (16, 8), (7, 7)])
    def test_element_count_closed_form(self, L, K):
        stats = single_output_dependency_stats(_mha(L, K))
        assert stats.total_elements == L * K + 5 * L + K + 2

    def test_wide_ranges_cover_whole_dimensions(self):
        """'Wide dependency ranges covering the whole range of a tensor
        dimension': Key contributes all L*K elements, QK its whole row."""
        L, K = 8, 4
        stats = single_output_dependency_stats(_mha(L, K))
        assert stats.elements_by_tensor["Key"] == L * K
        assert stats.elements_by_tensor["QK"] == L
        assert stats.elements_by_tensor["Query"] == K

    def test_scalars_from_reductions(self):
        stats = single_output_dependency_stats(_mha(8, 4))
        assert stats.elements_by_tensor["rmax_2"] == 1
        assert stats.elements_by_tensor["rsum_8"] == 1

    def test_nesting_depth(self):
        # Paper: 6 layers for its 5-op softmax folding; ours splits sub/exp.
        stats = single_output_dependency_stats(_mha(8, 4))
        assert stats.nesting_depth == 7

    def test_mapping_census_matches_paper(self):
        """Exactly the paper's Figure-5 count: 6 O2A + 4 A2O."""
        census = mapping_census(_mha(8, 4))
        assert census["O2A"] == 6
        assert census["A2O"] == 4

    def test_describe(self):
        text = single_output_dependency_stats(_mha(5, 3)).describe()
        assert "45 elements" in text


class TestOtherGraphs:
    def test_elementwise_chain_depends_on_one_element_per_tensor(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8), ("n", 4)])
        e = b.unary("exp", x)
        b.unary("relu", e, out_name="Y")
        stats = single_output_dependency_stats(b.build())
        assert stats.total_elements == 2  # one element of X, one of exp
        assert stats.nesting_depth == 2

    def test_reduction_pulls_whole_dimension(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8), ("n", 12)])
        b.reduce("sum", x, dim="n", out_name="S")
        stats = single_output_dependency_stats(b.build())
        assert stats.elements_by_tensor["X"] == 12

    def test_chosen_element_matters_only_by_position(self):
        g = _mha(6, 4)
        a = single_output_dependency_stats(g, element=(0, 0))
        b2 = single_output_dependency_stats(g, element=(3, 2))
        assert a.total_elements == b2.total_elements

    def test_layernorm_census(self, small_ln):
        stats = single_output_dependency_stats(small_ln)
        n = small_ln.dims.size("n")
        # The whole row is pulled through both reductions.
        assert stats.elements_by_tensor["X"] == n
