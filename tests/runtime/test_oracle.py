"""Differential-oracle tests: NaN-safe comparison, shrinking, reproducers."""

import numpy as np
import pytest

from repro.hw import AMPERE
from repro.ir import GraphBuilder
from repro.runtime.oracle import (
    DTYPE_TOLERANCES,
    differential_test,
    graph_from_dict,
    graph_to_dict,
    load_reproducer,
    nan_safe_max_abs_err,
    save_reproducer,
    shrink_graph,
    shrink_to_reproducer,
    tolerance_for,
)


class TestNanSafeMaxAbsErr:
    def test_finite_arrays(self):
        err = nan_safe_max_abs_err(np.array([1.0, 2.0]),
                                   np.array([1.0, 2.5]))
        assert err == pytest.approx(0.5)

    def test_nan_in_got_propagates(self):
        """The bug class this kills: builtin max(0.0, nan) returns 0.0,
        so a plain reduction lets NaN outputs pass any tolerance gate."""
        err = nan_safe_max_abs_err(np.array([np.nan, 1.0]),
                                   np.array([0.0, 1.0]))
        assert np.isnan(err)
        assert not (err <= 1e30)   # the gate everyone must use

    def test_nan_in_expected_propagates(self):
        assert np.isnan(nan_safe_max_abs_err(np.array([0.0]),
                                             np.array([np.nan])))

    def test_matching_nans_contribute_zero(self):
        err = nan_safe_max_abs_err(np.array([np.nan, 2.0]),
                                   np.array([np.nan, 2.0]))
        assert err == 0.0

    def test_matching_infs_contribute_zero(self):
        err = nan_safe_max_abs_err(np.array([np.inf, -np.inf, 1.0]),
                                   np.array([np.inf, -np.inf, 1.0]))
        assert err == 0.0

    def test_inf_sign_mismatch_propagates(self):
        assert np.isnan(nan_safe_max_abs_err(np.array([np.inf]),
                                             np.array([-np.inf])))

    def test_inf_position_mismatch_propagates(self):
        assert np.isnan(nan_safe_max_abs_err(np.array([np.inf, 1.0]),
                                             np.array([1.0, np.inf])))

    def test_shape_mismatch_propagates(self):
        assert np.isnan(nan_safe_max_abs_err(np.zeros(3), np.zeros(4)))

    def test_all_nan_matching(self):
        assert nan_safe_max_abs_err(np.array([np.nan]),
                                    np.array([np.nan])) == 0.0


class TestToleranceFor:
    def test_float64_tighter_than_float32(self):
        assert (DTYPE_TOLERANCES["float64"]
                < DTYPE_TOLERANCES["float32"]
                < DTYPE_TOLERANCES["float16"])

    def test_scales_with_reference_magnitude(self):
        small = tolerance_for(np.float32, {"o": np.array([0.5])})
        big = tolerance_for(np.float32, {"o": np.array([1000.0])})
        assert big == pytest.approx(small * 1000.0 / 1.0)

    def test_unit_floor(self):
        assert tolerance_for(np.float64, {"o": np.array([1e-6])}) == \
            DTYPE_TOLERANCES["float64"]

    def test_ignores_nonfinite_reference(self):
        tol = tolerance_for(np.float32,
                            {"o": np.array([np.inf, np.nan, 2.0])})
        assert tol == pytest.approx(DTYPE_TOLERANCES["float32"] * 2.0)


def _softmax_graph(m=16, n=24):
    b = GraphBuilder("oracle_sm")
    x = b.input("X", [("m", m), ("n", n)])
    b.softmax(x, dim="n", out_name="P")
    return b.build()


class TestDifferentialTest:
    def test_clean_graph_passes_both_engines(self):
        res = differential_test(_softmax_graph(), AMPERE)
        assert res.ok
        assert {r.engine for r in res.runs} == {"interpreter", "compiled"}
        assert all(r.worst <= res.tol for r in res.runs)
        assert "OK" in res.render()

    def test_float32_execution_passes_with_dtype_tolerance(self):
        res = differential_test(_softmax_graph(), AMPERE, dtype=np.float32)
        assert res.ok
        assert res.dtype == "float32"

    def test_barrier_graph_compiles_via_program_path(self):
        b = GraphBuilder("oracle_bar")
        x = b.input("X", [("m", 6), ("n", 10)])
        y = b.unary("relu", x)
        t = b.barrier("transpose", y, ("n", "m"), perm=(1, 0))
        b.unary("exp", t, out_name="Out")
        res = differential_test(b.build(), AMPERE)
        assert res.ok, res.render()

    def test_doctored_nan_schedule_fails(self, monkeypatch):
        """A NaN-producing engine must fail the oracle — the worst error
        is NaN and `worst <= tol` is False."""
        graph = _softmax_graph()
        from repro.runtime import oracle as oracle_mod

        def nan_engine(schedule, feeds, dtype=np.float64):
            from repro.runtime.kernels import execute_graph_reference
            env = execute_graph_reference(graph, feeds, dtype=dtype)
            out = {k: np.asarray(v).copy() for k, v in env.items()}
            next(iter(out.values())).flat[0] = np.nan
            return out

        monkeypatch.setattr(oracle_mod, "execute_schedule", nan_engine)
        res = differential_test(graph, AMPERE)
        assert not res.ok
        interp = next(r for r in res.runs if r.engine == "interpreter")
        assert np.isnan(interp.worst)
        assert "MISMATCH" in res.render()

    def test_crashing_engine_reported_not_raised(self, monkeypatch):
        from repro.runtime import oracle as oracle_mod

        def boom(schedule, feeds, dtype=np.float64):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(oracle_mod, "execute_compiled", boom)
        res = differential_test(_softmax_graph(), AMPERE)
        assert not res.ok
        compiled = next(r for r in res.runs if r.engine == "compiled")
        assert "engine exploded" in compiled.error
        assert "CRASH" in res.render()

    def test_engine_omitting_output_reported_not_raised(self, monkeypatch):
        """Regression: an engine env missing a reference output used to
        escape as a raw KeyError from the comparison loop — now it is
        contained as an engine error like any other crash."""
        graph = _softmax_graph()
        from repro.runtime import oracle as oracle_mod

        def silent_engine(schedule, feeds, dtype=np.float64):
            return dict(feeds)  # runs "fine" but publishes nothing

        monkeypatch.setattr(oracle_mod, "execute_compiled", silent_engine)
        res = differential_test(graph, AMPERE)
        assert not res.ok
        compiled = next(r for r in res.runs if r.engine == "compiled")
        assert compiled.error is not None
        assert "MissingOutput" in compiled.error
        assert "P" in compiled.error
        assert np.isnan(compiled.worst)
        # The healthy engine is still reported normally.
        interp = next(r for r in res.runs if r.engine == "interpreter")
        assert interp.ok

    def test_finite_but_over_tolerance_run_is_not_ok(self, monkeypatch):
        """Regression: EngineRun.ok used to ignore the tolerance entirely,
        so a finite-but-wrong engine looked healthy on its own run even
        though the aggregate result failed."""
        graph = _softmax_graph()
        from repro.runtime import oracle as oracle_mod

        def off_by_a_lot(schedule, feeds, dtype=np.float64):
            from repro.runtime.kernels import execute_graph_reference
            env = execute_graph_reference(graph, feeds, dtype=dtype)
            return {k: np.asarray(v) + 0.25 for k, v in env.items()}

        monkeypatch.setattr(oracle_mod, "execute_schedule", off_by_a_lot)
        res = differential_test(graph, AMPERE)
        interp = next(r for r in res.runs if r.engine == "interpreter")
        assert interp.error is None
        assert np.isfinite(interp.worst) and interp.worst > interp.tol
        assert not interp.ok
        assert not res.ok

    def test_bfloat16_execution_passes_with_dtype_tolerance(self):
        res = differential_test(_softmax_graph(), AMPERE, dtype="bfloat16")
        assert res.ok, res.render()
        assert res.dtype == "bfloat16"
        assert res.tol >= DTYPE_TOLERANCES["bfloat16"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            differential_test(_softmax_graph(), AMPERE,
                              engines=("interpreter", "gpu"))

    def test_injected_tolerance_respected(self):
        res = differential_test(_softmax_graph(), AMPERE, tol=1e-30)
        assert res.tol == 1e-30


class TestShrinking:
    def _chain_graph(self):
        b = GraphBuilder("shrinkme")
        x = b.input("X", [("m", 4), ("n", 6)])
        v = b.unary("relu", x)
        v = b.unary("tanh", v)
        v = b.unary("abs", v)
        s = b.reduce("sum", v, dim="n")
        b.binary("sub", v, s, out_name="Fin")
        return b.build()

    def test_shrinks_to_single_culprit_op(self):
        graph = self._chain_graph()

        def failing(g):
            return any(op.kind == "tanh" for op in g.ops)

        shrunk = shrink_graph(graph, failing)
        assert failing(shrunk)
        kinds = [op.kind for op in shrunk.ops]
        assert kinds == ["relu", "tanh"]  # relu feeds tanh; rest removed

    def test_shrink_is_one_minimal(self):
        graph = self._chain_graph()

        def failing(g):
            return any(op.kind == "tanh" for op in g.ops)

        shrunk = shrink_graph(graph, failing)
        for op in shrunk.ops:
            from repro.runtime.oracle import _subgraph_without
            candidate = _subgraph_without(shrunk, {op.name})
            assert candidate is None or not failing(candidate)

    def test_predicate_exceptions_treated_as_not_failing(self):
        graph = self._chain_graph()
        calls = []

        def flaky(g):
            calls.append(len(g.ops))
            if len(g.ops) < 3:
                raise RuntimeError("predicate crashed")
            return True

        shrunk = shrink_graph(graph, flaky)
        assert len(shrunk.ops) == 3  # stopped where the predicate crashes

    def test_shrink_to_reproducer_requires_failing_graph(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_to_reproducer(_softmax_graph(), AMPERE)

    def test_passing_subgraphs_are_kept_out(self):
        """Shrinking a real oracle failure: doctor the comparison by
        making the predicate target one op kind, then check the shrunk
        graph still compiles and runs."""
        graph = self._chain_graph()
        shrunk = shrink_graph(
            graph, lambda g: any(op.kind == "reduce_sum" for op in g.ops))
        assert differential_test(shrunk, AMPERE).ok


class TestReproducerSerialisation:
    def test_round_trip_preserves_graph(self, tmp_path):
        graph = _softmax_graph()
        path = tmp_path / "rep.json"
        save_reproducer(graph, path, meta={"seed": 7, "dtype": "float32"})
        loaded, meta = load_reproducer(path)
        assert meta == {"seed": 7, "dtype": "float32"}
        assert [op.name for op in loaded.ops] == \
            [op.name for op in graph.ops]
        assert loaded.dims.items() == graph.dims.items()
        assert differential_test(loaded, AMPERE).ok

    def test_round_trip_preserves_attrs_and_outputs(self, tmp_path):
        b = GraphBuilder("attrs")
        x = b.input("X", [("m", 3), ("n", 4)])
        y = b.scalar("mul", x, 2.5)
        t = b.barrier("transpose", y, ("n", "m"), perm=(1, 0))
        b.unary("identity", t, out_name="Out")
        graph = b.build()
        graph.declared_outputs = ["Out"]
        data = graph_to_dict(graph)
        loaded = graph_from_dict(data)
        assert loaded.op(graph.ops[0].name).attrs["scalar"] == 2.5
        assert tuple(loaded.ops[1].attrs["perm"]) == (1, 0)
        assert loaded.output_tensors == ["Out"]
