"""Tests for the schedule interpreter: fused execution == unfused reference.

These are the reproduction's ground-truth correctness checks: every
compiled schedule — spatial blocks, UTA intra-block loops, pass-2 epilogues,
ragged tiles — must compute exactly what the original graph computes.
"""

import numpy as np
import pytest

from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from repro.core.temporal_slicer import plan_temporal_slice
from repro.hw import AMPERE
from repro.models import lstm_cell_graph, mha_graph, mlp_graph
from repro.pipeline import compile_for
from repro.runtime.executor import ExecutionError, ScheduleExecutor, execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds


def _assert_matches_reference(graph, schedule, seed=0, atol=1e-9):
    feeds = random_feeds(graph, seed=seed)
    ref = execute_graph_reference(graph, feeds)
    env = execute_schedule(schedule, feeds)
    for name, expected in ref.items():
        np.testing.assert_allclose(env[name], expected, atol=atol,
                                   err_msg=f"mismatch in {name}")


def _manual_kernel(graph, spatial, tdim, block, tile):
    smg = build_smg(graph)
    plan = plan_temporal_slice(smg, tdim) if tdim else None
    return ProgramSchedule(graph.name, [KernelSchedule(
        graph.name, smg, spatial, plan,
        config=ScheduleConfig(block=block, tile=tile))])


class TestCompiledScheduleCorrectness:
    def test_mha(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        _assert_matches_reference(small_mha, sched)

    def test_layernorm(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        _assert_matches_reference(small_ln, sched)

    def test_softmax(self, small_softmax):
        sched, _ = compile_for(small_softmax, AMPERE)
        _assert_matches_reference(small_softmax, sched)

    def test_mlp(self, small_mlp):
        sched, _ = compile_for(small_mlp, AMPERE)
        _assert_matches_reference(small_mlp, sched)

    def test_lstm(self, small_lstm):
        sched, _ = compile_for(small_lstm, AMPERE)
        _assert_matches_reference(small_lstm, sched)

    def test_rmsnorm(self, small_rmsnorm):
        sched, _ = compile_for(small_rmsnorm, AMPERE)
        _assert_matches_reference(small_rmsnorm, sched)

    def test_softmax_gemm(self, small_softmax_gemm):
        sched, _ = compile_for(small_softmax_gemm, AMPERE)
        _assert_matches_reference(small_softmax_gemm, sched)

    def test_batched_mha(self, batched_mha):
        sched, _ = compile_for(batched_mha, AMPERE)
        _assert_matches_reference(batched_mha, sched)


class TestManualConfigurations:
    @pytest.mark.parametrize("block,tile", [
        (8, 16), (32, 16), (96, 80), (7, 13), (96, 1),
    ])
    def test_mha_all_tilings(self, small_mha, block, tile):
        """UTA must be exact for every block/tile combination, including
        ragged ones and single-element tiles."""
        sched = _manual_kernel(small_mha, ("m",), "l",
                               (("m", block),), tile)
        _assert_matches_reference(small_mha, sched)

    @pytest.mark.parametrize("block,tile", [(5, 7), (40, 72), (1, 1)])
    def test_layernorm_all_tilings(self, small_ln, block, tile):
        sched = _manual_kernel(small_ln, ("m",), "n", (("m", block),), tile)
        _assert_matches_reference(small_ln, sched)

    def test_softmax_pass2_recompute(self, small_softmax):
        sched = _manual_kernel(small_softmax, ("m",), "n",
                               (("m", 16),), 8)
        _assert_matches_reference(small_softmax, sched)

    def test_spatial_only_mha(self, small_mha):
        sched = _manual_kernel(small_mha, ("m",), None, (("m", 32),), None)
        _assert_matches_reference(small_mha, sched)

    def test_masked_scaled_mha(self):
        graph = mha_graph(2, 2, 32, 24, 8, masked=True, scaled=True)
        feeds = random_feeds(graph, seed=9)
        feeds["Mask"] = (np.random.default_rng(5).random((32, 24)) > 0.2
                         ).astype(float)
        sched, _ = compile_for(graph, AMPERE)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["Out"], ref["Out"], atol=1e-9)

    def test_extreme_values_stable(self, small_mha):
        """Online rescaling must stay finite for large score magnitudes."""
        feeds = random_feeds(small_mha, seed=1, scale=30.0)
        sched = _manual_kernel(small_mha, ("m",), "l", (("m", 16),), 10)
        ref = execute_graph_reference(small_mha, feeds)
        env = execute_schedule(sched, feeds)
        assert np.isfinite(env["Out"]).all()
        np.testing.assert_allclose(env["Out"], ref["Out"], atol=1e-8)


class TestMultiKernelPrograms:
    def test_partitioned_program_chains_tensors(self):
        graph = mlp_graph(2, 32, 512, 600)  # wide: compiler splits
        sched, _ = compile_for(graph, AMPERE)
        assert sched.num_kernels >= 2
        _assert_matches_reference(graph, sched, atol=1e-8)

    def test_unfused_baseline_execution(self, small_mha):
        from repro.baselines import schedule_unfused_primitive
        sched = schedule_unfused_primitive(small_mha, AMPERE)
        _assert_matches_reference(small_mha, sched)

    def test_pytorch_baseline_execution(self, small_mha):
        from repro.baselines import schedule_pytorch
        sched = schedule_pytorch(small_mha, AMPERE)
        _assert_matches_reference(small_mha, sched)

    def test_flash_attention_execution(self, small_mha):
        from repro.baselines import schedule_flash_attention
        sched = schedule_flash_attention(small_mha, AMPERE, "fa2")
        _assert_matches_reference(small_mha, sched)

    def test_cublaslt_execution(self, small_mlp):
        from repro.baselines import schedule_cublaslt
        sched = schedule_cublaslt(small_mlp, AMPERE)
        _assert_matches_reference(small_mlp, sched)

    def test_fused_ln_execution(self, small_ln):
        from repro.baselines import schedule_fused_layernorm
        for variant in ("pytorch_op", "apex", "ln_triton"):
            sched = schedule_fused_layernorm(small_ln, AMPERE, variant)
            _assert_matches_reference(small_ln, sched)


class TestExecutorErrors:
    def test_missing_global_tensor(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        with pytest.raises(ExecutionError, match="missing global"):
            ScheduleExecutor().execute_kernel(sched.kernels[0], {})

    def test_missing_block_config(self, small_mha):
        smg = build_smg(small_mha)
        kernel = KernelSchedule("k", smg, ("m",),
                                config=ScheduleConfig(block=()))
        feeds = {k: np.asarray(v) for k, v in
                 random_feeds(small_mha, seed=0).items()}
        with pytest.raises(ExecutionError, match="lacks block"):
            ScheduleExecutor().execute_kernel(kernel, feeds)

    def test_never_produced_output_raises_not_stale_zeros(self):
        """A declared output no op produces must raise and name the tensor,
        not be silently returned as its zero-initialised buffer."""
        from repro.ir import GraphBuilder

        b = GraphBuilder("phantom")
        x = b.input("X", [("m", 8), ("n", 8)])
        b.unary("exp", x, out_name="Y")
        graph = b.build()
        graph.tensors["Z"] = type(graph.tensors["Y"])(
            "Z", ("m", "n"), "fp16", False)
        graph.declared_outputs = ["Y", "Z"]
        smg = build_smg(graph)
        kernel = KernelSchedule("k", smg, ("m",),
                                config=ScheduleConfig(block=(("m", 8),)))
        feeds = {"X": np.ones((8, 8))}
        with pytest.raises(ExecutionError, match="'Z'.*never"):
            ScheduleExecutor().execute_kernel(kernel, feeds)


class TestOperandConversionHoist:
    def test_integer_feeds_converted_once_without_mutation(self, small_ln):
        """execute_kernel converts globals to the executor dtype up front;
        the caller's arrays keep their dtype and contents."""
        sched, _ = compile_for(small_ln, AMPERE)
        feeds = random_feeds(small_ln, seed=4)
        int_feeds = {k: (v * 100).astype(np.int64) for k, v in feeds.items()}
        originals = {k: v.copy() for k, v in int_feeds.items()}

        env = dict(int_feeds)
        executor = ScheduleExecutor()
        for kernel in sched.kernels:
            executor.execute_kernel(kernel, env)

        out = small_ln.output_tensors[0]
        assert env[out].dtype == np.float64
        expected = execute_schedule(
            sched, {k: v.astype(np.float64) for k, v in int_feeds.items()})
        np.testing.assert_array_equal(env[out], expected[out])
        for k, orig in originals.items():
            assert int_feeds[k].dtype == np.int64
            np.testing.assert_array_equal(int_feeds[k], orig)

    def test_unrelated_env_entries_ignored(self, small_ln):
        """Entries in the environment that are not kernel tensors must not
        be touched by the hoisted conversion."""
        sched, _ = compile_for(small_ln, AMPERE)
        env = {k: np.asarray(v) for k, v in
               random_feeds(small_ln, seed=0).items()}
        sentinel = np.array(["not", "a", "tensor"])
        env["__aux__"] = sentinel
        for kernel in sched.kernels:
            ScheduleExecutor().execute_kernel(kernel, env)
        assert env["__aux__"] is sentinel
