"""Tests for the compiled execution engine (repro.runtime.compiled).

The engine must be a drop-in replacement for the schedule interpreter:
bitwise-identical outputs at the same dtype, one lowering per (schedule,
dtype, sizes) key, and never slower than interpreting on the serving
workloads.
"""

import time

import numpy as np
import pytest

from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from repro.hw import AMPERE
from repro.ir import GraphBuilder
from repro.models import layernorm_graph, mha_graph
from repro.obs import Tracer, use_tracer
from repro.pipeline import compile_for
from repro.runtime import (
    ExecutionError,
    LoweringError,
    PlanCache,
    compile_schedule,
    execute_compiled,
    execute_graph_reference,
    execute_schedule,
    lower_program,
    plan_key,
    random_feeds,
    schedule_fingerprint,
)
from repro.runtime.compiled import lower_kernel


def _elementwise_graph(m=24, n=40, name="elem"):
    b = GraphBuilder(name)
    x = b.input("X", [("m", m), ("n", n)])
    y = b.unary("exp", x)
    z = b.unary("tanh", y)
    b.scalar("mul", z, 0.5, out_name="Y")
    return b.build()


class TestEngineParity:
    def test_elementwise_bitwise_equal_to_interpreter(self):
        graph = _elementwise_graph()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=1)
        env_i = execute_schedule(sched, feeds)
        env_c = execute_compiled(sched, feeds, cache=PlanCache())
        np.testing.assert_array_equal(env_c["Y"], env_i["Y"])

    @pytest.mark.parametrize("builder", [
        lambda: layernorm_graph(40, 72, name="ln_cmp"),
        lambda: mha_graph(1, 2, 48, 40, 16, name="mha_cmp"),
    ])
    def test_temporal_kernels_bitwise_equal(self, builder):
        graph = builder()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=2)
        env_i = execute_schedule(sched, feeds)
        env_c = execute_compiled(sched, feeds, cache=PlanCache())
        ref = execute_graph_reference(graph, feeds)
        for t, expected in ref.items():
            np.testing.assert_array_equal(env_c[t], env_i[t])
            np.testing.assert_allclose(env_c[t], expected, atol=1e-8)

    def test_manual_blocked_schedule(self, small_mha):
        """A hand-tiled UTA kernel: the lowered loop nest must match the
        interpreter at the same tile size."""
        from repro.core.temporal_slicer import plan_temporal_slice

        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", 16),), tile=24))
        sched = ProgramSchedule("p", [kernel])
        feeds = random_feeds(small_mha, seed=5)
        env_i = execute_schedule(sched, feeds)
        env_c = execute_compiled(sched, feeds, cache=PlanCache())
        np.testing.assert_array_equal(env_c["Out"], env_i["Out"])

    def test_barrier_kernels(self, batched_mha):
        """Multi-head attention compiles with reshape/transpose barriers."""
        sched, _ = compile_for(batched_mha, AMPERE)
        feeds = random_feeds(batched_mha, seed=3)
        env_i = execute_schedule(sched, feeds)
        env_c = execute_compiled(sched, feeds, cache=PlanCache())
        ref = execute_graph_reference(batched_mha, feeds)
        for t in ref:
            np.testing.assert_array_equal(env_c[t], env_i[t])

    def test_float32_execution(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        feeds = random_feeds(small_ln, seed=0)
        env_c = execute_compiled(sched, feeds, dtype=np.float32,
                                 cache=PlanCache())
        env_i = execute_schedule(sched, feeds, dtype=np.float32)
        out = small_ln.output_tensors[0]
        assert env_c[out].dtype == np.float32
        np.testing.assert_allclose(env_c[out], env_i[out], atol=1e-4)


class TestLowering:
    def test_plain_kernels_vectorize(self):
        graph = _elementwise_graph()
        sched, _ = compile_for(graph, AMPERE)
        program = lower_program(sched)
        assert all(lk.kind == "vector" for lk in program.kernels)
        assert all(lk.source is not None for lk in program.kernels)

    def test_temporal_kernels_become_loop_nests(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        program = lower_program(sched)
        kinds = program.kind_counts()
        assert set(kinds) <= {"loopnest", "vector", "barrier", "whole"}

    def test_non_float64_temporal_lowers_without_interp(self, small_ln):
        """Temporal kernels lower to real loop nests at every dtype — the
        ``interp`` fallback kind no longer exists."""
        for dtype in (np.float32, "bfloat16"):
            sched, _ = compile_for(small_ln, AMPERE)
            program = lower_program(sched, dtype=dtype)
            kinds = program.kind_counts()
            assert "interp" not in kinds
            assert set(kinds) <= {"loopnest", "vector", "whole", "barrier"}
            assert program.fused is not None and program.fused.fn is not None

    @pytest.mark.parametrize("dtype", [np.float32, "bfloat16"])
    def test_non_float64_parity_with_interpreter(self, small_ln, dtype):
        """At f32 and bf16 the fused plan agrees with the interpreter to
        dtype tolerance (not bitwise: the interpreter's UTA updates run
        at f64 internally) and computes in float32."""
        from repro.runtime.oracle import tolerance_for

        sched, _ = compile_for(small_ln, AMPERE)
        feeds = random_feeds(small_ln, seed=7)
        env_i = execute_schedule(sched, feeds, dtype=dtype)
        env_c = execute_compiled(sched, feeds, dtype=dtype,
                                 cache=PlanCache())
        out = small_ln.output_tensors[0]
        assert env_c[out].dtype == np.float32
        np.testing.assert_allclose(env_c[out], env_i[out],
                                   atol=tolerance_for(dtype))

    def test_missing_output_raises_at_lower_time(self):
        b = GraphBuilder("bad")
        x = b.input("X", [("m", 8), ("n", 8)])
        b.unary("exp", x, out_name="Y")
        graph = b.build()
        graph.tensors["Z"] = type(graph.tensors["Y"])(
            "Z", ("m", "n"), "fp16", False)
        graph.declared_outputs = ["Y", "Z"]
        smg = build_smg(graph)
        kernel = KernelSchedule("k", smg, ("m",), None,
                                config=ScheduleConfig(block=(("m", 8),)))
        with pytest.raises(LoweringError, match="Z"):
            lower_kernel(kernel)

    def test_describe_mentions_collapsed_blocks(self):
        graph = _elementwise_graph(m=64, n=16)
        sched, _ = compile_for(graph, AMPERE)
        program = lower_program(sched)
        text = program.describe()
        assert "vector" in text

    def test_missing_feed_raises_execution_error(self):
        graph = _elementwise_graph()
        sched, _ = compile_for(graph, AMPERE)
        program = lower_program(sched)
        with pytest.raises(ExecutionError, match="X"):
            program.execute({})


class TestPlanCache:
    def test_hit_returns_same_artifact(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        cache = PlanCache()
        a = cache.get_or_lower(sched)
        b = cache.get_or_lower(sched)
        assert a is b
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_key_varies_with_dtype(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        k64 = plan_key(sched, np.float64)
        k32 = plan_key(sched, np.float32)
        assert k64 != k32 and k64[0] == k32[0]

    def test_key_varies_with_dim_sizes(self):
        s1, _ = compile_for(layernorm_graph(16, 32, name="ln_a"), AMPERE)
        s2, _ = compile_for(layernorm_graph(16, 48, name="ln_a"), AMPERE)
        assert plan_key(s1) != plan_key(s2)

    def test_fingerprint_is_deterministic(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        assert schedule_fingerprint(sched) == schedule_fingerprint(sched)

    def test_lru_eviction(self):
        cache = PlanCache(capacity=1)
        s1, _ = compile_for(_elementwise_graph(8, 8, name="e1"), AMPERE)
        s2, _ = compile_for(_elementwise_graph(8, 12, name="e2"), AMPERE)
        cache.get_or_lower(s1)
        cache.get_or_lower(s2)
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 1
        # s1 was evicted: fetching it again is a miss.
        cache.get_or_lower(s1)
        assert cache.stats()["misses"] == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_executions_counter(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        program = compile_schedule(sched, cache=PlanCache())
        feeds = random_feeds(small_ln, seed=0)
        program.execute(feeds)
        program.execute(feeds)
        assert program.executions == 2

    def test_quarantine_evict_roundtrip_on_fused_plan(self, small_ln):
        """Quarantining a fused plan drops exactly that artifact; the next
        request re-lowers from scratch to an equally correct plan."""
        sched, _ = compile_for(small_ln, AMPERE)
        cache = PlanCache()
        first = cache.get_or_lower(sched)
        assert cache.evict(first.key) is True
        assert cache.evict(first.key) is False  # already gone
        assert len(cache) == 0
        relowered = cache.get_or_lower(sched)
        assert relowered is not first
        assert relowered.key == first.key
        stats = cache.stats()
        assert stats["quarantined"] == 1 and stats["misses"] == 2
        feeds = random_feeds(small_ln, seed=4)
        env_i = execute_schedule(sched, feeds)
        out = small_ln.output_tensors[0]
        np.testing.assert_array_equal(relowered.execute(feeds)[out],
                                      env_i[out])


class TestOutputOwnership:
    """Published outputs must survive the plan's next execution.

    Regression: an identity-renamed output (layernorm's ``Y``) was
    published as an alias of a reused arena buffer, so a session's
    *next* request silently overwrote the array already handed to the
    previous caller — wrong answers under concurrent serving load.
    """

    def test_identity_published_output_not_overwritten(self):
        graph = layernorm_graph(48, 64, name="own_ln")
        sched, _ = compile_for(graph, AMPERE)
        cache = PlanCache()
        f0, f1 = random_feeds(graph, seed=0), random_feeds(graph, seed=1)
        out0 = execute_compiled(sched, f0, cache=cache)
        snap = {k: v.copy() for k, v in out0.items()}
        out1 = execute_compiled(sched, f1, cache=cache)
        for name in snap:
            np.testing.assert_array_equal(out0[name], snap[name])
            assert not np.shares_memory(out0[name], out1[name])

    def test_outputs_never_alias_feeds(self):
        b = GraphBuilder("own_id")
        x = b.input("X", [("m", 8), ("n", 16)])
        b.unary("identity", x, out_name="Y")
        graph = b.build()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=2)
        out = execute_compiled(sched, feeds, cache=PlanCache())
        np.testing.assert_array_equal(out["Y"], feeds["X"])
        assert not np.shares_memory(out["Y"], feeds["X"])


class TestObservability:
    def test_lower_and_execute_emit_spans(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        tracer = Tracer()
        with use_tracer(tracer):
            execute_compiled(sched, random_feeds(small_ln, seed=0),
                             cache=PlanCache())
        names = {s.name for s in tracer.spans()}
        assert {"plan_cache_lookup", "lower", "compiled_execute"} <= names

    def test_cache_hit_noted_on_span(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        cache = PlanCache()
        cache.get_or_lower(sched)
        tracer = Tracer()
        with use_tracer(tracer):
            cache.get_or_lower(sched)
        lookup = [s for s in tracer.spans()
                  if s.name == "plan_cache_lookup"]
        assert lookup and lookup[0].attrs.get("hit") is True


class TestPerfSmoke:
    def test_compiled_not_slower_than_interpreter_on_mha(self):
        """CI perf smoke: on the MHA serving workload the compiled engine
        must not lose to the interpreter (generous 1.2x slack against
        machine noise; in practice it is ~2x faster)."""
        graph = mha_graph(1, 8, 128, 128, 64, name="mha_smoke")
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=0)
        program = compile_schedule(sched, cache=PlanCache())

        def best(fn, n=3):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        program.execute(feeds)  # warm
        t_interp = best(lambda: execute_schedule(sched, feeds))
        t_compiled = best(lambda: program.execute(feeds))
        assert t_compiled < t_interp * 1.2, (
            f"compiled {t_compiled * 1e3:.2f}ms vs "
            f"interpreter {t_interp * 1e3:.2f}ms")
