"""Unit tests for the blocked-GEMM lowering (repro.codegen.matmul).

The bitwise contract: ``matmul_blocked`` must produce *exactly* the bits
of the explicit per-block gemm loop the schedule interpreter runs —
that loop (``_block_loop``) is the reference here, not einsum.
"""

import numpy as np
import pytest

from repro.codegen.matmul import (
    _block_loop,
    _blocked_plan,
    einsum_subscripts,
    gemm_free_dims,
    matmul_blas,
    matmul_blocked,
)


def _rand(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape)


def _sizes(a_axes, a, b_axes, b):
    sizes = dict(zip(a_axes, a.shape))
    sizes.update(zip(b_axes, b.shape))
    return sizes


class TestMatmulBlas:
    def test_matches_einsum_numerically(self):
        a, b = _rand((6, 8), 0), _rand((8, 5), 1)
        got = matmul_blas(a, b, ("m", "k"), ("k", "n"), ("m", "n"))
        want = np.einsum("mk,kn->mn", a, b)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_batch_dims(self):
        a, b = _rand((3, 6, 8), 2), _rand((3, 8, 5), 3)
        got = matmul_blas(a, b, ("b", "m", "k"), ("b", "k", "n"),
                          ("b", "m", "n"))
        np.testing.assert_allclose(
            got, np.einsum("bmk,bkn->bmn", a, b), atol=1e-12)

    def test_einsum_fallback_on_duplicate_axes(self):
        a = _rand((4, 4), 4)
        b = _rand((4, 3), 5)
        # Duplicate axis in a → diagonal semantics, not expressible as gemm.
        got = matmul_blas(a, b, ("m", "m"), ("m", "n"), ("m", "n"))
        want = np.einsum(einsum_subscripts(
            ("m", "m"), ("m", "n"), ("m", "n")), a, b)
        np.testing.assert_array_equal(got, want)

    def test_gemm_free_dims(self):
        assert gemm_free_dims(("b", "m", "k"), ("b", "k", "n"),
                              ("b", "m", "n")) == {"m", "n"}


BLOCK_CASES = [
    # (a_axes, b_axes, out_axes, a_shape, b_shape, blocks)
    (("m", "k"), ("k", "n"), ("m", "n"), (32, 16), (16, 24),
     (("m", 8),)),
    (("m", "k"), ("k", "n"), ("m", "n"), (32, 16), (16, 24),
     (("m", 8), ("n", 6))),
    (("b", "m", "k"), ("b", "k", "n"), ("b", "m", "n"),
     (2, 32, 16), (2, 16, 24), (("m", 16),)),
    # n-only blocking
    (("m", "k"), ("k", "n"), ("m", "n"), (16, 8), (8, 32), (("n", 8),)),
    # transposed output order (out_perm non-identity)
    (("m", "k"), ("k", "n"), ("n", "m"), (16, 8), (8, 24), (("m", 4),)),
]


class TestMatmulBlocked:
    @pytest.mark.parametrize("a_axes,b_axes,out_axes,ashp,bshp,blocks",
                             BLOCK_CASES)
    def test_bitwise_equal_to_block_loop(self, a_axes, b_axes, out_axes,
                                         ashp, bshp, blocks):
        a, b = _rand(ashp, 10), _rand(bshp, 11)
        got = matmul_blocked(a, b, a_axes, b_axes, out_axes, blocks)
        want = _block_loop(a, b, a_axes, b_axes, out_axes, blocks,
                           _sizes(a_axes, a, b_axes, b))
        np.testing.assert_array_equal(got, want)

    def test_ragged_block_falls_back_to_loop(self):
        # 30 % 8 != 0 → explicit loop path, still bitwise vs reference.
        a, b = _rand((30, 16), 12), _rand((16, 24), 13)
        blocks = (("m", 8),)
        plan = _blocked_plan(("m", "k"), ("k", "n"), ("m", "n"),
                             blocks, a.shape, b.shape)
        assert plan[0] == "loop"
        got = matmul_blocked(a, b, ("m", "k"), ("k", "n"), ("m", "n"),
                             blocks)
        want = _block_loop(a, b, ("m", "k"), ("k", "n"), ("m", "n"),
                           blocks, _sizes(("m", "k"), a, ("k", "n"), b))
        np.testing.assert_array_equal(got, want)

    def test_full_size_block_degenerates_to_blas(self):
        a, b = _rand((16, 8), 14), _rand((8, 12), 15)
        plan = _blocked_plan(("m", "k"), ("k", "n"), ("m", "n"),
                             (("m", 16),), a.shape, b.shape)
        assert plan == ("blas",)
        got = matmul_blocked(a, b, ("m", "k"), ("k", "n"), ("m", "n"),
                             (("m", 16),))
        np.testing.assert_array_equal(
            got, matmul_blas(a, b, ("m", "k"), ("k", "n"), ("m", "n")))

    def test_out_buffer_identity_fast_path(self):
        a, b = _rand((32, 16), 16), _rand((16, 24), 17)
        blocks = (("m", 8),)
        want = matmul_blocked(a, b, ("m", "k"), ("k", "n"), ("m", "n"),
                              blocks)
        out = np.empty((32, 24))
        got = matmul_blocked(a, b, ("m", "k"), ("k", "n"), ("m", "n"),
                             blocks, out=out)
        assert got is out
        np.testing.assert_array_equal(out, want)

    def test_mismatched_out_is_ignored(self):
        a, b = _rand((32, 16), 18), _rand((16, 24), 19)
        out = np.empty((5, 5))  # wrong shape: must be ignored, not crash
        got = matmul_blocked(a, b, ("m", "k"), ("k", "n"), ("m", "n"),
                             (("m", 8),), out=out)
        assert got.shape == (32, 24)

    def test_strided_operands_not_compacted(self):
        """Tile-sliced (strided) operands must flow into gemm untouched —
        compacting them changes lda and breaks bitwise parity."""
        full_a = _rand((32, 64), 20)
        full_b = _rand((64, 24), 21)
        a = full_a[:, 8:24]  # strided K slice, as the tile loop produces
        b = full_b[8:24, :]
        blocks = (("m", 8),)
        got = matmul_blocked(a, b, ("m", "k"), ("k", "n"), ("m", "n"),
                             blocks)
        want = _block_loop(a, b, ("m", "k"), ("k", "n"), ("m", "n"),
                           blocks, _sizes(("m", "k"), a, ("k", "n"), b))
        np.testing.assert_array_equal(got, want)
