"""Tests for the executable Python codegen backend.

Three-way agreement is the bar: generated code == schedule interpreter ==
unfused reference, across workloads and tilings.
"""

import numpy as np
import pytest

from repro.codegen.python_backend import (
    CodegenError,
    compile_program_to_python,
    generate_python_kernel,
    run_generated,
)
from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from repro.core.temporal_slicer import plan_temporal_slice
from repro.hw import AMPERE
from repro.ir import GraphBuilder, program_from_graph
from repro.models import gqa_graph, lstm_cell_graph, mha_graph
from repro.pipeline import compile_for, compile_model_for
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds


def _three_way(graph, schedule, seed=0, atol=1e-8):
    feeds = random_feeds(graph, seed=seed)
    ref = execute_graph_reference(graph, feeds)
    interp = execute_schedule(schedule, feeds)
    gen = run_generated(schedule, feeds)
    for name, expected in ref.items():
        np.testing.assert_allclose(gen[name], expected, atol=atol,
                                   err_msg=f"codegen vs ref: {name}")
        np.testing.assert_allclose(gen[name], interp[name], atol=atol,
                                   err_msg=f"codegen vs interp: {name}")


class TestGeneratedKernels:
    def test_mha(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        _three_way(small_mha, sched)

    def test_layernorm_two_pass(self, small_ln):
        smg = build_smg(small_ln)
        plan = plan_temporal_slice(smg, "n")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", 8),), tile=24))
        _three_way(small_ln, ProgramSchedule("p", [kernel]))

    def test_softmax_pass2(self, small_softmax):
        sched, _ = compile_for(small_softmax, AMPERE)
        _three_way(small_softmax, sched)

    def test_mlp_plain_kernel(self, small_mlp):
        from repro.core.compiler import FusionOptions
        sched, _ = compile_for(small_mlp, AMPERE,
                               FusionOptions(enable_temporal=False))
        _three_way(small_mlp, sched)

    def test_lstm(self, small_lstm):
        sched, _ = compile_for(small_lstm, AMPERE)
        _three_way(small_lstm, sched)

    def test_gqa(self):
        graph = gqa_graph(1, 4, 2, 24, 32, 8)
        sched, _ = compile_for(graph, AMPERE)
        _three_way(graph, sched)

    @pytest.mark.parametrize("block,tile", [(7, 13), (96, 1), (1, 80)])
    def test_ragged_tilings(self, small_mha, block, tile):
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", block),), tile=tile))
        _three_way(small_mha, ProgramSchedule("p", [kernel]))

    def test_multi_kernel_program(self):
        from repro.models import mlp_graph
        graph = mlp_graph(2, 32, 512, 600)  # splits into several kernels
        sched, _ = compile_for(graph, AMPERE)
        assert sched.num_kernels >= 2
        _three_way(graph, sched)

    def test_masked_attention(self):
        graph = mha_graph(1, 2, 16, 20, 8, masked=True)
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=1)
        feeds["Mask"] = (np.random.default_rng(0).random((16, 20)) > 0.3
                         ).astype(float)
        ref = execute_graph_reference(graph, feeds)
        gen = run_generated(sched, feeds)
        np.testing.assert_allclose(gen["Out"], ref["Out"], atol=1e-9)


class TestGeneratedSource:
    def test_source_is_real_flash_attention(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        src = generate_python_kernel(sched.kernels[0]).source
        assert "_mm(" in src                 # BLAS-backed matmuls
        assert "np.maximum(" in src          # running max
        assert "np.exp(-1 * ((" in src       # inlined exp rescaling
        assert "old_" in src                 # old-aggregate snapshots

    def test_source_compiles_standalone(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        gk = generate_python_kernel(sched.kernels[0])
        compile(gk.source, "<check>", "exec")  # syntactically valid

    def test_barrier_kernel_codegen(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8), ("n", 4)])
        e = b.unary("exp", x)
        b.barrier("reshape", e, [("f", 32)], out_name="Y")
        prog = program_from_graph(b.build())
        model = compile_model_for(prog, AMPERE)
        sched = model.expanded_schedule()
        feeds = random_feeds(b.graph, seed=0)
        env = run_generated(sched, {"X": feeds["X"]})
        assert env["Y"].shape == (32,)
        np.testing.assert_allclose(env["Y"], np.exp(feeds["X"]).reshape(32))

    def test_kernel_callable_interface(self, small_ln):
        sched, _ = compile_for(small_ln, AMPERE)
        kernels = compile_program_to_python(sched)
        feeds = random_feeds(small_ln, seed=0)
        env = {k: np.asarray(v) for k, v in feeds.items()}
        for gk in kernels:
            gk(env)
        assert "Y" in env
