"""Tests for the numpy reference kernels (operator semantics)."""

import numpy as np
import pytest

from repro.ir import GraphBuilder
from repro.ir.ops import make_binary, make_matmul, make_reduce, make_scalar, make_unary
from repro.runtime.kernels import (
    KernelError,
    evaluate_op,
    execute_graph_reference,
    random_feeds,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMatmulKernel:
    def test_plain_gemm(self, rng):
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((5, 3))
        op = make_matmul("mm", "A", ("m", "k"), "B", ("n", "k"),
                         "C", ("m", "n"), "k")
        out = evaluate_op(op, {"A": a, "B": b})
        assert np.allclose(out, a @ b.T)

    def test_batched_gemm(self, rng):
        a = rng.standard_normal((2, 4, 3))
        b = rng.standard_normal((2, 5, 3))
        op = make_matmul("mm", "A", ("b", "m", "k"), "B", ("b", "n", "k"),
                         "C", ("b", "m", "n"), "k")
        out = evaluate_op(op, {"A": a, "B": b})
        assert np.allclose(out, np.einsum("bmk,bnk->bmn", a, b))

    def test_attention_value_gemm(self, rng):
        p = rng.standard_normal((4, 6))
        v = rng.standard_normal((6, 5))
        op = make_matmul("mm", "P", ("m", "l"), "V", ("l", "d"),
                         "O", ("m", "d"), "l")
        out = evaluate_op(op, {"P": p, "V": v})
        assert np.allclose(out, p @ v)


class TestReduceKernels:
    @pytest.mark.parametrize("kind,ref", [
        ("sum", np.sum), ("max", np.max), ("min", np.min), ("mean", np.mean),
    ])
    def test_reduce_last_dim(self, rng, kind, ref):
        x = rng.standard_normal((4, 6))
        op = make_reduce("r", kind, "X", ("m", "n"), "Y", "n")
        assert np.allclose(evaluate_op(op, {"X": x}), ref(x, axis=1))

    def test_reduce_middle_dim(self, rng):
        x = rng.standard_normal((3, 4, 5))
        op = make_reduce("r", "sum", "X", ("a", "b", "c"), "Y", "b")
        assert np.allclose(evaluate_op(op, {"X": x}), x.sum(axis=1))


class TestElementwiseKernels:
    @pytest.mark.parametrize("kind,fn", [
        ("exp", np.exp),
        ("sqrt", lambda x: np.sqrt(np.abs(x) + 1)),
        ("relu", lambda x: np.maximum(x, 0)),
        ("tanh", np.tanh),
        ("square", np.square),
        ("neg", np.negative),
        ("abs", np.abs),
    ])
    def test_unary(self, rng, kind, fn):
        x = rng.standard_normal((4, 5))
        if kind == "sqrt":
            x = np.abs(x) + 1
            fn = np.sqrt
        op = make_unary("u", kind, "X", ("m", "n"), "Y")
        assert np.allclose(evaluate_op(op, {"X": x}), fn(x))

    def test_gelu_matches_erf_form(self, rng):
        from scipy.special import erf
        x = rng.standard_normal(16)
        op = make_unary("u", "gelu", "X", ("m",), "Y")
        expected = 0.5 * x * (1 + erf(x / np.sqrt(2)))
        assert np.allclose(evaluate_op(op, {"X": x}), expected)

    def test_silu(self, rng):
        x = rng.standard_normal(16)
        op = make_unary("u", "silu", "X", ("m",), "Y")
        assert np.allclose(evaluate_op(op, {"X": x}),
                           x / (1 + np.exp(-x)))

    def test_binary_broadcast_row_vector(self, rng):
        x = rng.standard_normal((4, 6))
        v = rng.standard_normal(4)
        op = make_binary("b", "sub", "X", ("m", "n"), "V", ("m",),
                         "Y", ("m", "n"))
        assert np.allclose(evaluate_op(op, {"X": x, "V": v}),
                           x - v[:, None])

    def test_binary_broadcast_col_vector(self, rng):
        x = rng.standard_normal((4, 6))
        v = rng.standard_normal(6)
        op = make_binary("b", "add", "X", ("m", "n"), "V", ("n",),
                         "Y", ("m", "n"))
        assert np.allclose(evaluate_op(op, {"X": x, "V": v}), x + v[None, :])

    def test_binary_axis_reorder(self, rng):
        x = rng.standard_normal((4, 6))
        y = rng.standard_normal((6, 4))
        op = make_binary("b", "add", "X", ("m", "n"), "Y", ("n", "m"),
                         "Z", ("m", "n"))
        assert np.allclose(evaluate_op(op, {"X": x, "Y": y}), x + y.T)

    def test_scalar_ops(self, rng):
        x = rng.standard_normal(8)
        for kind, expected in [("mul", x * 2.5), ("add", x + 2.5),
                               ("rsub", 2.5 - x), ("rdiv", 2.5 / x)]:
            op = make_scalar("s", kind, "X", ("m",), "Y", 2.5)
            assert np.allclose(evaluate_op(op, {"X": x}), expected)

    def test_where_mask(self, rng):
        x = rng.standard_normal((3, 4))
        m = (rng.random((3, 4)) > 0.5).astype(float)
        op = make_binary("w", "where_mask", "X", ("m", "n"),
                         "M", ("m", "n"), "Y", ("m", "n"))
        out = evaluate_op(op, {"X": x, "M": m})
        assert np.all(out[m == 0] == -np.inf)
        assert np.allclose(out[m != 0], x[m != 0])


class TestBarrierKernels:
    def test_reshape(self, rng):
        from repro.ir.ops import make_barrier
        x = rng.standard_normal((4, 6))
        op = make_barrier("r", "reshape", "X", ("m", "n"), "Y", ("a", "b"))
        out = evaluate_op(op, {"X": x}, sizes={"a": 8, "b": 3})
        assert out.shape == (8, 3)

    def test_reshape_without_sizes_raises(self, rng):
        from repro.ir.ops import make_barrier
        op = make_barrier("r", "reshape", "X", ("m",), "Y", ("a",))
        with pytest.raises(KernelError):
            evaluate_op(op, {"X": rng.standard_normal(4)})

    def test_transpose(self, rng):
        from repro.ir.ops import make_barrier
        x = rng.standard_normal((4, 6))
        op = make_barrier("t", "transpose", "X", ("m", "n"), "Y", ("n", "m"),
                          perm=(1, 0))
        assert np.allclose(evaluate_op(op, {"X": x}), x.T)


class TestGraphReference:
    def test_softmax_graph_matches_numpy(self, small_softmax):
        feeds = random_feeds(small_softmax, seed=1)
        out = execute_graph_reference(small_softmax, feeds)["P"]
        x = feeds["X"]
        e = np.exp(x - x.max(axis=1, keepdims=True))
        assert np.allclose(out, e / e.sum(axis=1, keepdims=True))

    def test_layernorm_graph_matches_numpy(self, small_ln):
        feeds = random_feeds(small_ln, seed=2)
        name = small_ln.output_tensors[0]
        out = execute_graph_reference(small_ln, feeds)[name]
        x, g, b = feeds["X"], feeds["G"], feeds["B"]
        mu = x.mean(axis=1, keepdims=True)
        var = ((x - mu) ** 2).mean(axis=1, keepdims=True)
        expected = (x - mu) / np.sqrt(var + 1e-5) * g + b
        assert np.allclose(out, expected)

    def test_mha_graph_matches_numpy(self, small_mha):
        feeds = random_feeds(small_mha, seed=3)
        out = execute_graph_reference(small_mha, feeds)["Out"]
        q, k, v = feeds["Q"], feeds["K"], feeds["V"]
        s = q @ k.T
        p = np.exp(s - s.max(axis=1, keepdims=True))
        p /= p.sum(axis=1, keepdims=True)
        assert np.allclose(out, p @ v)

    def test_missing_feed_raises(self, small_softmax):
        with pytest.raises(KernelError, match="missing feed"):
            execute_graph_reference(small_softmax, {})

    def test_wrong_shape_raises(self, small_softmax):
        with pytest.raises(KernelError, match="shape"):
            execute_graph_reference(small_softmax,
                                    {"X": np.zeros((2, 2))})

    def test_random_feeds_deterministic(self, small_softmax):
        a = random_feeds(small_softmax, seed=5)
        b = random_feeds(small_softmax, seed=5)
        assert np.array_equal(a["X"], b["X"])
