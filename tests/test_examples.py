"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; these tests keep them honest.
Run as subprocesses so import side effects and __main__ blocks are
exercised exactly as a user would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_has_quickstart_plus_domain_scripts():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 4


def test_quickstart(tmp_path):
    out = _run("quickstart.py")
    assert "speedup" in out
    assert "max abs error" in out


def test_attention_fusion():
    out = _run("attention_fusion.py")
    assert "updateOut" in out           # generated update functions shown
    assert "max abs error" in out


def test_ablation_playground():
    out = _run("ablation_playground.py")
    assert "spacefusion" in out


def test_compile_cache_serving():
    out = _run("compile_cache_serving.py")
    assert "verified against the unfused reference" in out
    assert "warm restore" in out


def test_paper_figures_one_panel():
    out = _run("paper_figures.py", "fig12")
    assert "█" in out                   # bars rendered


def test_transformer_inference_small():
    out = _run("transformer_inference.py", "bert", "1", timeout=900)
    assert "spacefusion" in out
    assert "kernels per layer" in out
