"""Shared fixtures: canonical graphs and devices used across the suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Bounded-budget profile for CI fuzz jobs: tests that do not pin
# max_examples themselves inherit it from the active profile, so
# HYPOTHESIS_PROFILE=ci caps the fuzz+oracle budget without code changes.
settings.register_profile(
    "ci", max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large,
                           HealthCheck.filter_too_much])
settings.register_profile("thorough", max_examples=200, deadline=None)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

from repro.hw import AMPERE, HOPPER, VOLTA
from repro.ir import GraphBuilder
from repro.models import (
    layernorm_graph,
    lstm_cell_graph,
    mha_graph,
    mlp_graph,
    rmsnorm_graph,
    softmax_gemm_graph,
    softmax_graph,
)


@pytest.fixture
def ampere():
    return AMPERE


@pytest.fixture
def volta():
    return VOLTA


@pytest.fixture
def hopper():
    return HOPPER


@pytest.fixture
def small_mha():
    """A small single-head MHA graph with non-square, non-power-of-2 dims
    (ragged slicing paths get exercised)."""
    b = GraphBuilder("mha_small")
    q = b.input("Q", [("m", 96), ("dk", 24)])
    k = b.input("K", [("l", 80), ("dk", 24)])
    v = b.input("V", [("l", 80), ("dv", 40)])
    qk = b.matmul(q, k, reduce_dim="dk", out_name="QK")
    p = b.softmax(qk, dim="l")
    b.matmul(p, v, reduce_dim="l", out_name="Out")
    return b.build()


@pytest.fixture
def small_ln():
    return layernorm_graph(40, 72, name="ln_small")


@pytest.fixture
def small_softmax():
    return softmax_graph(48, 56, name="softmax_small")


@pytest.fixture
def small_mlp():
    return mlp_graph(3, 64, 32, 48, name="mlp_small")


@pytest.fixture
def small_lstm():
    return lstm_cell_graph(32, 40, 24, name="lstm_small")


@pytest.fixture
def small_rmsnorm():
    return rmsnorm_graph(36, 60, name="rms_small")


@pytest.fixture
def small_softmax_gemm():
    return softmax_gemm_graph(32, 48, 40, name="sg_small")


@pytest.fixture
def batched_mha():
    return mha_graph(2, 4, 64, 48, 16, name="mha_batched")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
