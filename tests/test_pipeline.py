"""Tests for the top-level pipeline wiring and the report generator."""

import pytest

from repro.bench.summary import generate_report
from repro.core.compiler import FusionOptions
from repro.hw import AMPERE, VOLTA
from repro.ir import program_from_graph
from repro.models import layernorm_graph, mha_graph
from repro.pipeline import (
    compile_for,
    compile_model_for,
    make_compiler,
    simulate,
    simulate_model,
)


class TestPipeline:
    def test_make_compiler_carries_rc(self):
        compiler = make_compiler(AMPERE)
        assert compiler.rc.smem_per_block == AMPERE.smem_per_block

    def test_make_compiler_options_passthrough(self):
        options = FusionOptions(enable_temporal=False)
        compiler = make_compiler(AMPERE, options)
        assert compiler.options is options

    def test_compile_for_different_gpus_differ(self, small_mha):
        """Volta's smaller shared memory yields a different (or at least
        not-larger) search space than Hopper-class budgets."""
        a_sched, _ = compile_for(small_mha, AMPERE)
        v_sched, _ = compile_for(small_mha, VOLTA)
        assert a_sched.num_kernels >= 1 and v_sched.num_kernels >= 1

    def test_simulate_accumulates_launches(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        counters = simulate(sched, AMPERE)
        assert counters.kernel_launches == sched.num_kernels

    def test_simulate_model_scales_occurrences(self, small_ln):
        from repro.ir import TensorProgram
        prog = TensorProgram("p")
        prog.add(small_ln, occurrences=5)
        model = compile_model_for(prog, AMPERE)
        one = simulate_model(model, AMPERE)
        prog2 = TensorProgram("p2")
        prog2.add(small_ln, occurrences=10)
        model2 = compile_model_for(prog2, AMPERE)
        two = simulate_model(model2, AMPERE)
        assert two.time_s == pytest.approx(2 * one.time_s, rel=1e-6)

    def test_cuda_graphs_flag_threads_through(self, small_mha):
        from repro.baselines import schedule_unfused_primitive
        sched = schedule_unfused_primitive(small_mha, AMPERE,
                                           framework_overhead=False)
        eager = simulate(sched, AMPERE, cuda_graphs=False)
        graphs = simulate(sched, AMPERE, cuda_graphs=True)
        assert graphs.time_s < eager.time_s


class TestReportGenerator:
    def test_quick_report_structure(self, tmp_path):
        path = tmp_path / "REPORT.md"
        text = generate_report(path=path, quick=True)
        assert path.exists()
        assert text.count("## ") >= 15           # every suite entry present
        assert "paper:" in text
        assert "fig13" in text and "table6" in text
        assert "```" in text
