"""Tests for priority/tenant-aware admission control."""

import threading

import pytest

from repro.cluster import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    SHED_CAPACITY,
    SHED_PRIORITY,
    SHED_TENANT,
    AdmissionController,
    AdmissionPolicy,
)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_outstanding_per_worker=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(priority_headroom={0: 0.0})
        with pytest.raises(ValueError):
            AdmissionPolicy(priority_headroom={0: 1.5})
        with pytest.raises(ValueError):
            AdmissionPolicy(tenant_share=0.0)

    def test_limits(self):
        pol = AdmissionPolicy(max_outstanding_per_worker=10,
                              priority_headroom={0: 1.0, 1: 0.8, 2: 0.5},
                              tenant_share=0.5)
        assert pol.limit_for(0) == 10
        assert pol.limit_for(1) == 8
        assert pol.limit_for(2) == 5
        assert pol.limit_for(99) == 5       # unknown clamps to lowest
        assert pol.tenant_limit() == 5

    def test_tenant_share_disabled(self):
        assert AdmissionPolicy(tenant_share=None).tenant_limit() is None

    def test_limits_never_zero(self):
        pol = AdmissionPolicy(max_outstanding_per_worker=1,
                              priority_headroom={2: 0.1},
                              tenant_share=0.1)
        assert pol.limit_for(2) == 1
        assert pol.tenant_limit() == 1


class TestController:
    def _ctl(self, cap=4, headroom=None, tenant_share=0.5):
        return AdmissionController(AdmissionPolicy(
            max_outstanding_per_worker=cap,
            priority_headroom=headroom or {PRIORITY_HIGH: 1.0,
                                           PRIORITY_NORMAL: 0.75,
                                           PRIORITY_LOW: 0.5},
            tenant_share=tenant_share))

    def test_capacity_shed_and_release(self):
        ctl = self._ctl(cap=2, tenant_share=None)
        assert ctl.admit("w0", priority=PRIORITY_HIGH) is None
        assert ctl.admit("w0", priority=PRIORITY_HIGH) is None
        assert ctl.admit("w0", priority=PRIORITY_HIGH) == SHED_CAPACITY
        ctl.release("w0")
        assert ctl.admit("w0", priority=PRIORITY_HIGH) is None

    def test_low_priority_sheds_before_high(self):
        """Fill to the low-priority ceiling: LOW sheds, HIGH still fits."""
        ctl = self._ctl(cap=4, tenant_share=None)
        for _ in range(2):                       # low limit = floor(4*0.5)
            assert ctl.admit("w0", priority=PRIORITY_LOW) is None
        assert ctl.admit("w0", priority=PRIORITY_LOW) == SHED_PRIORITY
        assert ctl.admit("w0", priority=PRIORITY_NORMAL) is None  # 3 of 3
        assert ctl.admit("w0", priority=PRIORITY_NORMAL) == SHED_PRIORITY
        assert ctl.admit("w0", priority=PRIORITY_HIGH) is None    # 4 of 4
        assert ctl.admit("w0", priority=PRIORITY_HIGH) == SHED_CAPACITY

    def test_tenant_fair_share(self):
        """One tenant cannot hold more than its share; others still fit."""
        ctl = self._ctl(cap=4, tenant_share=0.5)
        assert ctl.admit("w0", tenant="greedy", priority=PRIORITY_HIGH) \
            is None
        assert ctl.admit("w0", tenant="greedy", priority=PRIORITY_HIGH) \
            is None
        assert ctl.admit("w0", tenant="greedy", priority=PRIORITY_HIGH) \
            == SHED_TENANT
        assert ctl.admit("w0", tenant="polite", priority=PRIORITY_HIGH) \
            is None

    def test_workers_isolated(self):
        ctl = self._ctl(cap=1, tenant_share=None)
        assert ctl.admit("w0", priority=PRIORITY_HIGH) is None
        assert ctl.admit("w1", priority=PRIORITY_HIGH) is None
        assert ctl.admit("w0", priority=PRIORITY_HIGH) == SHED_CAPACITY
        assert ctl.outstanding("w0") == 1 and ctl.outstanding("w1") == 1

    def test_release_cleans_bookkeeping(self):
        ctl = self._ctl()
        ctl.admit("w0", tenant="t")
        ctl.release("w0", tenant="t")
        snap = ctl.snapshot()
        assert snap["outstanding"] == {} and snap["by_tenant"] == {}

    def test_thread_safety_conserves_slots(self):
        """Hammered from many threads, admitted - released never exceeds
        the window and never goes negative."""
        ctl = self._ctl(cap=8, tenant_share=None)
        errors = []

        def worker():
            for _ in range(200):
                if ctl.admit("w0", priority=PRIORITY_HIGH) is None:
                    n = ctl.outstanding("w0")
                    if not 0 < n <= 8:
                        errors.append(n)
                    ctl.release("w0")

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert ctl.outstanding("w0") == 0
