"""Integration tests for the multi-process cluster supervisor.

These fork real worker processes; workloads are chaos-sized so compiles
stay fast, and every cluster is context-managed so a failing assert
never leaks processes.
"""

import time

import numpy as np
import pytest

from repro.cluster import (
    AdmissionPolicy,
    ClusterConfig,
    ClusterError,
    ClusterShed,
    ClusterSupervisor,
)
from repro.models import layernorm_graph, mlp_graph
from repro.runtime.kernels import execute_graph_reference, random_feeds
from repro.serve import HAVE_FCNTL, WorkerCrashed

pytestmark = pytest.mark.skipif(
    not HAVE_FCNTL, reason="cluster tests assume POSIX (fcntl, fork)")


def _graphs():
    return {
        "mlp": mlp_graph(3, 64, 32, 48, name="clu_mlp"),
        "ln": layernorm_graph(48, 64, name="clu_ln"),
    }


def _config(tmp_path, **overrides):
    defaults = dict(workers=2, cache_dir=str(tmp_path / "cache"),
                    health_interval_s=0.1, heartbeat_timeout_s=10.0)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _wait(predicate, timeout_s=60.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestServing:
    def test_end_to_end_correct_answers(self, tmp_path):
        graphs = _graphs()
        refs = {(n, s): execute_graph_reference(g, random_feeds(g, seed=s))
                for n, g in graphs.items() for s in range(3)}
        with ClusterSupervisor(graphs, _config(tmp_path)) as sup:
            assert sup.health()["status"] == "healthy"
            for (name, seed), expected in refs.items():
                reply = sup.infer(name, random_feeds(graphs[name],
                                                     seed=seed),
                                  timeout=60.0)
                for out, arr in expected.items():
                    np.testing.assert_allclose(reply.outputs[out], arr,
                                               atol=1e-8)
            agg = sup.aggregate()
        assert agg["supervisor"]["requests.submitted"] == len(refs)
        # Fleet-wide single-flight: each workload compiled exactly once
        # across both workers; the replica loaded it from shared disk.
        assert agg["worker_totals"]["cache.compile_misses"] == len(graphs)
        assert agg["worker_totals"].get("cache.disk_hits", 0) >= 1

    def test_placement_replicated_and_deterministic(self, tmp_path):
        with ClusterSupervisor(_graphs(),
                               _config(tmp_path, replication=2)) as sup:
            placement = sup.placement()
            for name, owners in placement.items():
                assert len(owners) == 2 == len(set(owners))
            assert placement == sup.placement()

    def test_unknown_workload_rejected(self, tmp_path):
        with ClusterSupervisor(_graphs(), _config(tmp_path)) as sup:
            with pytest.raises(ClusterError, match="unknown workload"):
                sup.submit("missing", {})

    def test_drain_answers_everything(self, tmp_path):
        graphs = _graphs()
        with ClusterSupervisor(graphs, _config(tmp_path)) as sup:
            sup.infer("ln", random_feeds(graphs["ln"], seed=0),
                      timeout=60.0)  # warm the compile
            pending = [sup.submit("ln", random_feeds(graphs["ln"], seed=s),
                                  timeout=60.0)
                       for s in range(8)]
            sup.stop(drain=True)
            for req in pending:
                assert req.result(timeout=10.0).outputs
        stats = sup.worker_stats()
        assert stats  # drain collected final per-worker snapshots


class TestAdmission:
    def test_capacity_shed_surfaces_reason(self, tmp_path):
        graphs = {"ln": _graphs()["ln"]}
        config = _config(
            tmp_path, workers=1,
            admission=AdmissionPolicy(max_outstanding_per_worker=1,
                                      tenant_share=None),
            # Stall execution so the first request is still outstanding
            # when the second arrives.
            fault_plan={"runtime.execute": "delay(300)"})
        with ClusterSupervisor(graphs, config) as sup:
            first = sup.submit("ln", random_feeds(graphs["ln"], seed=0),
                               timeout=60.0)
            with pytest.raises(ClusterShed) as shed:
                sup.submit("ln", random_feeds(graphs["ln"], seed=1),
                           timeout=60.0)
            assert shed.value.reason == "capacity"
            assert first.result(timeout=60.0).outputs
            assert sup.metrics.get("requests.shed") == 1
            assert sup.metrics.get("shed.capacity") == 1
            # The released slot admits again.
            assert sup.infer("ln", random_feeds(graphs["ln"], seed=2),
                             timeout=60.0).outputs


class TestCrashRecovery:
    def test_inflight_fails_typed_and_worker_restarts(self, tmp_path):
        graphs = {"ln": _graphs()["ln"]}
        config = _config(tmp_path, workers=2)
        with ClusterSupervisor(graphs, config) as sup:
            sup.infer("ln", random_feeds(graphs["ln"], seed=0),
                      timeout=60.0)  # compiled and serving
            target = sup.owners_for("ln")[0]
            # Hold the next request mid-execution, then kill the worker.
            assert sup.arm_faults(target, {"runtime.execute": "delay(1000)"})
            victim = sup.submit("ln", random_feeds(graphs["ln"], seed=1),
                                timeout=60.0)
            sup.kill_worker(target)
            with pytest.raises(WorkerCrashed) as crash:
                victim.result(timeout=30.0)
            assert crash.value.worker == target
            assert sup.metrics.get("requests.worker_crashed") >= 1
            assert _wait(lambda: sup.metrics.get("workers.crashed") >= 1)
            # Self-healing: the worker restarts (breaker closed) and the
            # cluster serves the same workload again.
            assert _wait(
                lambda: sup.health()["workers"][target]["up"], 60.0)
            assert sup.restarts()[target] >= 1
            reply = sup.infer("ln", random_feeds(graphs["ln"], seed=2),
                              timeout=60.0)
            assert reply.outputs

    def test_breaker_keeps_crashlooper_down_then_probes(self, tmp_path):
        graphs = {"ln": _graphs()["ln"]}
        config = _config(tmp_path, workers=1,
                         restart_breaker_threshold=1,
                         restart_breaker_reset_s=1.0)
        with ClusterSupervisor(graphs, config) as sup:
            sup.infer("ln", random_feeds(graphs["ln"], seed=0),
                      timeout=60.0)
            sup.kill_worker("w0")
            # Breaker opens on the first crash: the worker stays down and
            # traffic sheds with the worker_down reason.
            assert _wait(
                lambda: not sup.health()["workers"]["w0"]["up"], 30.0)
            with pytest.raises(ClusterShed) as shed:
                sup.submit("ln", random_feeds(graphs["ln"], seed=1))
            assert shed.value.reason == "worker_down"
            assert sup.metrics.get("shed.worker_down") == 1
            # After the reset timeout the health loop half-opens the
            # breaker, probes a restart, and serving resumes.
            assert _wait(lambda: sup.health()["status"] == "healthy", 60.0)

            def healed():
                try:
                    return bool(sup.infer(
                        "ln", random_feeds(graphs["ln"], seed=2),
                        timeout=60.0).outputs)
                except (ClusterShed, WorkerCrashed):
                    return False

            assert _wait(healed, 60.0)


class TestTuneDBSharing:
    def test_workers_populate_shared_tunedb(self, tmp_path):
        """With a shared tune_db_dir, worker compiles land tuning entries
        on disk (once per unique kernel) and requests stay correct."""
        from repro.tune import TuneDB

        graphs = _graphs()
        db_dir = tmp_path / "tunedb"
        config = _config(tmp_path, tune_db_dir=str(db_dir))
        with ClusterSupervisor(graphs, config) as cluster:
            for name, graph in graphs.items():
                feeds = random_feeds(graph, seed=11)
                reply = cluster.infer(name, feeds, timeout=120.0)
                expected = execute_graph_reference(graph, feeds)
                for tname, arr in expected.items():
                    np.testing.assert_allclose(reply.outputs[tname],
                                               arr, atol=1e-8)
        stats = TuneDB(db_dir).disk_stats()
        assert stats["disk_entries"] > 0
