"""Tests for the consistent-hash placement ring."""

import pytest

from repro.cluster import HashRing


class TestRingBasics:
    def test_empty_ring_raises(self):
        with pytest.raises(KeyError):
            HashRing().owner("k")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_owner_deterministic_across_instances(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order irrelevant
        for key in ("mlp", "layernorm", "softmax_gemm", "k%d" % 7):
            assert a.owner(key) == b.owner(key)

    def test_membership_ops(self):
        ring = HashRing(["w0", "w1"])
        assert len(ring) == 2
        ring.add("w1")                      # idempotent
        assert len(ring) == 2
        ring.remove("w1")
        assert ring.members == frozenset({"w0"})
        ring.remove("missing")              # no-op


class TestOwners:
    def test_owners_distinct_and_primary_first(self):
        ring = HashRing(["w0", "w1", "w2"])
        owners = ring.owners("some-workload", 3)
        assert len(owners) == 3 == len(set(owners))
        assert owners[0] == ring.owner("some-workload")

    def test_owners_clamped_to_member_count(self):
        ring = HashRing(["w0", "w1"])
        assert len(ring.owners("k", 10)) == 2

    def test_fallback_order_stable_under_removal(self):
        """When the primary leaves, the old first-fallback becomes the
        new primary — the rest of the fleet's placement is untouched."""
        ring = HashRing(["w0", "w1", "w2"])
        moved = unmoved = 0
        for i in range(200):
            key = f"key{i}"
            before = ring.owners(key, 2)
            after = HashRing([m for m in ("w0", "w1", "w2")
                              if m != before[0]])
            new_primary = after.owner(key)
            assert new_primary == before[1]
            if new_primary != before[0]:
                moved += 1
            else:
                unmoved += 1
        assert moved == 200 and unmoved == 0

    def test_churn_is_bounded(self):
        """Adding one member moves roughly 1/N of the keys, not all."""
        base = HashRing(["w0", "w1", "w2"])
        grown = HashRing(["w0", "w1", "w2", "w3"])
        keys = [f"key{i}" for i in range(500)]
        moved = sum(1 for k in keys if base.owner(k) != grown.owner(k))
        assert 0 < moved < len(keys) // 2   # ~1/4 expected; far from all

    def test_spread_roughly_even(self):
        ring = HashRing([f"w{i}" for i in range(4)], vnodes=64)
        keys = [f"key{i}" for i in range(1000)]
        assignment = ring.assignment(keys)
        counts = sorted(len(v) for v in assignment.values())
        assert counts[0] > 100              # no starved member
        assert counts[-1] < 500             # no hot member

    def test_assignment_covers_every_key_once(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"key{i}" for i in range(50)]
        assignment = ring.assignment(keys)
        flat = sorted(k for ks in assignment.values() for k in ks)
        assert flat == sorted(keys)
