"""Tests for the open-loop load harness (``repro loadtest``)."""

import json

import pytest

from repro.bench.loadgen import (
    LoadConfig,
    LoadgenError,
    _arrival_schedule,
    run_loadtest,
)
from repro.serve import HAVE_FCNTL

pytestmark = pytest.mark.skipif(
    not HAVE_FCNTL, reason="cluster tests assume POSIX (fcntl, fork)")


class TestSchedule:
    def test_deterministic_in_seed(self):
        cfg = LoadConfig(rps=100.0, duration_s=2.0, seed=7)
        a = _arrival_schedule(cfg, ["x", "y"], [0.5, 0.5])
        b = _arrival_schedule(cfg, ["x", "y"], [0.5, 0.5])
        assert a == b
        c = _arrival_schedule(LoadConfig(rps=100.0, duration_s=2.0, seed=8),
                              ["x", "y"], [0.5, 0.5])
        assert a != c

    def test_open_loop_properties(self):
        cfg = LoadConfig(rps=200.0, duration_s=3.0, seed=0)
        sched = _arrival_schedule(cfg, ["x", "y", "z"], [0.6, 0.3, 0.1])
        offsets = [t for t, _w, _s in sched]
        assert offsets == sorted(offsets)           # monotonic plan
        assert all(0 <= t < cfg.duration_s for t in offsets)
        # Poisson at 200 rps over 3s: ~600 arrivals, loosely bounded.
        assert 400 < len(sched) < 800
        used = {w for _t, w, _s in sched}
        assert used == {"x", "y", "z"}
        assert all(0 <= s < cfg.ref_seeds for _t, _w, s in sched)

    def test_config_validation(self):
        with pytest.raises(LoadgenError):
            LoadConfig(rps=0)
        with pytest.raises(LoadgenError):
            LoadConfig(duration_s=-1)
        with pytest.raises(LoadgenError):
            LoadConfig(workers=0)


class TestRun:
    def test_small_run_delivery_invariants(self, tmp_path):
        """The acceptance run: 2 workers, open-loop Poisson traffic over
        the mixed zoo, zero lost/duplicated/wrong, well-formed JSON."""
        report_path = tmp_path / "BENCH_serving.json"
        report = run_loadtest(
            LoadConfig(rps=25.0, duration_s=3.0, workers=2, seed=1),
            report_path=str(report_path))

        assert report.ok, report.render()
        assert report.offered > 0
        assert report.lost == 0 and report.duplicated == 0
        assert report.wrong == []
        assert report.ok_requests > 0 and report.throughput_rps > 0
        assert report.accepted == report.completed
        # Mixed zoo actually exercised.
        assert len(report.per_workload) >= 2
        # Fleet-wide single-flight across the shared cache dir.
        assert report.cache["compile_misses"] == len(report.placement)

        data = json.loads(report_path.read_text())
        assert data["experiment"] == "serving_loadtest"
        assert data["ok"] is True
        lat = data["latency"]
        for key in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"):
            assert lat[key] >= 0.0
        assert lat["p50_ms"] <= lat["p95_ms"] <= lat["p99_ms"]
        for key in ("shed_rate", "breaker_trips", "throughput_rps",
                    "offered_rps", "config", "cache", "placement"):
            assert key in data

    def test_render_mentions_verdict(self, tmp_path):
        report = run_loadtest(
            LoadConfig(rps=10.0, duration_s=1.0, workers=1, seed=3,
                       cache_dir=str(tmp_path)))
        text = report.render()
        assert "verdict:" in text and "latency" in text
        assert report.to_dict()["offered"] == report.offered
