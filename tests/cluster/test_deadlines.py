"""End-to-end deadline propagation, hedged replicas, graceful signals,
and the exactly-once completion funnel.

The process-level tests fork real workers (chaos-sized workloads, all
context-managed); the race tests drive the supervisor's ``_finish_copy``
funnel directly on an unstarted supervisor, where both sides of each
race can be sequenced deterministically.
"""

import math
import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterSupervisor
from repro.cluster.supervisor import _Tracked, _Worker
from repro.models import layernorm_graph, mlp_graph
from repro.resilience import faults
from repro.runtime.kernels import execute_graph_reference, random_feeds
from repro.serve import HAVE_FCNTL, Request, WorkerCrashed

pytestmark = pytest.mark.skipif(
    not HAVE_FCNTL, reason="cluster tests assume POSIX (fcntl, fork)")


def _graphs():
    return {
        "mlp": mlp_graph(3, 64, 32, 48, name="ddl_mlp"),
        "ln": layernorm_graph(48, 64, name="ddl_ln"),
    }


def _config(tmp_path, **overrides):
    defaults = dict(workers=2, cache_dir=str(tmp_path / "cache"),
                    health_interval_s=0.1, heartbeat_timeout_s=10.0)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _wait(predicate, timeout_s=60.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestDeadlinePropagation:
    def test_supervisor_elapsed_deducted_before_dispatch(self, tmp_path):
        """The regression the re-timing fix guards: time the request
        spends on the supervisor (routing, queueing) must come out of
        its end-to-end budget.  With 60ms of injected dispatch delay and
        a 30ms budget, a supervisor that forwarded the *full* budget
        would have the warm worker answer comfortably; deducting elapsed
        time leaves nothing, so the request must die at dispatch and
        never cross the wire."""
        graphs = _graphs()
        with ClusterSupervisor(graphs, _config(tmp_path)) as sup:
            # Warm the shard so a dispatched request would answer in ~ms.
            sup.infer("mlp", random_feeds(graphs["mlp"], seed=0),
                      timeout=60.0)
            served_before = sum(
                snap.get("requests_served", 0)
                for snap in sup.worker_stats().values())
            with faults.registry().armed({"cluster.dispatch": "delay(60)"}):
                req = sup.submit("mlp", random_feeds(graphs["mlp"], seed=1),
                                 timeout=0.03)
            with pytest.raises(TimeoutError, match="budget before dispatch"):
                req.result(timeout=5.0)
            assert req.resolutions == 1
            assert sup.metrics.get("deadline.expired_dispatch") == 1
            served_after = sum(
                snap.get("requests_served", 0)
                for snap in sup.worker_stats().values())
        assert served_after == served_before

    def test_generous_budget_survives_dispatch_delay(self, tmp_path):
        """Same injected delay, budget big enough to absorb it: the
        worker receives the *remaining* budget and still answers in
        time — deduction must not expire healthy requests."""
        graphs = _graphs()
        expected = execute_graph_reference(graphs["mlp"],
                                           random_feeds(graphs["mlp"],
                                                        seed=0))
        with ClusterSupervisor(graphs, _config(tmp_path)) as sup:
            sup.infer("mlp", random_feeds(graphs["mlp"], seed=0),
                      timeout=60.0)
            with faults.registry().armed({"cluster.dispatch": "delay(60)"}):
                reply = sup.infer("mlp",
                                  random_feeds(graphs["mlp"], seed=0),
                                  timeout=10.0)
            for name, arr in expected.items():
                np.testing.assert_allclose(reply.outputs[name], arr,
                                           atol=1e-8)
            assert sup.metrics.get("deadline.expired_dispatch") == 0


class TestHedging:
    def test_hedge_wins_on_slow_replica(self, tmp_path):
        """A slow routed worker forces the hedge timer to re-issue to
        the replica; the hedge answers correctly, the slow original is
        counted as wasted, and outstanding hedges never exceed the
        configured fraction of open requests."""
        graphs = _graphs()
        config = _config(tmp_path, replication=2, hedge_delay_s=0.05,
                         hedge_max_fraction=0.5)
        expected = execute_graph_reference(graphs["mlp"],
                                           random_feeds(graphs["mlp"],
                                                        seed=0))
        with ClusterSupervisor(graphs, config) as sup:
            for name in graphs:        # warm both shards' compiles
                sup.infer(name, random_feeds(graphs[name], seed=0),
                          timeout=60.0)
            primary = sup.owners_for("mlp")[0]
            assert sup.arm_faults(primary,
                                  {"cluster.worker.slow": "delay(500)"})
            t0 = time.monotonic()
            reply = sup.infer("mlp", random_feeds(graphs["mlp"], seed=0),
                              timeout=30.0)
            elapsed = time.monotonic() - t0
            for name, arr in expected.items():
                np.testing.assert_allclose(reply.outputs[name], arr,
                                           atol=1e-8)
            # Answered by the hedge, not by waiting out the slow worker.
            assert elapsed < 0.45
            assert sup.metrics.get("hedge.issued") >= 1
            _wait(lambda: sup.metrics.get("hedge.won") >= 1, timeout_s=5.0)
            assert sup.metrics.get("hedge.won") >= 1
            snap = sup.metrics.snapshot()
            peak_out = snap.get("gauge.hedge.peak_outstanding", 0)
            peak_open = snap.get("gauge.hedge.peak_open_requests", 1)
            assert peak_out <= max(
                1, math.floor(config.hedge_max_fraction * peak_open))

    def test_no_hedge_without_replica_or_when_disabled(self, tmp_path):
        graphs = _graphs()
        config = _config(tmp_path, hedge=False, hedge_delay_s=0.01)
        with ClusterSupervisor(graphs, config) as sup:
            sup.infer("mlp", random_feeds(graphs["mlp"], seed=0),
                      timeout=60.0)
            assert sup.metrics.get("hedge.issued") == 0
            assert sup._hedge_delay("mlp") is None


class TestGracefulSignals:
    def test_worker_sigterm_drains_and_exits_zero(self, tmp_path):
        """SIGTERM to one worker process: it finishes in-flight work and
        exits cleanly (code 0), and the supervisor replaces it."""
        graphs = _graphs()
        with ClusterSupervisor(graphs, _config(tmp_path)) as sup:
            sup.infer("mlp", random_feeds(graphs["mlp"], seed=0),
                      timeout=60.0)
            name = sup.owners_for("mlp")[0]
            victim = sup._workers[name].proc
            restarts_before = sup.metrics.get("workers.restarts")
            os.kill(victim.pid, signal.SIGTERM)
            assert _wait(lambda: victim.exitcode is not None,
                         timeout_s=30.0)
            assert victim.exitcode == 0
            # The supervisor sees the pipe close and brings up a fresh
            # generation; the shard keeps serving.
            assert _wait(lambda: sup.metrics.get("workers.restarts")
                         > restarts_before
                         and sup.health()["workers"][name]["up"],
                         timeout_s=30.0)
            sup.infer("mlp", random_feeds(graphs["mlp"], seed=1),
                      timeout=60.0)

    def test_supervisor_sigterm_drains_fleet(self, tmp_path):
        """SIGTERM with the cluster's handlers installed: the whole
        fleet drains (workers exit 0, final stats collected) before the
        process re-raises SystemExit(143)."""
        graphs = _graphs()
        sup = ClusterSupervisor(graphs, _config(tmp_path))
        sup.start()
        restore = sup.install_signal_handlers()
        try:
            sup.infer("mlp", random_feeds(graphs["mlp"], seed=0),
                      timeout=60.0)
            procs = [w.proc for w in sup._workers.values()]
            with pytest.raises(SystemExit) as excinfo:
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5.0)     # interrupted by the handler
            assert excinfo.value.code == 143
            for proc in procs:
                assert _wait(lambda: proc.exitcode is not None,
                             timeout_s=30.0)
                assert proc.exitcode == 0
            assert sup.worker_stats()      # drain collected final stats
        finally:
            restore()
            sup.stop(drain=False)


def _payload(latency_s=0.001):
    return {"outputs": {"y": np.zeros(2)}, "degraded": False,
            "reason": None, "latency_s": latency_s}


class TestExactlyOnceRaces:
    """Both sides of each completion race, sequenced deterministically
    against the ``_finish_copy`` funnel of an unstarted supervisor."""

    def _sup(self):
        sup = ClusterSupervisor({"mlp": mlp_graph(3, 64, 32, 48,
                                                  name="race_mlp")})
        wa = _Worker("wa", None, None, 1)
        wb = _Worker("wb", None, None, 1)
        return sup, wa, wb

    def _tracked(self, deadline=None):
        request = Request(workload="mlp", feeds={})
        return _Tracked(request, "mlp", "default", 1, deadline)

    def test_hedge_winner_then_original_resolves_once(self):
        sup, wa, wb = self._sup()
        tracked = self._tracked()
        tracked.copies = {1: "wa", 2: "wb"}
        tracked.hedged, tracked.hedge_req_id = True, 2
        sup._hedges_out = 1
        sup._finish_copy(wb, 2, tracked, payload=_payload())   # hedge wins
        sup._finish_copy(wa, 1, tracked, payload=_payload())   # loser lands
        assert tracked.request.resolutions == 1
        assert tracked.request.error is None
        assert sup.metrics.get("hedge.won") == 1
        assert sup.metrics.get("hedge.wasted") == 1
        assert sup._hedges_out == 0

    def test_original_beats_hedge_no_double_resolution(self):
        sup, wa, wb = self._sup()
        tracked = self._tracked()
        tracked.copies = {1: "wa", 2: "wb"}
        tracked.hedged, tracked.hedge_req_id = True, 2
        sup._hedges_out = 1
        sup._finish_copy(wa, 1, tracked, payload=_payload())
        sup._finish_copy(wb, 2, tracked, payload=_payload())
        assert tracked.request.resolutions == 1
        assert sup.metrics.get("hedge.won") == 0
        assert sup.metrics.get("hedge.wasted") == 1
        assert sup._hedges_out == 0

    def test_expiry_racing_reply_withholds_the_result(self):
        sup, wa, _ = self._sup()
        tracked = self._tracked(deadline=time.monotonic() + 10.0)
        tracked.copies = {1: "wa"}
        sup._expire_tracked(tracked)              # timer fires first
        sup._finish_copy(wa, 1, tracked, payload=_payload())
        assert tracked.request.resolutions == 1
        assert isinstance(tracked.request.error, TimeoutError)
        assert sup.metrics.get("deadline.expired_supervisor") == 1

    def test_reply_past_deadline_is_never_published(self):
        sup, wa, _ = self._sup()
        tracked = self._tracked(deadline=time.monotonic() - 0.01)
        tracked.copies = {1: "wa"}
        sup._finish_copy(wa, 1, tracked, payload=_payload())
        assert tracked.request.resolutions == 1
        assert isinstance(tracked.request.error, TimeoutError)
        assert sup.metrics.get("deadline.expired_reply") == 1

    def test_crash_drain_skips_already_resolved_requests(self):
        """``_handle_crash`` drains the dead worker's book through the
        same funnel: a request whose reply already resolved it must not
        be failed again by the crash sweep."""
        sup, wa, wb = self._sup()
        tracked = self._tracked()
        tracked.copies = {1: "wa", 2: "wb"}
        tracked.hedged, tracked.hedge_req_id = True, 2
        sup._hedges_out = 1
        sup._finish_copy(wb, 2, tracked, payload=_payload())
        sup._finish_copy(wa, 1, tracked,
                         error=WorkerCrashed("wa", "died mid-flight"))
        assert tracked.request.resolutions == 1
        assert tracked.request.error is None

    def test_first_copy_error_held_until_last_copy_fails(self):
        """An error on one copy while another is still out must wait:
        only the final copy's failure fails the request."""
        sup, wa, wb = self._sup()
        tracked = self._tracked()
        tracked.copies = {1: "wa", 2: "wb"}
        tracked.hedged, tracked.hedge_req_id = True, 2
        sup._hedges_out = 1
        sup._finish_copy(wa, 1, tracked,
                         error=WorkerCrashed("wa", "died mid-flight"))
        assert not tracked.request.done()         # hedge may still win
        sup._finish_copy(wb, 2, tracked,
                         error=WorkerCrashed("wb", "also died"))
        assert tracked.request.resolutions == 1
        assert isinstance(tracked.request.error, WorkerCrashed)
