"""Cross-process single-flight: two real processes race ``get_or_compile``
on the same key and exactly one compile happens fleet-wide.

This is the guarantee the cluster tier leans on: workers share one disk
schedule-cache directory, and the per-key advisory file lock must ensure
a given (graph, GPU, options) key is compiled by exactly one process —
everyone else waits on the lock and loads the winner's entry as a disk
hit.  Compile attempts are counted via the compile-side failpoint
(``serve.cache.compile``), which also injects a delay to hold the race
window open.
"""

import multiprocessing

import pytest

from repro.core.serialize import ScheduleCache
from repro.hw import AMPERE
from repro.models import layernorm_graph
from repro.pipeline import compile_for
from repro.serve import HAVE_FCNTL, TieredScheduleCache

pytestmark = pytest.mark.skipif(
    not HAVE_FCNTL,
    reason="cross-process single-flight needs fcntl advisory locks")


def _race_child(barrier, out_q, cache_dir, graph, idx):
    """One racer: fresh failpoint registry, shared disk tier, one key."""
    from repro.resilience import faults

    registry = faults.reset_after_fork()
    # The delay sits inside the compile path (after the disk-miss check,
    # before the store): both processes reliably reach the cold path at
    # the same time, so only the file lock can serialise them.
    registry.arm("serve.cache.compile", "delay(100)")
    cache = TieredScheduleCache(disk=ScheduleCache(cache_dir),
                                lock_timeout_s=60.0)

    def compile_fn():
        schedule, _ = compile_for(graph, AMPERE)
        return schedule

    barrier.wait(timeout=60.0)
    schedule = cache.get_or_compile(graph, AMPERE.name, compile_fn)
    out_q.put({
        "idx": idx,
        "compile_attempts": registry.hits().get("serve.cache.compile", 0),
        "got_schedule": schedule is not None,
        "stats": cache.stats(),
    })


class TestCrossProcessSingleFlight:
    def test_two_processes_compile_exactly_once(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        out_q = ctx.Queue()
        graph = layernorm_graph(40, 72, name="ln_race")
        procs = [
            ctx.Process(target=_race_child,
                        args=(barrier, out_q, str(tmp_path), graph, i))
            for i in range(2)
        ]
        for p in procs:
            p.start()
        results = []
        try:
            for _ in procs:
                results.append(out_q.get(timeout=120.0))
        finally:
            for p in procs:
                p.join(timeout=30.0)
                if p.is_alive():
                    p.terminate()

        assert len(results) == 2
        assert all(r["got_schedule"] for r in results)
        # The acceptance criterion: at most one compile per key across
        # the whole fleet — the loser waited on the lock and re-read the
        # winner's entry from disk.
        total_compiles = sum(r["compile_attempts"] for r in results)
        assert total_compiles == 1, results
        total_disk_hits = sum(r["stats"]["disk_hits"] for r in results)
        assert total_disk_hits == 1, results
        assert sum(r["stats"]["lock_timeouts"] for r in results) == 0

    def test_second_process_after_first_is_pure_disk_hit(self, tmp_path):
        """Sequential (no race): the second process never compiles."""
        ctx = multiprocessing.get_context("fork")
        graph = layernorm_graph(40, 72, name="ln_seq")
        for i, expect_compile in enumerate((1, 0)):
            barrier = ctx.Barrier(1)
            out_q = ctx.Queue()
            p = ctx.Process(target=_race_child,
                            args=(barrier, out_q, str(tmp_path), graph, i))
            p.start()
            result = out_q.get(timeout=120.0)
            p.join(timeout=30.0)
            assert result["compile_attempts"] == expect_compile
            assert result["got_schedule"]
