"""Resilience integration: admission control, breaker, quarantine,
disk-error tolerance, and feed validation on the serving stack."""

import threading
import time

import numpy as np
import pytest

from repro.core.serialize import ScheduleCache
from repro.hw import AMPERE
from repro.resilience import faults
from repro.resilience.retry import CLOSED, OPEN, CircuitBreaker, RetryPolicy
from repro.runtime.compiled import PlanCache
from repro.runtime.kernels import execute_graph_reference, random_feeds
from repro.serve import (
    FusionServer,
    InferenceSession,
    InvalidRequestError,
    Overloaded,
    ServeMetrics,
    TieredScheduleCache,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    faults.registry().disarm()


class _BrokenDisk(ScheduleCache):
    """Disk tier whose every I/O fails."""

    def get(self, *a, **k):
        raise OSError("disk on fire")

    def put(self, *a, **k):
        raise OSError("disk on fire")


class TestDiskErrorTolerance:
    def test_broken_disk_counts_as_miss_not_error(self, small_ln, tmp_path):
        metrics = ServeMetrics()
        cache = TieredScheduleCache(disk=_BrokenDisk(tmp_path),
                                    metrics=metrics)
        from repro.pipeline import compile_for

        sched = cache.get_or_compile(
            small_ln, AMPERE.name,
            lambda: compile_for(small_ln, AMPERE)[0])
        assert sched is not None
        assert metrics.get("cache.disk_errors") == 2     # get and put
        assert cache.stats()["disk_errors"] == 2
        # The schedule still landed in the memory tier.
        assert metrics.get("cache.memory_hits") == 0
        again = cache.get_or_compile(
            small_ln, AMPERE.name,
            lambda: compile_for(small_ln, AMPERE)[0])
        assert again is sched

    def test_disk_failpoints_injected(self, small_ln, tmp_path):
        metrics = ServeMetrics()
        cache = TieredScheduleCache(disk=ScheduleCache(tmp_path),
                                    metrics=metrics)
        from repro.pipeline import compile_for

        with faults.registry().armed({
                "serve.cache.disk_get": "fail_n_times(1)",
                "serve.cache.disk_put": "fail_n_times(1)"}):
            sched = cache.get_or_compile(
                small_ln, AMPERE.name,
                lambda: compile_for(small_ln, AMPERE)[0])
        assert sched is not None
        assert metrics.get("cache.disk_errors") == 2


class TestCompileRetry:
    def test_transient_compile_failure_retried(self, small_ln):
        metrics = ServeMetrics()
        cache = TieredScheduleCache(
            metrics=metrics,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001))
        from repro.pipeline import compile_for

        calls = []

        def flaky_compile():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient tuner crash")
            return compile_for(small_ln, AMPERE)[0]

        sched = cache.get_or_compile(small_ln, AMPERE.name, flaky_compile)
        assert sched is not None and len(calls) == 2
        assert metrics.get("cache.compile_retries") == 1

    def test_persistent_failure_still_raises(self, small_ln):
        cache = TieredScheduleCache(
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.001))

        def broken():
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            cache.get_or_compile(small_ln, AMPERE.name, broken)


class TestSessionBreaker:
    def test_engine_errors_degrade_then_open_breaker(self, small_ln):
        metrics = ServeMetrics()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.02)
        session = InferenceSession(small_ln, AMPERE, metrics=metrics,
                                   breaker=breaker, eager=True)
        feeds = random_feeds(small_ln, seed=0)
        expected = execute_graph_reference(small_ln, feeds)

        with faults.registry().armed({
                "runtime.execute": "fail_n_times(2)"}):
            for _ in range(2):
                reply = session.execute(feeds)
                assert reply.degraded and reply.reason == "engine_error"
                for name, arr in expected.items():
                    np.testing.assert_allclose(reply.outputs[name], arr,
                                               atol=1e-9)
        assert breaker.state == OPEN
        assert metrics.get("breaker.open") == 1

        # Open: requests skip the fused path entirely.
        reply = session.execute(feeds)
        assert reply.reason == "breaker_open"

        # After the reset timeout the probe succeeds and the breaker
        # closes again; the fused path is back.
        time.sleep(0.03)
        reply = session.execute(feeds)
        assert not reply.degraded
        assert breaker.state == CLOSED
        assert breaker.cycles == 1
        assert metrics.get("breaker.half_open") == 1
        assert metrics.get("breaker.closed") == 1


class TestPlanQuarantine:
    def test_poisoned_plan_evicted_and_reanswered(self, small_ln):
        metrics = ServeMetrics()
        plans = PlanCache(capacity=8)
        session = InferenceSession(small_ln, AMPERE, metrics=metrics,
                                   plan_cache=plans, eager=True)
        feeds = random_feeds(small_ln, seed=1)
        expected = execute_graph_reference(small_ln, feeds)
        poisoned = session.program

        with faults.registry().armed({"runtime.poison": "fail_n_times(1)"}):
            reply = session.execute(feeds)

        assert reply.degraded and reply.reason == "plan_quarantined"
        for name, arr in expected.items():
            assert np.isfinite(reply.outputs[name]).all()
            np.testing.assert_allclose(reply.outputs[name], arr, atol=1e-9)
        # Regression: the plan is *really* gone and was re-lowered.
        assert plans.stats()["quarantined"] == 1
        assert session.program is not poisoned
        assert metrics.get("plans.quarantined") == 1
        assert metrics.get("fallbacks.plan_quarantined") == 1

        # Next request runs the fresh plan, no degradation.
        reply = session.execute(feeds)
        assert not reply.degraded

    def test_nonfinite_data_is_not_blamed_on_the_plan(self, small_ln):
        metrics = ServeMetrics()
        plans = PlanCache(capacity=8)
        session = InferenceSession(small_ln, AMPERE, metrics=metrics,
                                   plan_cache=plans, eager=True)
        feeds = random_feeds(small_ln, seed=0)
        feeds["X"] = np.full_like(feeds["X"], np.inf)
        reply = session.execute(feeds)
        assert reply.reason == "nonfinite_data"
        assert plans.stats()["quarantined"] == 0
        assert metrics.get("plans.nonfinite_data") == 1


class TestAdmissionControl:
    def test_overload_sheds_promptly_and_accepted_complete(self, small_ln):
        metrics = ServeMetrics()
        session = InferenceSession(small_ln, AMPERE, metrics=metrics,
                                   eager=True)
        server = FusionServer({"ln": session}, workers=1,
                              metrics=metrics, max_queue_depth=2)
        feeds = random_feeds(small_ln, seed=0)
        expected = execute_graph_reference(small_ln, feeds)

        accepted, shed = [], []
        # Stall the batcher so the queue cannot drain while we flood it.
        with faults.registry().armed({"serve.batch": "delay(150)"}):
            server.start()
            t0 = time.perf_counter()
            for _ in range(8):
                try:
                    accepted.append(server.submit("ln", feeds))
                except Overloaded:
                    shed.append(1)
            elapsed = time.perf_counter() - t0
        assert elapsed < 1.0                   # sheds are prompt, not queued
        assert len(shed) >= 1
        assert len(accepted) >= 2
        assert metrics.get("requests.shed") == len(shed)

        for req in accepted:
            reply = req.result(timeout=30.0)
            for name, arr in expected.items():
                np.testing.assert_allclose(reply.outputs[name], arr,
                                           atol=1e-9)
        server.stop()
        assert server.queue.depth() == 0

    def test_concurrent_flood_every_request_shed_or_answered(self, small_ln):
        metrics = ServeMetrics()
        session = InferenceSession(small_ln, AMPERE, metrics=metrics,
                                   eager=True)
        server = FusionServer({"ln": session}, workers=2,
                              metrics=metrics, max_queue_depth=4)
        feeds = random_feeds(small_ln, seed=0)
        outcomes = []
        lock = threading.Lock()

        def client():
            try:
                req = server.submit("ln", feeds)
            except Overloaded:
                with lock:
                    outcomes.append("shed")
                return
            reply = req.result(timeout=30.0)
            with lock:
                outcomes.append("answered" if reply is not None else "?")

        with faults.registry().armed({"serve.batch": "delay(30)"}):
            with server:
                threads = [threading.Thread(target=client)
                           for _ in range(24)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        assert len(outcomes) == 24
        assert outcomes.count("shed") == metrics.get("requests.shed")
        assert outcomes.count("answered") + outcomes.count("shed") == 24

    def test_unbounded_queue_never_sheds(self, small_ln):
        session = InferenceSession(small_ln, AMPERE, eager=True)
        server = FusionServer({"ln": session}, workers=1)
        feeds = random_feeds(small_ln, seed=0)
        with server:
            reqs = [server.submit("ln", feeds) for _ in range(32)]
            for req in reqs:
                req.result(timeout=30.0)


class TestFeedValidation:
    def _server(self, graph):
        session = InferenceSession(graph, AMPERE)
        return FusionServer({"ln": session})

    def test_nan_feed_rejected_at_submit(self, small_ln):
        server = self._server(small_ln)
        feeds = random_feeds(small_ln, seed=0)
        feeds["X"][0, 0] = np.nan
        with pytest.raises(InvalidRequestError, match="non-finite"):
            server.submit("ln", feeds)

    def test_inf_feed_rejected_at_submit(self, small_ln):
        server = self._server(small_ln)
        feeds = random_feeds(small_ln, seed=0)
        feeds["G"][3] = np.inf
        with pytest.raises(InvalidRequestError, match="non-finite"):
            server.submit("ln", feeds)

    def test_wrong_dtype_rejected(self, small_ln):
        server = self._server(small_ln)
        feeds = random_feeds(small_ln, seed=0)
        feeds["X"] = feeds["X"].astype(np.complex128)
        with pytest.raises(InvalidRequestError, match="dtype"):
            server.submit("ln", feeds)
        feeds["X"] = np.array([["a", "b"]])
        with pytest.raises(InvalidRequestError, match="dtype"):
            server.submit("ln", feeds)

    def test_missing_input_rejected(self, small_ln):
        server = self._server(small_ln)
        feeds = random_feeds(small_ln, seed=0)
        del feeds["X"]
        with pytest.raises(InvalidRequestError, match="missing"):
            server.submit("ln", feeds)

    def test_float32_upcast_is_allowed(self, small_ln):
        session = InferenceSession(small_ln, AMPERE, eager=True)
        server = FusionServer({"ln": session})
        feeds = {k: v.astype(np.float32)
                 for k, v in random_feeds(small_ln, seed=0).items()}
        with server:
            reply = server.infer("ln", feeds)
        assert all(np.isfinite(v).all() for v in reply.outputs.values())


class TestHealth:
    def test_healthy_then_degraded_then_unhealthy(self, small_ln):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=60.0)
        session = InferenceSession(small_ln, AMPERE, breaker=breaker)
        server = FusionServer({"ln": session})
        assert server.health()["status"] == "healthy"

        breaker.record_failure()               # breaker opens
        health = server.health()
        assert health["status"] == "unhealthy"  # the only session is down
        assert health["sessions"]["ln"]["breaker"] == OPEN

        healthy = InferenceSession(small_ln, AMPERE)
        server.register("ln2", healthy)
        assert server.health()["status"] == "degraded"

        server.stop()
        assert server.health()["status"] == "unhealthy"
        assert server.health()["stopped"]

    def test_health_reports_queue_and_sheds(self, small_ln):
        session = InferenceSession(small_ln, AMPERE)
        server = FusionServer({"ln": session}, max_queue_depth=16)
        health = server.health()
        assert health["queue_depth"] == 0
        assert health["queue_bound"] == 16
        assert health["shed"] == 0
