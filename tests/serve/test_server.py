"""Integration tests for FusionServer: batching, concurrency, fallback.

The deterministic integration test of the acceptance criteria lives here:
>=4 concurrent client threads, zero wrong answers, and one forced
fallback-to-unfused downgrade — all against precomputed references.
"""

import threading
import time

import numpy as np
import pytest

from repro.hw import AMPERE
from repro.resilience import faults
from repro.runtime.kernels import execute_graph_reference, random_feeds
from repro.serve import (
    FusionServer,
    InferenceSession,
    Request,
    RequestQueue,
    ServeMetrics,
    ServerError,
    WorkerCrashed,
    batch_key,
)


class TestQueueAndBatching:
    def test_fifo_and_depth(self, small_ln):
        q = RequestQueue()
        f = random_feeds(small_ln, seed=0)
        assert q.put(Request("w", f)) == 1
        assert q.put(Request("w", f)) == 2
        batch = q.take_batch(max_batch=8, max_wait_s=0.0)
        assert len(batch) == 2 and batch[0].seq < batch[1].seq
        assert q.depth() == 0

    def test_max_batch_respected(self, small_ln):
        q = RequestQueue()
        f = random_feeds(small_ln, seed=0)
        for _ in range(5):
            q.put(Request("w", f))
        assert len(q.take_batch(max_batch=3, max_wait_s=0.0)) == 3
        assert q.depth() == 2

    def test_only_same_key_coalesces(self, small_ln, small_mlp):
        q = RequestQueue()
        q.put(Request("ln", random_feeds(small_ln, seed=0)))
        q.put(Request("mlp", random_feeds(small_mlp, seed=0)))
        q.put(Request("ln", random_feeds(small_ln, seed=1)))
        batch = q.take_batch(max_batch=8, max_wait_s=0.0)
        assert [r.workload for r in batch] == ["ln", "ln"]
        assert q.depth() == 1                  # the mlp request is untouched

    def test_batch_key_tracks_shapes(self, small_ln, small_mlp):
        assert batch_key("w", random_feeds(small_ln, seed=0)) == \
            batch_key("w", random_feeds(small_ln, seed=9))
        assert batch_key("w", random_feeds(small_ln, seed=0)) != \
            batch_key("w", random_feeds(small_mlp, seed=0))

    def test_closed_empty_queue_returns_empty_batch(self):
        q = RequestQueue()
        q.close()
        assert q.take_batch(max_batch=4, max_wait_s=0.0) == []
        with pytest.raises(RuntimeError):
            q.put(Request("w", {}))

    def test_take_batch_blocks_until_put(self, small_ln):
        """Idle workers sleep on the condition (no busy-poll) and wake as
        soon as a request lands."""
        q = RequestQueue()
        out = []
        t = threading.Thread(
            target=lambda: out.append(q.take_batch(4, 0.0)))
        t.start()
        time.sleep(0.05)
        assert t.is_alive() and not out       # parked, not returned empty
        q.put(Request("w", random_feeds(small_ln, seed=0)))
        t.join(timeout=5.0)
        assert not t.is_alive() and len(out[0]) == 1

    def test_close_wakes_blocked_take_batch(self):
        q = RequestQueue()
        out = []
        t = threading.Thread(
            target=lambda: out.append(q.take_batch(4, 0.0)))
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive() and out == [[]]

    def test_expired_request_failed_at_dequeue(self, small_ln):
        """Regression: a request whose deadline passed while queued must
        never be dispatched — it is failed with TimeoutError and the
        ``on_expired`` hook fires."""
        expired = []
        q = RequestQueue(on_expired=expired.append)
        dead = Request("w", random_feeds(small_ln, seed=0), timeout_s=0.001)
        live = Request("w", random_feeds(small_ln, seed=1))
        q.put(dead)
        q.put(live)
        time.sleep(0.01)                      # dead's deadline passes
        batch = q.take_batch(max_batch=8, max_wait_s=0.0)
        assert [r.seq for r in batch] == [live.seq]
        assert len(expired) == 1 and expired[0] is dead
        assert dead.done()
        with pytest.raises(TimeoutError, match="expired"):
            dead.result(timeout=0)
        assert q.depth() == 0


class TestServerIntegration:
    def test_concurrent_clients_zero_wrong_answers(self, small_mlp):
        """Acceptance: 4 client threads through the full server stack."""
        metrics = ServeMetrics()
        session = InferenceSession(small_mlp, AMPERE, metrics=metrics)
        seeds = list(range(12))
        expected = {
            s: execute_graph_reference(small_mlp,
                                       random_feeds(small_mlp, seed=s))
            for s in seeds
        }
        wrong = []

        def client(chunk):
            for seed in chunk:
                reply = server.infer("mlp", random_feeds(small_mlp,
                                                         seed=seed))
                for name, arr in expected[seed].items():
                    if not np.allclose(reply.outputs[name], arr, atol=1e-9):
                        wrong.append(seed)

        with FusionServer({"mlp": session}, max_batch=4, max_wait_ms=5.0,
                          workers=2, metrics=metrics) as server:
            threads = [threading.Thread(target=client,
                                        args=(seeds[i::4],))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert wrong == []
        assert metrics.get("requests_served") == len(seeds)
        assert metrics.get("batches_dispatched") >= 1
        snap = metrics.snapshot()
        assert snap["request_latency.count"] == len(seeds)

    def test_forced_fallback_downgrade(self, small_ln):
        """Acceptance: one compile failure exercises the unfused path."""
        def broken():
            raise RuntimeError("no backend available")

        metrics = ServeMetrics()
        session = InferenceSession(small_ln, AMPERE, metrics=metrics,
                                   compile_fn=broken)
        feeds = random_feeds(small_ln, seed=2)
        with FusionServer({"ln": session}, metrics=metrics) as server:
            reply = server.infer("ln", feeds)
        assert reply.degraded and reply.reason == "compile_failed"
        expected = execute_graph_reference(small_ln, feeds)
        for name, arr in expected.items():
            np.testing.assert_allclose(reply.outputs[name], arr)
        assert metrics.get("fallbacks") == 1
        report = server.stats_report()
        assert "fallbacks" in report and "state=failed" in report

    def test_multi_workload_server(self, small_ln, small_mlp):
        sessions = {
            "ln": InferenceSession(small_ln, AMPERE),
            "mlp": InferenceSession(small_mlp, AMPERE),
        }
        with FusionServer(sessions, workers=2) as server:
            r_ln = server.submit("ln", random_feeds(small_ln, seed=1))
            r_mlp = server.submit("mlp", random_feeds(small_mlp, seed=1))
            out_ln = r_ln.result(timeout=120).outputs
            out_mlp = r_mlp.result(timeout=120).outputs
        ref_ln = execute_graph_reference(small_ln,
                                         random_feeds(small_ln, seed=1))
        ref_mlp = execute_graph_reference(small_mlp,
                                          random_feeds(small_mlp, seed=1))
        for name, arr in ref_ln.items():
            np.testing.assert_allclose(out_ln[name], arr, atol=1e-9)
        for name, arr in ref_mlp.items():
            np.testing.assert_allclose(out_mlp[name], arr, atol=1e-9)

    def test_unknown_workload_rejected_at_submit(self, small_ln):
        with FusionServer({"ln": InferenceSession(small_ln, AMPERE)}) \
                as server:
            with pytest.raises(ServerError, match="unknown workload"):
                server.submit("missing", {})

    def test_stop_without_drain_fails_pending(self, small_ln):
        session = InferenceSession(small_ln, AMPERE)
        server = FusionServer({"ln": session})   # never started: no workers
        req = server.submit("ln", random_feeds(small_ln, seed=0))
        server.stop(drain=False)
        with pytest.raises(ServerError, match="stopped before dispatch"):
            req.result(timeout=1.0)

    def test_stop_without_drain_fails_every_queued_request(self, small_ln):
        """Regression: nothing queued survives an abrupt stop — every
        pending request is failed, none can block its client forever."""
        server = FusionServer({"ln": InferenceSession(small_ln, AMPERE)})
        reqs = [server.submit("ln", random_feeds(small_ln, seed=i))
                for i in range(3)]
        server.stop(drain=False)
        for req in reqs:
            with pytest.raises(ServerError, match="stopped before dispatch"):
                req.result(timeout=1.0)
        assert server.queue.depth() == 0

    def test_stop_with_drain_on_never_started_server(self, small_ln):
        """drain=True on a server with no workers still leaves nothing
        unanswered: the post-join sweep fails what nobody will serve."""
        server = FusionServer({"ln": InferenceSession(small_ln, AMPERE)})
        req = server.submit("ln", random_feeds(small_ln, seed=0))
        server.stop()                            # drain=True, zero workers
        with pytest.raises(ServerError, match="stopped before dispatch"):
            req.result(timeout=1.0)

    def test_worker_crash_fails_inflight_typed_then_recovers(self,
                                                             small_ln):
        """Regression for the stop()-vs-crash hole: a request on a dying
        worker thread fails promptly with typed WorkerCrashed (never
        hangs until its timeout), the crash is counted, and the restarted
        worker keeps serving."""
        metrics = ServeMetrics()
        session = InferenceSession(small_ln, AMPERE, metrics=metrics)
        with FusionServer({"ln": session}, workers=1,
                          metrics=metrics) as server:
            server.infer("ln", random_feeds(small_ln, seed=0))  # warm
            with faults.registry().armed(
                    {"serve.worker_crash": "fail_n_times(1)"}):
                victim = server.submit("ln",
                                       random_feeds(small_ln, seed=1),
                                       timeout=60.0)
                t0 = time.monotonic()
                with pytest.raises(WorkerCrashed, match="serve-worker"):
                    victim.result(timeout=30.0)
                assert time.monotonic() - t0 < 10.0   # typed, not hung
            assert metrics.get("workers.crashed") == 1
            assert metrics.get("requests.worker_crashed") == 1
            # The same thread re-entered its loop: still serving.
            reply = server.infer("ln", random_feeds(small_ln, seed=2))
            assert reply.outputs and not reply.degraded

    def test_on_done_fires_exactly_once(self, small_ln):
        completions = []
        session = InferenceSession(small_ln, AMPERE)
        with FusionServer({"ln": session}) as server:
            req = server.submit("ln", random_feeds(small_ln, seed=0),
                                on_done=completions.append)
            req.result(timeout=120.0)
        # Redundant completions must not re-fire the hook.
        req.resolve(req.reply)
        assert completions == [req] and req.resolutions == 2

    def test_expired_request_counted_and_reported(self, small_ln):
        """Acceptance: an expired request raises TimeoutError, bumps
        ``requests.expired``, and the report carries p50/p95/p99."""
        metrics = ServeMetrics()
        session = InferenceSession(small_ln, AMPERE, metrics=metrics)
        server = FusionServer({"ln": session}, metrics=metrics)
        # Enqueue before any worker exists, so the deadline reliably
        # passes while the request sits in the queue.
        expired = server.submit("ln", random_feeds(small_ln, seed=0),
                                timeout=0.005)
        time.sleep(0.02)
        server.start()
        with pytest.raises(TimeoutError, match="expired"):
            expired.result(timeout=10.0)
        live = server.infer("ln", random_feeds(small_ln, seed=1))
        server.stop()
        assert not live.degraded
        assert metrics.get("requests.expired") == 1
        report = metrics.report()
        assert "requests.expired" in report
        for needle in ("p50<=", "p95<=", "p99<=", "queue_wait"):
            assert needle in report
