"""Tests for the serving metrics surface."""

import threading

from repro.serve import Histogram, ServeMetrics


class TestHistogram:
    def test_bucketing_and_summary(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.samples == 4
        assert h.total == 14.0
        assert h.mean == 3.5
        assert h.max_seen == 9.0

    def test_quantiles(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(98):
            h.observe(0.5)
        h.observe(3.0)
        h.observe(9.0)
        assert h.quantile(0.50) == 1.0        # bucket upper bound
        assert h.quantile(0.99) == 4.0
        assert h.quantile(1.0) == 9.0         # overflow bucket -> max seen
        assert Histogram().quantile(0.5) == 0.0

    def test_merge(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.samples == 2 and a.counts == [1, 1] and a.max_seen == 2.0


class TestServeMetrics:
    def test_counters_threadsafe(self):
        m = ServeMetrics()

        def bump():
            for _ in range(1000):
                m.inc("x")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.get("x") == 8000

    def test_fallback_reasons_tracked(self):
        m = ServeMetrics()
        m.record_fallback("compile_timeout")
        m.record_fallback("compile_timeout")
        m.record_fallback("compile_failed")
        assert m.get("fallbacks") == 3
        assert m.get("fallbacks.compile_timeout") == 2
        assert m.get("fallbacks.compile_failed") == 1

    def test_report_contains_every_surface(self):
        m = ServeMetrics()
        m.observe_request(0.002)
        m.observe_compile(0.5)
        m.observe_batch(3)
        m.observe_queue_depth(1)
        m.record_fallback("compile_failed")
        report = m.render_report()
        for needle in ("serve-stats", "requests_served", "fallbacks",
                       "request_latency", "compile_latency", "batch_size",
                       "queue_depth", "fallbacks.compile_failed"):
            assert needle in report

    def test_snapshot_is_detached(self):
        m = ServeMetrics()
        m.inc("x")
        snap = m.snapshot()
        m.inc("x")
        assert snap["x"] == 1 and m.get("x") == 2

    def test_snapshot_has_percentiles(self):
        m = ServeMetrics()
        for v in (0.0002, 0.002, 0.02, 0.2):
            m.observe_request(v)
        m.observe_queue_wait(0.001)
        snap = m.snapshot()
        for name in ("request_latency", "compile_latency", "queue_wait",
                     "batch_size", "queue_depth"):
            for q in ("p50", "p95", "p99"):
                assert f"{name}.{q}" in snap
        assert snap["request_latency.p50"] <= snap["request_latency.p95"] \
            <= snap["request_latency.p99"]

    def test_report_has_percentiles_and_queue_wait(self):
        m = ServeMetrics()
        m.observe_request(0.002)
        m.observe_queue_wait(0.0005)
        m.inc("requests.expired")
        report = m.report()
        for needle in ("p50<=", "p95<=", "p99<=", "queue_wait",
                       "requests.expired"):
            assert needle in report

    def test_report_alias(self):
        assert ServeMetrics.report is ServeMetrics.render_report


class TestPrometheus:
    def test_counters_and_histograms_exported(self):
        m = ServeMetrics()
        m.inc("requests.expired", 2)
        m.record_fallback("compile_failed")
        m.observe_request(0.002)
        m.observe_request(0.3)
        text = m.to_prometheus()
        assert "# TYPE repro_requests_expired counter" in text
        assert "repro_requests_expired 2" in text
        assert "repro_fallbacks_compile_failed 1" in text
        assert "# TYPE repro_request_latency histogram" in text
        assert "repro_request_latency_count 2" in text
        assert 'repro_request_latency_bucket{le="+Inf"} 2' in text
        assert text.endswith("\n")

    def test_buckets_cumulative(self):
        m = ServeMetrics()
        for v in (0.00005, 0.0002, 1.8):
            m.observe_request(v)
        lines = [ln for ln in m.to_prometheus().splitlines()
                 if ln.startswith("repro_request_latency_bucket")]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in lines]
        assert counts == sorted(counts)          # monotone non-decreasing
        assert counts[-1] == 3                   # +Inf sees every sample

    def test_custom_prefix(self):
        m = ServeMetrics()
        m.inc("x")
        assert "serve_x 1" in m.to_prometheus(prefix="serve")


class TestGauges:
    def test_shed_rate_derived_from_counters(self):
        m = ServeMetrics()
        assert m.snapshot()["gauge.shed_rate"] == 0.0  # no div-by-zero
        m.inc("requests.submitted", 8)
        m.inc("requests.shed", 2)
        assert m.snapshot()["gauge.shed_rate"] == 0.25
        text = m.to_prometheus()
        assert "# TYPE repro_shed_rate gauge" in text
        assert "repro_shed_rate 0.25" in text

    def test_set_gauge_last_write_wins(self):
        m = ServeMetrics()
        m.set_gauge("breaker_state.ln", 0)
        m.set_gauge("breaker_state.ln", 2)
        assert m.get_gauge("breaker_state.ln") == 2.0
        text = m.to_prometheus()
        assert "# TYPE repro_breaker_state_ln gauge" in text
        assert "repro_breaker_state_ln 2" in text

    def test_breaker_transition_sets_state_gauge(self, small_ln):
        """The session exports its breaker state as a numeric gauge
        (closed=0, half_open=1, open=2) on every transition."""
        from repro.hw import AMPERE
        from repro.serve import InferenceSession

        m = ServeMetrics()
        session = InferenceSession(small_ln, AMPERE, metrics=m)
        session.breaker.record_failure()
        for _ in range(session.breaker.failure_threshold):
            session.breaker.record_failure()
        assert m.get_gauge(f"breaker_state.{small_ln.name}") == 2.0
        assert m.get("breaker.open") == 1
