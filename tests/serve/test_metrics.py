"""Tests for the serving metrics surface."""

import threading

from repro.serve import Histogram, ServeMetrics


class TestHistogram:
    def test_bucketing_and_summary(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.samples == 4
        assert h.total == 14.0
        assert h.mean == 3.5
        assert h.max_seen == 9.0

    def test_quantiles(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(98):
            h.observe(0.5)
        h.observe(3.0)
        h.observe(9.0)
        assert h.quantile(0.50) == 1.0        # bucket upper bound
        assert h.quantile(0.99) == 4.0
        assert h.quantile(1.0) == 9.0         # overflow bucket -> max seen
        assert Histogram().quantile(0.5) == 0.0

    def test_merge(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.samples == 2 and a.counts == [1, 1] and a.max_seen == 2.0


class TestServeMetrics:
    def test_counters_threadsafe(self):
        m = ServeMetrics()

        def bump():
            for _ in range(1000):
                m.inc("x")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.get("x") == 8000

    def test_fallback_reasons_tracked(self):
        m = ServeMetrics()
        m.record_fallback("compile_timeout")
        m.record_fallback("compile_timeout")
        m.record_fallback("compile_failed")
        assert m.get("fallbacks") == 3
        assert m.get("fallbacks.compile_timeout") == 2
        assert m.get("fallbacks.compile_failed") == 1

    def test_report_contains_every_surface(self):
        m = ServeMetrics()
        m.observe_request(0.002)
        m.observe_compile(0.5)
        m.observe_batch(3)
        m.observe_queue_depth(1)
        m.record_fallback("compile_failed")
        report = m.render_report()
        for needle in ("serve-stats", "requests_served", "fallbacks",
                       "request_latency", "compile_latency", "batch_size",
                       "queue_depth", "fallbacks.compile_failed"):
            assert needle in report

    def test_snapshot_is_detached(self):
        m = ServeMetrics()
        m.inc("x")
        snap = m.snapshot()
        m.inc("x")
        assert snap["x"] == 1 and m.get("x") == 2
