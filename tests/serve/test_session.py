"""Tests for InferenceSession: correctness, concurrency, degradation."""

import threading

import numpy as np
import pytest

from repro.hw import AMPERE
from repro.runtime.kernels import execute_graph_reference, random_feeds
from repro.serve import (
    ENGINE_COMPILED,
    ENGINE_INTERPRETER,
    InferenceSession,
    ServeMetrics,
    TieredScheduleCache,
)
from repro.serve.session import SessionError


class TestFusedServing:
    def test_reply_matches_reference(self, small_ln):
        session = InferenceSession(small_ln, AMPERE)
        feeds = random_feeds(small_ln, seed=3)
        reply = session.execute(feeds)
        assert not reply.degraded and reply.reason is None
        expected = execute_graph_reference(small_ln, feeds)
        for name, arr in expected.items():
            np.testing.assert_allclose(reply.outputs[name], arr, atol=1e-9)

    def test_session_is_ready_after_first_request(self, small_ln):
        session = InferenceSession(small_ln, AMPERE)
        assert session.state == "pending"
        session.execute(random_feeds(small_ln, seed=0))
        assert session.state == "ready"
        assert session.info().kernels >= 1

    def test_concurrent_requests_identical_to_reference(self, small_mlp):
        """Acceptance: >=4 threads, every reply equals the reference."""
        session = InferenceSession(small_mlp, AMPERE)
        seeds = list(range(8))
        expected = {
            s: execute_graph_reference(small_mlp,
                                       random_feeds(small_mlp, seed=s))
            for s in seeds
        }
        errors = []

        def client(seed):
            try:
                reply = session.execute(random_feeds(small_mlp, seed=seed))
                for name, arr in expected[seed].items():
                    np.testing.assert_allclose(reply.outputs[name], arr,
                                               atol=1e-9)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(s,)) for s in seeds]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = session.info()
        assert info.requests == len(seeds) and info.degraded_requests == 0

    def test_sessions_share_cache(self, small_ln):
        cache = TieredScheduleCache()
        a = InferenceSession(small_ln, AMPERE, cache=cache, eager=True)
        b = InferenceSession(small_ln, AMPERE, cache=cache, eager=True)
        assert a.schedule is b.schedule       # second session hit the LRU
        assert cache.stats()["compile_misses"] == 1


class TestExecutionEngines:
    def test_default_engine_is_compiled(self, small_ln):
        session = InferenceSession(small_ln, AMPERE)
        assert session.engine == ENGINE_COMPILED
        session.execute(random_feeds(small_ln, seed=0))
        assert session.info().engine == ENGINE_COMPILED

    def test_interpreter_engine_bitwise_matches_compiled(self, small_mha):
        feeds = random_feeds(small_mha, seed=11)
        compiled = InferenceSession(small_mha, AMPERE,
                                    engine=ENGINE_COMPILED)
        interp = InferenceSession(small_mha, AMPERE,
                                  engine=ENGINE_INTERPRETER)
        r_c = compiled.execute(feeds)
        r_i = interp.execute(feeds)
        assert not r_c.degraded and not r_i.degraded
        for name, arr in r_i.outputs.items():
            np.testing.assert_array_equal(r_c.outputs[name], arr)

    def test_unknown_engine_rejected(self, small_ln):
        with pytest.raises(SessionError, match="engine"):
            InferenceSession(small_ln, AMPERE, engine="jit")

    def test_sessions_share_plan_cache(self, small_ln):
        from repro.runtime import PlanCache

        plans = PlanCache()
        a = InferenceSession(small_ln, AMPERE, plan_cache=plans, eager=True)
        b = InferenceSession(small_ln, AMPERE, plan_cache=plans, eager=True)
        feeds = random_feeds(small_ln, seed=1)
        a.execute(feeds)
        b.execute(feeds)
        stats = plans.stats()
        assert stats["misses"] == 1 and stats["hits"] >= 1
        assert a.program is b.program


class TestGracefulDegradation:
    def test_compile_failure_falls_back_to_reference(self, small_ln):
        def broken_compile():
            raise RuntimeError("injected compiler crash")

        metrics = ServeMetrics()
        session = InferenceSession(small_ln, AMPERE, metrics=metrics,
                                   compile_fn=broken_compile)
        feeds = random_feeds(small_ln, seed=5)
        reply = session.execute(feeds)
        assert reply.degraded and reply.reason == "compile_failed"
        assert session.state == "failed"
        assert "injected compiler crash" in session.compile_error
        expected = execute_graph_reference(small_ln, feeds)
        for name, arr in expected.items():
            np.testing.assert_allclose(reply.outputs[name], arr)
        assert metrics.get("fallbacks") == 1
        assert metrics.get("fallbacks.compile_failed") == 1
        assert metrics.get("compile_failures") == 1

    def test_compile_timeout_degrades_then_recovers(self, small_ln):
        from repro.pipeline import compile_for

        release = threading.Event()

        def slow_compile():
            release.wait(10.0)
            schedule, _ = compile_for(small_ln, AMPERE)
            return schedule

        session = InferenceSession(small_ln, AMPERE, compile_fn=slow_compile)
        feeds = random_feeds(small_ln, seed=7)
        reply = session.execute(feeds, timeout=0.05)
        assert reply.degraded and reply.reason == "compile_timeout"
        expected = execute_graph_reference(small_ln, feeds)
        for name, arr in expected.items():
            np.testing.assert_allclose(reply.outputs[name], arr)

        release.set()                          # let compilation finish
        assert session.ensure_compiled(timeout=10.0)
        reply2 = session.execute(feeds)
        assert not reply2.degraded
        for name, arr in expected.items():
            np.testing.assert_allclose(reply2.outputs[name], arr, atol=1e-9)


class TestTuneDBIntegration:
    def test_sessions_share_tuning_campaigns(self, small_mha, tmp_path):
        """Second session over the same workload replays every kernel's
        stored winner: zero cold campaigns, identical schedule."""
        from repro.tune import TuneDB

        m1, m2 = ServeMetrics(), ServeMetrics()
        db_dir = tmp_path / "tunedb"
        s1 = InferenceSession(small_mha, AMPERE, metrics=m1,
                              tune_db=TuneDB(db_dir))
        s1.execute(random_feeds(small_mha, seed=0))
        assert m1.get("tunedb.misses") > 0

        # Fresh session, fresh cache, fresh TuneDB instance on the same
        # directory — only the disk tier carries over.
        s2 = InferenceSession(small_mha, AMPERE, metrics=m2,
                              cache=TieredScheduleCache(metrics=m2),
                              tune_db=TuneDB(db_dir))
        reply = s2.execute(random_feeds(small_mha, seed=1))
        assert not reply.degraded
        assert m2.get("tunedb.hits") > 0
        assert m2.get("tunedb.misses") == 0
        assert m2.get_gauge("tuning.wall_time_s") < \
            m1.get_gauge("tuning.wall_time_s")
        # Same chosen configs = same compiled schedule.
        assert [k.config for k in s2.schedule.kernels] == \
            [k.config for k in s1.schedule.kernels]
        assert s2.info().meta["tunedb"]["disk_entries"] > 0

    def test_tuning_counters_scrapeable(self, small_ln, tmp_path):
        """Satellite: compile-path tuning counters reach to_prometheus."""
        from repro.tune import TuneDB

        metrics = ServeMetrics()
        session = InferenceSession(small_ln, AMPERE, metrics=metrics,
                                   tune_db=TuneDB(tmp_path / "db"))
        session.execute(random_feeds(small_ln, seed=0))
        prom = metrics.to_prometheus()
        assert "repro_tuning_wall_time_s" in prom
        assert "repro_tuning_configs_evaluated" in prom
        assert "repro_tunedb_misses" in prom
