"""Tests for the two-tier (memory LRU + disk) compile cache."""

import threading

import pytest

from repro.core.serialize import ScheduleCache
from repro.hw import AMPERE
from repro.models import layernorm_graph
from repro.pipeline import compile_for
from repro.serve import TieredScheduleCache


def _compiler(graph, calls=None):
    def fn():
        if calls is not None:
            calls.append(threading.get_ident())
        schedule, _ = compile_for(graph, AMPERE)
        return schedule
    return fn


class TestTiers:
    def test_miss_compiles_then_memory_hits(self, small_ln):
        cache = TieredScheduleCache()
        calls = []
        s1 = cache.get_or_compile(small_ln, AMPERE.name,
                                  _compiler(small_ln, calls))
        s2 = cache.get_or_compile(small_ln, AMPERE.name,
                                  _compiler(small_ln, calls))
        assert len(calls) == 1
        assert s1 is s2                       # same live object from the LRU
        stats = cache.stats()
        assert stats["compile_misses"] == 1 and stats["memory_hits"] == 1

    def test_disk_tier_survives_memory_eviction(self, small_ln, tmp_path):
        disk = ScheduleCache(tmp_path)
        cache = TieredScheduleCache(capacity=1, disk=disk)
        other = layernorm_graph(16, 24, name="ln_other")
        calls = []
        cache.get_or_compile(small_ln, AMPERE.name, _compiler(small_ln, calls))
        cache.get_or_compile(other, AMPERE.name, _compiler(other, calls))
        assert len(cache) == 1                # small_ln evicted
        cache.get_or_compile(small_ln, AMPERE.name, _compiler(small_ln, calls))
        assert len(calls) == 2                # reloaded from disk, no compile
        assert cache.stats()["disk_hits"] == 1
        assert cache.stats()["memory_evictions"] >= 1

    def test_different_gpu_is_different_key(self, small_ln):
        from repro.hw import VOLTA
        cache = TieredScheduleCache()
        calls = []
        cache.get_or_compile(small_ln, AMPERE.name, _compiler(small_ln, calls))
        cache.get_or_compile(small_ln, VOLTA.name, _compiler(small_ln, calls))
        assert len(calls) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TieredScheduleCache(capacity=0)


class TestSingleFlight:
    def test_concurrent_cold_misses_compile_once(self, small_ln):
        cache = TieredScheduleCache()
        calls = []
        started = threading.Barrier(6)
        results = []

        def hammer():
            started.wait()
            results.append(cache.get_or_compile(
                small_ln, AMPERE.name, _compiler(small_ln, calls)))

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1                # one campaign for six racers
        assert all(r is results[0] for r in results)

    def test_inflight_registry_does_not_leak(self, small_ln):
        """Regression: the single-flight registry used to keep one lock
        per unique key forever; entries must vanish once the flight
        lands."""
        cache = TieredScheduleCache()
        graphs = [layernorm_graph(16, 24, name=f"ln_{i}") for i in range(5)]
        for graph in graphs:
            cache.get_or_compile(graph, AMPERE.name, _compiler(graph))
            cache.get_or_compile(graph, AMPERE.name, _compiler(graph))
        assert cache.inflight_keys() == 0
        assert cache.stats()["inflight"] == 0

    def test_inflight_empty_after_concurrent_racers(self, small_ln):
        cache = TieredScheduleCache()
        started = threading.Barrier(6)

        def hammer():
            started.wait()
            cache.get_or_compile(small_ln, AMPERE.name, _compiler(small_ln))

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.inflight_keys() == 0

    def test_corrupt_disk_entry_recompiles(self, small_ln, tmp_path):
        disk = ScheduleCache(tmp_path)
        cache = TieredScheduleCache(capacity=1, disk=disk)
        calls = []
        cache.get_or_compile(small_ln, AMPERE.name, _compiler(small_ln, calls))
        # Doctor the on-disk entry and force a memory eviction.
        for path in tmp_path.glob("*.json"):
            path.write_text('{"version": 999}')
        other = layernorm_graph(16, 24, name="ln_other")
        cache.get_or_compile(other, AMPERE.name, _compiler(other, calls))
        restored = cache.get_or_compile(small_ln, AMPERE.name,
                                        _compiler(small_ln, calls))
        assert len(calls) == 3                # recompiled, not crashed
        assert restored.num_kernels >= 1
