"""Parallel compilation must match the serial path bit-for-bit.

Acceptance criterion: the Transformer model program compiled through the
worker pool yields the same chosen configurations and the same simulated
kernel times as ``SpaceFusionCompiler.compile_model``.
"""

import pytest

from repro.hw import AMPERE
from repro.hw.simulator import DeviceSimulator
from repro.models import TransformerConfig, build_transformer_program
from repro.pipeline import compile_model_for, compile_model_parallel_for
from repro.serve import compile_model_parallel, default_max_workers


@pytest.fixture(scope="module")
def tiny_transformer_program():
    cfg = TransformerConfig(name="tiny", num_layers=2, hidden=32, heads=2,
                            intermediate=64)
    return build_transformer_program(cfg, batch=2, seq=8)


@pytest.fixture(scope="module")
def serial_model(tiny_transformer_program):
    return compile_model_for(tiny_transformer_program, AMPERE)


def _assert_models_equal(serial, parallel):
    sim = DeviceSimulator(AMPERE)
    assert len(serial.subprograms) == len(parallel.subprograms)
    for a, b in zip(serial.subprograms, parallel.subprograms):
        assert a.occurrences == b.occurrences
        ka, kb = a.schedule.kernels, b.schedule.kernels
        assert [k.name for k in ka] == [k.name for k in kb]
        for x, y in zip(ka, kb):
            assert x.config == y.config
            assert x.spatial_dims == y.spatial_dims
            assert x.memory_levels == y.memory_levels
            if not x.meta.get("barrier"):
                assert sim.kernel_time(x, x.effective_config()) == \
                    sim.kernel_time(y, y.effective_config())


class TestParallelCompile:
    def test_transformer_matches_serial(self, tiny_transformer_program,
                                        serial_model):
        parallel = compile_model_parallel_for(
            tiny_transformer_program, AMPERE, max_workers=4)
        _assert_models_equal(serial_model, parallel)

    def test_tuning_accounting_matches(self, tiny_transformer_program,
                                       serial_model):
        parallel = compile_model_parallel(
            tiny_transformer_program, AMPERE, max_workers=4)
        assert parallel.stats.configs_evaluated == \
            serial_model.stats.configs_evaluated
        assert parallel.stats.configs_quit_early == \
            serial_model.stats.configs_quit_early
        assert parallel.stats.tuning_wall_time == \
            pytest.approx(serial_model.stats.tuning_wall_time, rel=0, abs=0)
        assert parallel.stats.kernels == serial_model.stats.kernels
        assert parallel.stats.partition_rounds == \
            serial_model.stats.partition_rounds

    def test_single_worker_degenerates_to_serial(self,
                                                 tiny_transformer_program,
                                                 serial_model):
        parallel = compile_model_parallel(
            tiny_transformer_program, AMPERE, max_workers=1)
        _assert_models_equal(serial_model, parallel)

    def test_expanded_schedule_equal_cost(self, tiny_transformer_program,
                                          serial_model):
        from repro.pipeline import simulate_model
        parallel = compile_model_parallel_for(
            tiny_transformer_program, AMPERE, max_workers=3)
        assert simulate_model(parallel, AMPERE).time_s == \
            simulate_model(serial_model, AMPERE).time_s

    def test_default_worker_count_sane(self):
        assert 1 <= default_max_workers() <= 8
