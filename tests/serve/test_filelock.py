"""Tests for the advisory cross-process file lock."""

import multiprocessing
import time

import pytest

from repro.serve import HAVE_FCNTL, FileLock

pytestmark = pytest.mark.skipif(not HAVE_FCNTL,
                                reason="fcntl unavailable on this platform")


def _hold_lock(path, hold_s, acquired_evt, release_evt):
    lock = FileLock(path, timeout_s=5.0)
    assert lock.acquire()
    acquired_evt.set()
    release_evt.wait(hold_s)
    lock.release()


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(tmp_path / "k.lock")
        assert lock.acquire()
        assert lock.held
        lock.release()
        assert not lock.held
        # Reacquirable after release (fresh instance, same path).
        again = FileLock(tmp_path / "k.lock")
        assert again.acquire()
        again.release()

    def test_context_manager_yields_acquired(self, tmp_path):
        with FileLock(tmp_path / "k.lock") as acquired:
            assert acquired

    def test_timeout_when_held_elsewhere(self, tmp_path):
        """A second acquirer in another process times out (False), and
        succeeds once the holder releases."""
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        release = ctx.Event()
        path = tmp_path / "k.lock"
        proc = ctx.Process(target=_hold_lock,
                           args=(path, 30.0, acquired, release))
        proc.start()
        try:
            assert acquired.wait(10.0)
            contender = FileLock(path, timeout_s=0.2, poll_s=0.01)
            t0 = time.monotonic()
            assert not contender.acquire()        # held over there
            assert time.monotonic() - t0 >= 0.15  # actually waited
            release.set()
            proc.join(timeout=10.0)
            late = FileLock(path, timeout_s=5.0)
            assert late.acquire()                 # free after release
            late.release()
        finally:
            release.set()
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()

    def test_crashed_holder_releases_lock(self, tmp_path):
        """The kernel drops an advisory lock when its holder dies — a
        crashed process cannot wedge the fleet."""
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        release = ctx.Event()  # never set: the holder is killed instead
        path = tmp_path / "k.lock"
        proc = ctx.Process(target=_hold_lock,
                           args=(path, 300.0, acquired, release))
        proc.start()
        try:
            assert acquired.wait(10.0)
            proc.terminate()                      # crash the holder
            proc.join(timeout=10.0)
            survivor = FileLock(path, timeout_s=5.0)
            assert survivor.acquire()
            survivor.release()
        finally:
            if proc.is_alive():
                proc.kill()

    def test_release_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "k.lock")
        assert lock.acquire()
        lock.release()
        lock.release()  # no-op, no raise
