"""Tests for the advisory cross-process file lock."""

import multiprocessing
import time

import pytest

from repro.serve import HAVE_FCNTL, FileLock

pytestmark = pytest.mark.skipif(not HAVE_FCNTL,
                                reason="fcntl unavailable on this platform")


def _hold_lock(path, hold_s, acquired_evt, release_evt):
    lock = FileLock(path, timeout_s=5.0)
    assert lock.acquire()
    acquired_evt.set()
    release_evt.wait(hold_s)
    lock.release()


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(tmp_path / "k.lock")
        assert lock.acquire()
        assert lock.held
        lock.release()
        assert not lock.held
        # Reacquirable after release (fresh instance, same path).
        again = FileLock(tmp_path / "k.lock")
        assert again.acquire()
        again.release()

    def test_context_manager_yields_acquired(self, tmp_path):
        with FileLock(tmp_path / "k.lock") as acquired:
            assert acquired

    def test_timeout_when_held_elsewhere(self, tmp_path):
        """A second acquirer in another process times out (False), and
        succeeds once the holder releases."""
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        release = ctx.Event()
        path = tmp_path / "k.lock"
        proc = ctx.Process(target=_hold_lock,
                           args=(path, 30.0, acquired, release))
        proc.start()
        try:
            assert acquired.wait(10.0)
            contender = FileLock(path, timeout_s=0.2, poll_s=0.01)
            t0 = time.monotonic()
            assert not contender.acquire()        # held over there
            assert time.monotonic() - t0 >= 0.15  # actually waited
            release.set()
            proc.join(timeout=10.0)
            late = FileLock(path, timeout_s=5.0)
            assert late.acquire()                 # free after release
            late.release()
        finally:
            release.set()
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()

    def test_crashed_holder_releases_lock(self, tmp_path):
        """The kernel drops an advisory lock when its holder dies — a
        crashed process cannot wedge the fleet."""
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        release = ctx.Event()  # never set: the holder is killed instead
        path = tmp_path / "k.lock"
        proc = ctx.Process(target=_hold_lock,
                           args=(path, 300.0, acquired, release))
        proc.start()
        try:
            assert acquired.wait(10.0)
            proc.terminate()                      # crash the holder
            proc.join(timeout=10.0)
            survivor = FileLock(path, timeout_s=5.0)
            assert survivor.acquire()
            survivor.release()
        finally:
            if proc.is_alive():
                proc.kill()

    def test_release_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "k.lock")
        assert lock.acquire()
        lock.release()
        lock.release()  # no-op, no raise


def _contender(path, barrier, out_q, idx, timeout_s):
    """One racer in the N-way contention test: acquire, note whether it
    waited, hold briefly, release."""
    import time as _time

    lock = FileLock(path, timeout_s=timeout_s, poll_s=0.005)
    barrier.wait(timeout=30.0)
    ok = lock.acquire()
    if ok:
        _time.sleep(0.05)  # hold long enough that others must queue
        lock.release()
    out_q.put({"idx": idx, "acquired": ok, "waited": lock.waited})


class TestFileLockContention:
    """The serialisation guarantees TuneDB single-flight leans on."""

    N = 4

    def test_n_process_contention_all_acquire_in_turn(self, tmp_path):
        """Four processes pile onto one lock: everyone eventually gets
        it, and at least N-1 observed a wait (they queued, not raced)."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(self.N)
        out_q = ctx.Queue()
        path = tmp_path / "k.lock"
        procs = [ctx.Process(target=_contender,
                             args=(path, barrier, out_q, i, 30.0))
                 for i in range(self.N)]
        for p in procs:
            p.start()
        results = []
        try:
            for _ in range(self.N):
                results.append(out_q.get(timeout=60.0))
        finally:
            for p in procs:
                p.join(timeout=10.0)
                if p.is_alive():
                    p.terminate()
        assert all(r["acquired"] for r in results)
        # Holds overlap by construction (barrier start + 50ms hold), so
        # all but the first holder must have waited — `waited` is the
        # signal TuneDB uses to re-check the disk tier before tuning.
        assert sum(r["waited"] for r in results) >= self.N - 1

    def test_stuck_holder_times_out_all_waiters(self, tmp_path):
        """A holder that never releases (alive but wedged) forces every
        contender down the timeout path — acquire() returns False and
        the caller degrades to a duplicate (safe) campaign rather than
        hanging the fleet."""
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        release = ctx.Event()
        path = tmp_path / "k.lock"
        holder = ctx.Process(target=_hold_lock,
                             args=(path, 300.0, acquired, release))
        holder.start()
        try:
            assert acquired.wait(10.0)
            barrier = ctx.Barrier(3)
            out_q = ctx.Queue()
            waiters = [ctx.Process(target=_contender,
                                   args=(path, barrier, out_q, i, 0.3))
                       for i in range(3)]
            for p in waiters:
                p.start()
            results = []
            try:
                for _ in range(3):
                    results.append(out_q.get(timeout=30.0))
            finally:
                for p in waiters:
                    p.join(timeout=10.0)
                    if p.is_alive():
                        p.terminate()
            assert all(not r["acquired"] for r in results)
            assert all(r["waited"] for r in results)
        finally:
            release.set()
            holder.join(timeout=10.0)
            if holder.is_alive():
                holder.kill()
