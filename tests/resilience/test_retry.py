"""Tests for RetryPolicy and CircuitBreaker."""

import pytest

from repro.resilience.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
)


class _Flaky:
    """Callable failing the first ``n`` invocations."""

    def __init__(self, n, exc=RuntimeError):
        self.n = n
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n:
            raise self.exc(f"transient #{self.calls}")
        return "ok"


class TestRetryPolicy:
    def test_first_try_success_no_sleep(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_transient_failure_retried(self):
        fn = _Flaky(2)
        retries = []
        policy = RetryPolicy(max_attempts=3, seed=0)
        result = policy.call(fn, sleep=lambda s: None,
                             on_retry=lambda n, e, d: retries.append(n))
        assert result == "ok"
        assert fn.calls == 3
        assert retries == [1, 2]

    def test_attempts_exhausted_reraises_last(self):
        fn = _Flaky(5)
        policy = RetryPolicy(max_attempts=3, seed=0)
        with pytest.raises(RuntimeError, match="transient #3"):
            policy.call(fn, sleep=lambda s: None)
        assert fn.calls == 3

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=2.0,
                             max_delay_s=0.03, jitter=0.0)
        delays = [policy.delay_for(i) for i in range(4)]
        assert delays == pytest.approx([0.01, 0.02, 0.03, 0.03])

    def test_jitter_is_seeded_and_bounded(self):
        a = RetryPolicy(seed=3, jitter=0.5)
        b = RetryPolicy(seed=3, jitter=0.5)
        sa, sb = [], []
        with pytest.raises(RuntimeError):
            a.call(_Flaky(9), sleep=sa.append)
        with pytest.raises(RuntimeError):
            b.call(_Flaky(9), sleep=sb.append)
        assert sa == sb                      # same seed, same jitter
        for i, d in enumerate(sa):
            full = a.delay_for(i)            # no-rng call: undithered
            assert 0.5 * full <= d <= full

    def test_sleep_budget_stops_retrying(self):
        fn = _Flaky(50)
        policy = RetryPolicy(max_attempts=50, base_delay_s=0.4,
                             max_delay_s=0.4, jitter=0.0,
                             sleep_budget_s=1.0)
        slept = []
        with pytest.raises(RuntimeError):
            policy.call(fn, sleep=slept.append)
        assert sum(slept) <= 1.0
        assert fn.calls == 3                 # 0.4 + 0.4, then budget hit

    def test_non_matching_exception_not_retried(self):
        policy = RetryPolicy(max_attempts=5, retry_on=(ValueError,))
        fn = _Flaky(2, exc=KeyError)
        with pytest.raises(KeyError):
            policy.call(fn, sleep=lambda s: None)
        assert fn.calls == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRetryDeadline:
    """``deadline_s``: an absolute budget no backoff sleep may cross."""

    def test_none_deadline_keeps_legacy_behaviour(self):
        fn = _Flaky(2)
        policy = RetryPolicy(max_attempts=3, seed=0)
        assert policy.call(fn, sleep=lambda s: None,
                           deadline_s=None) == "ok"
        assert fn.calls == 3

    def test_sleep_that_would_cross_deadline_is_skipped(self):
        clock = _Clock()
        clock.now = 100.0
        fn = _Flaky(9)
        capped = []
        slept = []
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.05,
                             jitter=0.0, seed=0)
        # First retry would sleep until 100.05 > 100.02: raise instead,
        # with the deadline hook (not the retry hook) observing it.
        with pytest.raises(RuntimeError, match="transient #1"):
            policy.call(fn, sleep=slept.append, clock=clock,
                        deadline_s=100.02,
                        on_deadline=lambda n, e, d: capped.append((n, d)))
        assert fn.calls == 1
        assert slept == []
        assert capped == [(1, 0.05)]

    def test_far_deadline_never_caps(self):
        clock = _Clock()
        fn = _Flaky(2)
        capped = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01,
                             jitter=0.0, seed=0)
        assert policy.call(fn, sleep=lambda s: clock.__setattr__(
                               "now", clock.now + s),
                           clock=clock, deadline_s=1e9,
                           on_deadline=lambda n, e, d: capped.append(n)
                           ) == "ok"
        assert fn.calls == 3
        assert capped == []

    def test_deadline_mid_chain_caps_remaining_retries(self):
        clock = _Clock()
        fn = _Flaky(9)
        slept = []

        def sleep(s):
            slept.append(s)
            clock.now += s

        policy = RetryPolicy(max_attempts=10, base_delay_s=0.05,
                             multiplier=1.0, jitter=0.0, seed=0)
        # Budget fits two backoffs (0.05 + 0.05 = 0.10 ≤ 0.12); the
        # third would end at 0.15 > 0.12 and must be skipped.
        with pytest.raises(RuntimeError, match="transient #3"):
            policy.call(fn, sleep=sleep, clock=clock, deadline_s=0.12)
        assert fn.calls == 3
        assert slept == pytest.approx([0.05, 0.05])

    def test_on_deadline_is_optional(self):
        clock = _Clock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=1.0,
                             jitter=0.0, seed=0)
        with pytest.raises(RuntimeError):
            policy.call(_Flaky(9), sleep=lambda s: None, clock=clock,
                        deadline_s=0.5)


class TestCircuitBreaker:
    def test_closed_allows(self):
        b = CircuitBreaker()
        assert b.state == CLOSED and b.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED

    def test_half_open_probe_then_close(self):
        clock = _Clock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0,
                           clock=clock)
        b.record_failure()
        assert b.state == OPEN and not b.allow()
        clock.now = 10.5
        assert b.allow()                     # the probe
        assert b.state == HALF_OPEN
        assert not b.allow()                 # only one probe at a time
        b.record_success()
        assert b.state == CLOSED
        assert b.cycles == 1
        assert b.transitions == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_half_open_probe_failure_reopens(self):
        clock = _Clock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                           clock=clock)
        b.record_failure()
        clock.now = 6.0
        assert b.allow()
        b.record_failure()
        assert b.state == OPEN and b.cycles == 0
        clock.now = 20.0
        assert b.allow()                     # a fresh probe later
        b.record_success()
        assert b.state == CLOSED and b.cycles == 1

    def test_transition_callback_sees_every_change(self):
        seen = []
        clock = _Clock()
        b = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                           clock=clock,
                           on_transition=lambda o, n: seen.append((o, n)))
        b.record_failure()
        clock.now = 2.0
        b.allow()
        b.record_success()
        assert seen == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_snapshot(self):
        b = CircuitBreaker(failure_threshold=4)
        b.record_failure()
        snap = b.snapshot()
        assert snap["state"] == CLOSED
        assert snap["consecutive_failures"] == 1
        assert snap["recovery_cycles"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_max_probes=0)
