"""Tests for the failpoint registry: arming, actions, determinism."""

import time

import pytest

from repro.resilience import faults
from repro.resilience.faults import (
    FailpointError,
    FailpointRegistry,
    FaultInjected,
    parse_action,
)


class TestSpecParsing:
    def test_fail_variants(self):
        assert parse_action("fail").prob == 1.0
        assert parse_action("fail(0.25)").prob == 0.25
        assert parse_action("fail(1)").prob == 1.0
        a = parse_action("fail_n_times(3)")
        assert a.remaining == 3 and a.kind == "fail"

    def test_delay_is_milliseconds(self):
        assert parse_action("delay(10)").delay_s == pytest.approx(0.010)
        assert parse_action("delay(0)").delay_s == 0.0

    @pytest.mark.parametrize("bad", [
        "explode", "fail(2)", "fail(-0.5)", "fail_n_times(0)",
        "fail_n_times(1.5)", "delay(-1)", "fail_n_times", "delay",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FailpointError):
            parse_action(bad)


class TestRegistry:
    def test_arm_unknown_name_rejected(self):
        reg = FailpointRegistry()
        with pytest.raises(FailpointError, match="unknown failpoint"):
            reg.arm("nope", "fail")

    def test_disarmed_fire_is_noop(self):
        reg = FailpointRegistry()
        reg.register("x")
        reg.fire("x")                       # nothing armed: passes
        assert not reg.armed_any

    def test_fail_always(self):
        reg = FailpointRegistry()
        reg.register("x")
        reg.arm("x", "fail")
        with pytest.raises(FaultInjected) as exc:
            reg.fire("x")
        assert exc.value.failpoint == "x"

    def test_fail_n_times_exhausts(self):
        reg = FailpointRegistry()
        reg.register("x")
        reg.arm("x", "fail_n_times(2)")
        for _ in range(2):
            with pytest.raises(FaultInjected):
                reg.fire("x")
        reg.fire("x")                       # third evaluation passes
        assert reg.hits() == {"x": 2}

    def test_probabilistic_fail_is_seeded(self):
        def fires(seed):
            reg = FailpointRegistry(seed=seed)
            reg.register("x")
            reg.arm("x", "fail(0.5)")
            outcomes = []
            for _ in range(32):
                try:
                    reg.fire("x")
                    outcomes.append(False)
                except FaultInjected:
                    outcomes.append(True)
            return outcomes

        assert fires(7) == fires(7)
        assert any(fires(7)) and not all(fires(7))

    def test_delay_sleeps(self):
        reg = FailpointRegistry()
        reg.register("x")
        reg.arm("x", "delay(20)")
        t0 = time.perf_counter()
        reg.fire("x")
        assert time.perf_counter() - t0 >= 0.015

    def test_triggered_returns_instead_of_raising(self):
        reg = FailpointRegistry()
        reg.register("x")
        assert reg.triggered("x") is False
        reg.arm("x", "fail_n_times(1)")
        assert reg.triggered("x") is True
        assert reg.triggered("x") is False   # exhausted

    def test_armed_context_restores(self):
        reg = FailpointRegistry()
        reg.register("a")
        reg.register("b")
        with reg.armed({"a": "fail", "b": "delay(1)"}):
            assert reg.armed_any
            with pytest.raises(FaultInjected):
                reg.fire("a")
        assert not reg.armed_any
        reg.fire("a")                        # disarmed again

    def test_armed_context_disarms_on_error(self):
        reg = FailpointRegistry()
        reg.register("a")
        with pytest.raises(RuntimeError):
            with reg.armed({"a": "fail"}):
                raise RuntimeError("boom")
        assert not reg.armed_any


class TestGlobalSites:
    """The module-level hooks the instrumented call sites use."""

    def test_known_sites_registered_on_import(self):
        import repro.core.autotuner      # noqa: F401
        import repro.runtime.compiled    # noqa: F401
        import repro.serve               # noqa: F401

        known = faults.registry().known()
        for name in ("serve.cache.disk_get", "serve.cache.disk_put",
                     "serve.cache.compile", "compile.autotune",
                     "runtime.lower", "runtime.execute", "runtime.poison",
                     "serve.batch"):
            assert name in known, name

    def test_global_fire_zero_cost_when_disarmed(self):
        assert not faults.registry().armed_any
        faults.fire("serve.batch")
        assert faults.triggered("runtime.poison") is False

    def test_global_arm_and_fire(self):
        reg = faults.registry()
        with reg.armed({"serve.batch": "fail_n_times(1)"}):
            with pytest.raises(FaultInjected):
                faults.fire("serve.batch")
            faults.fire("serve.batch")
        faults.fire("serve.batch")
