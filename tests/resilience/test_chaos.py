"""Chaos harness smoke: a full run must hold every invariant."""

import json

import pytest

from repro.resilience import faults
from repro.resilience.chaos import (
    DEFAULT_FAULT_PLAN,
    ChaosError,
    load_fault_plan,
    run_chaos,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """A crashed harness must not leave faults armed for other tests."""
    yield
    faults.registry().disarm()


class TestChaosRun:
    def test_full_run_holds_all_invariants(self, tmp_path):
        report_path = tmp_path / "robustness.json"
        report = run_chaos(seed=0, requests=120,
                           report_path=str(report_path))
        assert report.ok, report.render()
        # The canned plan must actually exercise every mechanism.
        assert report.exercised["compile_retries"] >= 1
        assert report.exercised["lower_retries"] >= 1
        assert report.exercised["breaker_cycles"] >= 1
        assert report.exercised["sheds"] >= 1
        assert report.exercised["quarantines"] >= 1
        assert report.exercised["disk_errors"] >= 1
        # Nothing armed survives the run.
        assert not faults.registry().armed_any
        # The written report is valid JSON with the verdict.
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert data["experiment"] == "chaos"
        assert len(data["invariants"]) >= 8

    def test_run_is_seed_deterministic_on_exercise_counts(self):
        a = run_chaos(seed=5, requests=80)
        b = run_chaos(seed=5, requests=80)
        assert a.ok and b.ok
        for key in ("compile_retries", "lower_retries", "quarantines",
                    "disk_errors", "breaker_cycles"):
            assert a.exercised[key] == b.exercised[key], key

    def test_no_faults_plan_still_serves_correctly(self):
        report = run_chaos(seed=1, requests=60, fault_plan=[])
        # Invariants about *exercising* faults fail by design (nothing
        # was injected), but correctness invariants must hold.
        by_name = {i.name: i for i in report.invariants}
        assert by_name["answered_exactly_once"].ok
        assert by_name["all_answers_correct"].ok
        assert by_name["drains_clean"].ok
        assert not by_name["retry_exercised"].ok

    def test_unknown_failpoint_in_plan_rejected(self):
        with pytest.raises(ChaosError, match="unknown failpoint"):
            run_chaos(seed=0, requests=60, fault_plan=[
                {"failpoint": "no.such.site", "action": "fail",
                 "phase": "steady"}])

    def test_unknown_workload_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos workload"):
            run_chaos(workload="resnet")


class TestFaultPlanIO:
    def test_load_bare_list_and_wrapped(self, tmp_path):
        p1 = tmp_path / "bare.json"
        p1.write_text(json.dumps(DEFAULT_FAULT_PLAN))
        assert load_fault_plan(str(p1)) == DEFAULT_FAULT_PLAN
        p2 = tmp_path / "wrapped.json"
        p2.write_text(json.dumps({"faults": DEFAULT_FAULT_PLAN}))
        assert load_fault_plan(str(p2)) == DEFAULT_FAULT_PLAN

    def test_missing_keys_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps([{"failpoint": "runtime.execute"}]))
        with pytest.raises(ChaosError, match="missing"):
            load_fault_plan(str(p))

    def test_bad_phase_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps([{"failpoint": "runtime.execute",
                                  "action": "fail", "phase": "warp"}]))
        with pytest.raises(ChaosError, match="unknown phase"):
            load_fault_plan(str(p))
