"""Tests for the analytical cost model: the invariants the paper's numbers
rest on (fusion removes intermediate traffic; parallelism and block sizes
matter; launch overheads accumulate)."""

import pytest

from repro.baselines import schedule_unfused_primitive
from repro.core.schedule import ScheduleConfig
from repro.hw import AMPERE, HOPPER, VOLTA, DeviceSimulator, L2State
from repro.models import layernorm_graph, mha_graph
from repro.pipeline import compile_for, simulate


@pytest.fixture(scope="module")
def mha():
    return mha_graph(1, 4, 512, 512, 64)


@pytest.fixture(scope="module")
def fused_mha(mha):
    sched, _ = compile_for(mha, AMPERE)
    return sched


class TestFusionTrafficInvariants:
    def test_fused_moves_less_dram(self, mha, fused_mha):
        fused = simulate(fused_mha, AMPERE)
        unfused = simulate(schedule_unfused_primitive(mha, AMPERE), AMPERE)
        assert fused.dram_bytes < unfused.dram_bytes

    def test_fused_fewer_l1_and_l2_misses(self, mha, fused_mha):
        fused = simulate(fused_mha, AMPERE)
        unfused = simulate(schedule_unfused_primitive(mha, AMPERE), AMPERE)
        assert fused.l1_miss_count < unfused.l1_miss_count
        assert fused.l2_miss_count < unfused.l2_miss_count

    def test_fused_is_faster(self, mha, fused_mha):
        fused = simulate(fused_mha, AMPERE)
        unfused = simulate(schedule_unfused_primitive(mha, AMPERE), AMPERE)
        assert fused.time_s < unfused.time_s

    def test_dram_at_least_compulsory(self, mha, fused_mha):
        """A kernel cannot move less than its unique inputs + outputs."""
        sim = DeviceSimulator(AMPERE)
        kernel = fused_mha.kernels[0]
        graph = kernel.exec_graph
        compulsory = sum(
            graph.tensors[t].nbytes(graph.dims)
            for t in (*graph.input_tensors, *graph.output_tensors))
        counters, _ = sim.kernel_cost(kernel)
        assert counters.dram_bytes >= compulsory

    def test_flops_independent_of_config(self, fused_mha):
        sim = DeviceSimulator(AMPERE)
        kernel = fused_mha.kernels[0]
        flops = set()
        for cfg in kernel.search_space[:4]:
            counters, _ = sim.kernel_cost(kernel, cfg)
            flops.add((counters.flops_tensor, counters.flops_simt))
        assert len(flops) == 1


class TestTimingProperties:
    def test_hopper_faster_than_volta(self, mha):
        times = {}
        for gpu in (VOLTA, AMPERE, HOPPER):
            sched, _ = compile_for(mha, gpu)
            times[gpu.arch] = simulate(sched, gpu).time_s
        assert times["hopper"] < times["ampere"] < times["volta"]

    def test_launch_overhead_accumulates(self, mha):
        unfused = schedule_unfused_primitive(mha, AMPERE,
                                             framework_overhead=False)
        sim = DeviceSimulator(AMPERE)
        eager = sim.program_cost(unfused, cuda_graphs=False)
        graphs = sim.program_cost(unfused, cuda_graphs=True)
        assert graphs.time_s < eager.time_s
        saved = eager.time_s - graphs.time_s
        expected = unfused.num_kernels * (
            AMPERE.kernel_launch_overhead - AMPERE.graph_launch_overhead)
        assert saved == pytest.approx(expected, rel=1e-6)

    def test_dispatch_overhead_meta(self, mha):
        sched = schedule_unfused_primitive(mha, AMPERE)
        sim = DeviceSimulator(AMPERE)
        with_dispatch = sim.program_cost(sched, cuda_graphs=False)
        sched.meta.pop("dispatch_overhead")
        without = sim.program_cost(sched, cuda_graphs=False)
        assert with_dispatch.time_s > without.time_s

    def test_tiny_grid_penalised(self, fused_mha):
        """A one-block launch cannot use the whole device."""
        sim = DeviceSimulator(AMPERE)
        kernel = fused_mha.kernels[0]
        small = ScheduleConfig(block=(("b", 1), ("h", 1), ("m", 512)),
                               tile=64)
        big = ScheduleConfig(block=(("b", 1), ("h", 1), ("m", 32)), tile=64)
        t_small = sim.kernel_time(kernel, small)
        t_big = sim.kernel_time(kernel, big)
        assert t_big < t_small

    def test_manual_efficiency_speeds_compute(self, fused_mha):
        sim = DeviceSimulator(AMPERE)
        kernel = fused_mha.kernels[0]
        base = sim.kernel_time(kernel)
        kernel.meta["efficiency"] = 1.3
        boosted = sim.kernel_time(kernel)
        kernel.meta.pop("efficiency")
        assert boosted <= base

    def test_output_spill_factor_adds_traffic(self, fused_mha):
        sim = DeviceSimulator(AMPERE)
        kernel = fused_mha.kernels[0]
        base, _ = sim.kernel_cost(kernel)
        kernel.meta["output_spill_factor"] = 4.0
        spilled, _ = sim.kernel_cost(kernel)
        kernel.meta.pop("output_spill_factor")
        assert spilled.dram_bytes > base.dram_bytes


class TestL2Residency:
    def test_producer_consumer_hits_l2(self):
        graph = layernorm_graph(256, 256)
        sched = schedule_unfused_primitive(graph, AMPERE)
        sim = DeviceSimulator(AMPERE)
        cold = sum(sim.kernel_cost(k)[0].dram_bytes for k in sched.kernels)
        warm = sim.program_cost(sched).dram_bytes
        assert warm < cold

    def test_l2_state_threading(self):
        graph = layernorm_graph(64, 64)
        sched = schedule_unfused_primitive(graph, AMPERE)
        sim = DeviceSimulator(AMPERE)
        l2 = L2State(AMPERE.l2_capacity)
        sim.kernel_cost(sched.kernels[0], l2=l2)
        out = sched.kernels[0].exec_graph.output_tensors[0]
        assert l2.is_resident(out)


class TestPass2Accounting:
    def test_pass2_rereads_inputs(self):
        """A two-pass LayerNorm schedule reads X twice; forcing a huge M
        where only temporal schedules fit must show the double read."""
        graph = layernorm_graph(64, 2048)
        sched, _ = compile_for(graph, AMPERE)
        kernel = sched.kernels[0]
        sim = DeviceSimulator(AMPERE)
        counters, breakdown = sim.kernel_cost(kernel)
        x_bytes = graph.tensors["X"].nbytes(graph.dims)
        if kernel.plan is not None and kernel.plan.has_pass2:
            assert breakdown.load_bytes >= 2 * x_bytes


class TestCacheHierarchy:
    """The hybrid hierarchy model of the cost-model upgrade."""

    def test_hit_rates_bounded(self, fused_mha):
        sim = DeviceSimulator(AMPERE)
        for cfg in fused_mha.kernels[0].search_space[:6]:
            _c, b = sim.kernel_cost(fused_mha.kernels[0], cfg)
            assert 0.0 <= b.l1_hit_rate <= 1.0
            assert 0.0 <= b.l2_hit_rate <= 1.0
            assert 0.0 <= b.read_hit_rate <= 1.0
            assert 0 <= b.read_dram_bytes <= b.dram_bytes

    def test_counters_consistent(self, fused_mha):
        """l1_fill + l1_hits covers all global traffic; hits never exceed
        accesses at either tier."""
        sim = DeviceSimulator(AMPERE)
        counters, b = sim.kernel_cost(fused_mha.kernels[0])
        assert counters.l1_fill_bytes + counters.l1_hit_bytes \
            == b.load_bytes + b.store_bytes
        assert counters.l2_hit_bytes <= counters.l1_fill_bytes
        assert counters.dram_bytes <= counters.l1_fill_bytes

    def test_small_working_set_hits_l2(self):
        """A kernel whose streamed working set fits in L2 pays only
        compulsory DRAM traffic."""
        graph = layernorm_graph(256, 256)  # ~128KB active set
        sched, _ = compile_for(graph, AMPERE)
        sim = DeviceSimulator(AMPERE)
        counters, b = sim.kernel_cost(sched.kernels[0])
        compulsory = b.store_bytes + sum(t.full_bytes for t in b.traffic)
        assert counters.dram_bytes == compulsory

    def test_overflowing_working_set_misses(self):
        """When the streamed set far exceeds L2, cross-block re-reads
        start missing to DRAM (but no worse than the spill-reuse floor)."""
        graph = mha_graph(8, 16, 4096, 4096, 64)
        sched, _ = compile_for(graph, AMPERE)
        kernel = sched.kernels[0]
        sim = DeviceSimulator(AMPERE)
        _c, b = sim.kernel_cost(kernel)
        compulsory = b.store_bytes + sum(t.full_bytes for t in b.traffic)
        assert b.dram_bytes > compulsory

    def test_per_arch_instruction_weights_shift_simt_cost(self):
        """Volta's weak SFUs make transcendental-heavy kernels relatively
        more expensive than on Hopper (per-arch instruction tables)."""
        graph = layernorm_graph(2048, 2048)
        v_sched, _ = compile_for(graph, VOLTA)
        h_sched, _ = compile_for(graph, HOPPER)
        v = DeviceSimulator(VOLTA).kernel_cost(v_sched.kernels[0])[0]
        h = DeviceSimulator(HOPPER).kernel_cost(h_sched.kernels[0])[0]
        # Same graph → same raw op mix, but Volta's weighted SIMT flops
        # must exceed Hopper's because its per-op weights are larger.
        assert v.flops_simt > h.flops_simt

    def test_mlp_term_limits_bandwidth_at_low_occupancy(self, fused_mha):
        """Little's law: a spec with tiny per-block MLP cannot hide DRAM
        latency, inflating memory time."""
        from dataclasses import replace
        starved = replace(AMPERE, mlp_per_block=1)
        kernel = fused_mha.kernels[0]
        t_norm = DeviceSimulator(AMPERE).kernel_time(kernel)
        t_starved = DeviceSimulator(starved).kernel_time(kernel)
        assert t_starved >= t_norm

    def test_spilled_rereads_route_through_l2(self, fused_mha):
        """Satellite fix: output_spill_factor re-reads go through the
        residency model instead of straight to DRAM — with an L2-resident
        working set the re-read DRAM cost is (nearly) free while the
        store cost is not."""
        sim = DeviceSimulator(AMPERE)
        kernel = fused_mha.kernels[0]
        base_c, base_b = sim.kernel_cost(kernel)
        kernel.meta["output_spill_factor"] = 4.0
        spill_c, spill_b = sim.kernel_cost(kernel)
        kernel.meta.pop("output_spill_factor")
        out_bytes = base_b.store_bytes
        extra_dram = spill_c.dram_bytes - base_c.dram_bytes
        # Extra stores alone are 3x the output; the 3x re-reads add at
        # most their miss fraction on top — strictly less than paying
        # full DRAM for every re-read byte.
        assert extra_dram >= 3 * out_bytes
        assert extra_dram < 6 * out_bytes
        # Re-read loads are visible at the L2 level regardless.
        assert spill_b.load_bytes - base_b.load_bytes == 3 * out_bytes

    def test_fig15_fused_vs_fa_dram_direction(self):
        """Regression pin for Figure 15: FlashAttention-1's spilled
        partial outputs keep its data movement above the fused
        SpaceFusion schedule on the long-sequence MHA case."""
        from repro.baselines import schedule_flash_attention
        graph = mha_graph(2, 8, 4096, 4096, 64)
        fused, _ = compile_for(graph, AMPERE)
        fa1 = schedule_flash_attention(graph, AMPERE, variant="fa1")
        sim = DeviceSimulator(AMPERE)
        fused_dram = sim.program_cost(fused).dram_bytes
        fa1_dram = sim.program_cost(fa1).dram_bytes
        assert fused_dram < fa1_dram
