"""Tests for GPU specs and the L2 residency model."""

import pytest

from repro.hw import AMPERE, ARCHITECTURES, HOPPER, VOLTA, L2State, get_gpu


class TestSpecs:
    def test_three_architectures(self):
        assert set(ARCHITECTURES) == {"volta", "ampere", "hopper"}

    def test_peak_ratio_matches_paper(self):
        """Figure 16(c): FP16 tensor-core peak ratio 1 : 2.79 : 6.75."""
        v = VOLTA.tensor_flops
        assert AMPERE.tensor_flops / v == pytest.approx(2.79, abs=0.05)
        assert HOPPER.tensor_flops / v == pytest.approx(6.75, abs=0.05)

    def test_smem_grows_across_generations(self):
        assert VOLTA.smem_per_block < AMPERE.smem_per_block < HOPPER.smem_per_block

    def test_resource_config_projection(self):
        rc = AMPERE.resource_config()
        assert rc.smem_per_block == AMPERE.smem_per_block
        assert rc.regs_per_block > 0

    def test_get_gpu_by_arch_and_name(self):
        assert get_gpu("volta") is VOLTA
        assert get_gpu("A100") is AMPERE
        with pytest.raises(KeyError):
            get_gpu("pascal")

    def test_graph_launch_cheaper(self):
        for spec in ARCHITECTURES.values():
            assert spec.graph_launch_overhead < spec.kernel_launch_overhead


class TestL2State:
    def test_insert_and_resident(self):
        l2 = L2State(1000)
        l2.insert("a", 100)
        assert l2.is_resident("a")
        assert l2.used_bytes == 100

    def test_oversized_bypasses(self):
        l2 = L2State(1000)
        l2.insert("big", 600)  # > capacity/2
        assert not l2.is_resident("big")

    def test_lru_eviction(self):
        l2 = L2State(1000)
        l2.insert("a", 400)
        l2.insert("b", 400)
        l2.insert("c", 400)  # evicts a
        assert not l2.is_resident("a")
        assert l2.is_resident("b") and l2.is_resident("c")

    def test_touch_refreshes_recency(self):
        l2 = L2State(1000)
        l2.insert("a", 400)
        l2.insert("b", 400)
        l2.touch("a")
        l2.insert("c", 400)  # evicts b, not a
        assert l2.is_resident("a")
        assert not l2.is_resident("b")

    def test_rewrite_updates_size(self):
        l2 = L2State(1000)
        l2.insert("a", 100)
        l2.insert("a", 300)
        assert l2.used_bytes == 300

    def test_invalidate_and_clear(self):
        l2 = L2State(1000)
        l2.insert("a", 100)
        l2.invalidate("a")
        assert not l2.is_resident("a")
        l2.insert("b", 100)
        l2.clear()
        assert l2.used_bytes == 0

    def test_oversized_insert_drops_stale_entry(self):
        l2 = L2State(1000)
        l2.insert("a", 100)
        l2.insert("a", 900)  # now oversized: must not stay resident
        assert not l2.is_resident("a")
