"""Tests for GPU specs and the cache models (L2 residency, granule LRU)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    AMPERE,
    ARCHITECTURES,
    BLACKWELL,
    H200,
    HOPPER,
    PAPER_ARCHITECTURES,
    VOLTA,
    GranuleCache,
    L2State,
    get_gpu,
    streaming_hit_rate,
)


class TestSpecs:
    def test_architecture_presets(self):
        assert set(ARCHITECTURES) == {
            "volta", "ampere", "hopper", "h200", "blackwell"}
        assert PAPER_ARCHITECTURES == ("volta", "ampere", "hopper")
        for arch in PAPER_ARCHITECTURES:
            assert arch in ARCHITECTURES

    def test_peak_ratio_matches_paper(self):
        """Figure 16(c): FP16 tensor-core peak ratio 1 : 2.79 : 6.75."""
        v = VOLTA.tensor_flops
        assert AMPERE.tensor_flops / v == pytest.approx(2.79, abs=0.05)
        assert HOPPER.tensor_flops / v == pytest.approx(6.75, abs=0.05)

    def test_smem_grows_across_generations(self):
        assert VOLTA.smem_per_block < AMPERE.smem_per_block < HOPPER.smem_per_block

    def test_resource_config_projection(self):
        rc = AMPERE.resource_config()
        assert rc.smem_per_block == AMPERE.smem_per_block
        assert rc.regs_per_block > 0

    def test_get_gpu_by_arch_and_name(self):
        assert get_gpu("volta") is VOLTA
        assert get_gpu("A100") is AMPERE
        with pytest.raises(KeyError):
            get_gpu("pascal")

    def test_get_gpu_resolves_new_presets(self):
        assert get_gpu("h200") is H200
        assert get_gpu("H200") is H200
        assert get_gpu("blackwell") is BLACKWELL
        assert get_gpu("B200") is BLACKWELL

    def test_get_gpu_error_names_choices(self):
        with pytest.raises(KeyError, match="blackwell"):
            get_gpu("tesla-k80")

    def test_graph_launch_cheaper(self):
        for spec in ARCHITECTURES.values():
            assert spec.graph_launch_overhead < spec.kernel_launch_overhead

    def test_new_presets_widen_the_sweep(self):
        """H200 keeps Hopper compute class but adds bandwidth; Blackwell
        moves both axes."""
        assert H200.arch == "hopper"
        assert H200.dram_bandwidth > 2 * HOPPER.dram_bandwidth
        assert BLACKWELL.tensor_flops > H200.tensor_flops
        assert BLACKWELL.l2_capacity > H200.l2_capacity

    def test_instruction_weight_tables(self):
        """Per-family tables override the generic weights; unknown kinds
        fall back (1.0 for plain arithmetic)."""
        assert VOLTA.instruction_weight("exp") > \
            HOPPER.instruction_weight("exp")
        assert HOPPER.instruction_weight("exp") > \
            BLACKWELL.instruction_weight("exp")
        for spec in ARCHITECTURES.values():
            assert spec.instruction_weight("add") == 1.0
            assert spec.instruction_weight("exp") >= 1.0


class TestStreamingHitRate:
    def test_fits_entirely(self):
        assert streaming_hit_rate(1000, 4000) == 1.0
        assert streaming_hit_rate(0, 4000) == 1.0

    def test_overflow_decays(self):
        assert streaming_hit_rate(8000, 4000) == pytest.approx(0.5)
        assert streaming_hit_rate(400000, 4000) == pytest.approx(0.01)

    def test_clamped(self):
        assert 0.0 <= streaming_hit_rate(10**12, 4000) <= 1.0


class TestL2State:
    def test_insert_and_resident(self):
        l2 = L2State(1000)
        l2.insert("a", 100)
        assert l2.is_resident("a")
        assert l2.used_bytes == 100

    def test_oversized_bypasses(self):
        l2 = L2State(1000)
        l2.insert("big", 600)  # > capacity/2
        assert not l2.is_resident("big")

    def test_lru_eviction(self):
        l2 = L2State(1000)
        l2.insert("a", 400)
        l2.insert("b", 400)
        l2.insert("c", 400)  # evicts a
        assert not l2.is_resident("a")
        assert l2.is_resident("b") and l2.is_resident("c")

    def test_touch_refreshes_recency(self):
        l2 = L2State(1000)
        l2.insert("a", 400)
        l2.insert("b", 400)
        l2.touch("a")
        l2.insert("c", 400)  # evicts b, not a
        assert l2.is_resident("a")
        assert not l2.is_resident("b")

    def test_rewrite_updates_size(self):
        l2 = L2State(1000)
        l2.insert("a", 100)
        l2.insert("a", 300)
        assert l2.used_bytes == 300

    def test_invalidate_and_clear(self):
        l2 = L2State(1000)
        l2.insert("a", 100)
        l2.invalidate("a")
        assert not l2.is_resident("a")
        l2.insert("b", 100)
        l2.clear()
        assert l2.used_bytes == 0

    def test_oversized_insert_drops_stale_entry(self):
        l2 = L2State(1000)
        l2.insert("a", 100)
        l2.insert("a", 900)  # now oversized: must not stay resident
        assert not l2.is_resident("a")


_L2_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"),
                  st.sampled_from("abcdef"),
                  st.integers(min_value=0, max_value=1500)),
        st.tuples(st.just("touch"), st.sampled_from("abcdef"),
                  st.just(0)),
        st.tuples(st.just("invalidate"), st.sampled_from("abcdef"),
                  st.just(0)),
    ),
    max_size=60,
)


class TestL2StateProperties:
    @settings(max_examples=200, deadline=None)
    @given(ops=_L2_OPS)
    def test_used_bytes_never_exceed_capacity(self, ops):
        """Whatever the insert/touch/invalidate sequence, the byte
        accounting never overflows the capacity and never goes negative."""
        l2 = L2State(1000)
        for op, tensor, nbytes in ops:
            if op == "insert":
                l2.insert(tensor, nbytes)
            elif op == "touch":
                l2.touch(tensor)
            else:
                l2.invalidate(tensor)
            assert 0 <= l2.used_bytes <= l2.capacity

    @settings(max_examples=100, deadline=None)
    @given(ops=_L2_OPS,
           nbytes=st.integers(min_value=501, max_value=10**6))
    def test_oversized_insert_never_resident(self, ops, nbytes):
        """An insert above the residency threshold evicts any prior entry
        for that tensor and never leaves it resident."""
        l2 = L2State(1000)
        for op, tensor, size in ops:
            if op == "insert":
                l2.insert(tensor, size)
        l2.insert("a", nbytes)
        assert not l2.is_resident("a")
        assert l2.used_bytes <= l2.capacity


class TestGranuleCache:
    def test_miss_then_hit(self):
        c = GranuleCache(1000)
        assert not c.access(("t", 0), 400)
        assert c.access(("t", 0), 400)

    def test_lru_eviction(self):
        c = GranuleCache(1000)
        c.access(("t", 0), 400)
        c.access(("t", 1), 400)
        c.access(("t", 2), 400)  # evicts ("t", 0)
        assert not c.access(("t", 0), 400)

    def test_oversized_streams_through(self):
        c = GranuleCache(1000)
        c.access(("small", 0), 400)
        assert not c.access(("huge", 0), 5000)
        assert not c.access(("huge", 0), 5000)  # still a miss
        assert c.access(("small", 0), 400)      # undisturbed

    @settings(max_examples=100, deadline=None)
    @given(keys=st.lists(st.tuples(st.sampled_from("ab"),
                                   st.integers(0, 8)), max_size=80),
           sizes=st.data())
    def test_accounting_invariant(self, keys, sizes):
        c = GranuleCache(1000)
        for key in keys:
            c.access(key, sizes.draw(st.integers(0, 1200)))
            assert 0 <= c._used <= c.capacity
            assert c._used == sum(c._resident.values())
