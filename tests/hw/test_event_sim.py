"""Cross-check: the event-driven simulator vs the analytical cost model."""

import math

import pytest

from repro.hw import AMPERE, VOLTA, DeviceSimulator
from repro.hw.event_sim import EventDrivenSimulator, cross_check
from repro.models import layernorm_graph, mha_graph, mlp_graph
from repro.pipeline import compile_for


def _kernels():
    out = []
    for graph in (mha_graph(2, 8, 512, 512, 64),
                  layernorm_graph(4096, 4096),
                  mlp_graph(6, 8192, 256, 256)):
        sched, _ = compile_for(graph, AMPERE)
        out.extend(sched.kernels)
    return out


@pytest.fixture(scope="module")
def kernels():
    return _kernels()


class TestCrossCheck:
    def test_magnitude_agreement(self, kernels):
        """The two models agree within a small constant factor on every
        compiled kernel."""
        for kernel in kernels:
            analytic, event = cross_check(kernel, AMPERE)
            ratio = event / analytic
            assert 0.3 < ratio < 3.0, (kernel.name, ratio)

    def test_config_ranking_correlates(self, kernels):
        """The auto-tuner consumes *rankings*: the event simulator's best
        configurations must be near the analytical model's best."""
        sim = DeviceSimulator(AMPERE)
        ev = EventDrivenSimulator(AMPERE)
        for kernel in kernels:
            if len(kernel.search_space) < 4:
                continue
            analytic_rank = [c for c, _t in sim.sweep_configs(kernel)]
            event_rank = [c for c, _t in ev.rank_configs(kernel)]
            # The analytical winner sits in the event sim's top third.
            pos = event_rank.index(analytic_rank[0])
            assert pos <= max(2, len(event_rank) // 3)

    def test_waves_counted(self):
        graph = mha_graph(8, 16, 1024, 1024, 64)
        sched, _ = compile_for(graph, AMPERE)
        result = EventDrivenSimulator(AMPERE).simulate_kernel(
            sched.kernels[0])
        grid = sched.kernels[0].grid_size()
        assert result.waves == math.ceil(grid / result.concurrent_blocks)

    def test_more_blocks_more_waves(self, kernels):
        ev = EventDrivenSimulator(AMPERE)
        kernel = kernels[0]
        small = ev.simulate_kernel(kernel, kernel.search_space[0])
        assert small.waves >= 1
        assert small.time_s > 0

    def test_volta_slower_than_ampere(self):
        graph = mha_graph(2, 8, 512, 512, 64)
        a_sched, _ = compile_for(graph, AMPERE)
        v_sched, _ = compile_for(graph, VOLTA)
        t_a = EventDrivenSimulator(AMPERE).simulate_kernel(
            a_sched.kernels[0]).time_s
        t_v = EventDrivenSimulator(VOLTA).simulate_kernel(
            v_sched.kernels[0]).time_s
        assert t_v > t_a

    def test_barrier_kernel_delegates(self):
        from repro.core.compiler import build_barrier_kernel
        from repro.ir import GraphBuilder
        b = GraphBuilder("g")
        x = b.input("X", [("m", 1024)])
        b.barrier("reshape", x, [("a", 2), ("c", 512)], out_name="Y")
        g = b.build()
        from repro.ir.graph import DataflowGraph
        sub = DataflowGraph("g.r", dims=g.dims)
        for t in g.tensors.values():
            sub.tensors[t.name] = t
        sub.ops = list(g.ops)
        kernel = build_barrier_kernel(sub)
        result = EventDrivenSimulator(AMPERE).simulate_kernel(kernel)
        assert result.time_s > 0


class TestEfficiencyAndOverheadParity:
    """Satellite fixes: the event simulator must honour the same manual
    efficiency factor and launch-overhead regime as the analytical model,
    or the two rank hand-tuned-library kernels differently."""

    def test_manual_efficiency_speeds_event_sim(self, kernels):
        ev = EventDrivenSimulator(AMPERE)
        kernel = kernels[0]
        base = ev.simulate_kernel(kernel).time_s
        kernel.meta["efficiency"] = 1.5
        boosted = ev.simulate_kernel(kernel).time_s
        kernel.meta.pop("efficiency")
        assert boosted <= base

    def test_ranking_agrees_with_manual_efficiency(self, kernels):
        """Rank agreement must survive meta['efficiency'] != 1.0 (the
        old event sim dropped the factor from its SIMT rate)."""
        sim = DeviceSimulator(AMPERE)
        ev = EventDrivenSimulator(AMPERE)
        for kernel in kernels:
            if len(kernel.search_space) < 4:
                continue
            kernel.meta["efficiency"] = 0.45
            try:
                analytic_rank = [c for c, _t in sim.sweep_configs(kernel)]
                event_rank = [c for c, _t in ev.rank_configs(kernel)]
            finally:
                kernel.meta.pop("efficiency")
            pos = event_rank.index(analytic_rank[0])
            assert pos <= max(2, len(event_rank) // 3)

    def test_launch_overhead_param_honoured(self, kernels):
        """CUDA-graph replay overhead must reach the event sim: with the
        graph overhead the simulated time drops by exactly the delta."""
        ev = EventDrivenSimulator(AMPERE)
        kernel = kernels[0]
        eager = ev.simulate_kernel(
            kernel, launch_overhead=AMPERE.kernel_launch_overhead).time_s
        graphs = ev.simulate_kernel(
            kernel, launch_overhead=AMPERE.graph_launch_overhead).time_s
        delta = AMPERE.kernel_launch_overhead - AMPERE.graph_launch_overhead
        assert eager - graphs == pytest.approx(delta, rel=1e-9)

    def test_default_overhead_is_eager(self, kernels):
        ev = EventDrivenSimulator(AMPERE)
        kernel = kernels[0]
        default = ev.simulate_kernel(kernel).time_s
        explicit = ev.simulate_kernel(
            kernel, launch_overhead=AMPERE.kernel_launch_overhead).time_s
        assert default == explicit


class TestHierarchyReplay:
    def test_replay_hit_rate_close_to_analytic(self, kernels):
        """The granule replay and the closed-form hit model agree on the
        read hit rate for every compiled kernel."""
        from repro.hw.event_sim import cross_check_hierarchy
        for kernel in kernels:
            r = cross_check_hierarchy(kernel, AMPERE)
            if not r["replayed"]:
                continue
            assert r["hit_rate_delta"] <= 0.15, (kernel.name, r)

    def test_replay_dram_positive_and_bounded(self, kernels):
        ev = EventDrivenSimulator(AMPERE)
        sim = DeviceSimulator(AMPERE)
        for kernel in kernels:
            result = ev.simulate_kernel(kernel)
            _c, b = sim.kernel_cost(kernel)
            assert result.dram_bytes > 0
            # Normalised to the analytical totals, so never far apart.
            assert 0.5 * b.dram_bytes <= result.dram_bytes \
                <= 1.5 * b.dram_bytes
