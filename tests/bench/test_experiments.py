"""Smoke tests for the experiment harness: every table/figure generator
produces well-formed rows with the expected columns and sane values."""

import pytest

from repro.bench import (
    ExperimentResult,
    evaluation_suite,
    fig11a_mlp,
    fig11b_lstm,
    fig12_layernorm,
    fig13_mha,
    fig14_end_to_end,
    fig15_memory_cache,
    fig16a_ablation,
    fig16c_arch_sensitivity,
    geomean,
    table4_mha_breakdown,
    table5_model_compile_times,
    table6_fusion_patterns,
)


class TestReporting:
    def test_result_render(self):
        r = ExperimentResult("figX", "demo", ["a", "b"])
        r.add_row(a=1, b=2.5)
        text = r.render()
        assert "figX" in text and "2.50" in text

    def test_filtered(self):
        r = ExperimentResult("figX", "demo", ["a", "b"])
        r.add_row(a=1, b=2)
        r.add_row(a=2, b=3)
        assert len(r.filtered(a=1)) == 1

    def test_none_rendered_as_dash(self):
        r = ExperimentResult("figX", "demo", ["a"])
        r.add_row(a=None)
        assert "-" in r.render()

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) != geomean([])  # nan


class TestSubgraphExperiments:
    def test_fig11a_speedups_positive(self):
        r = fig11a_mlp(archs=("ampere",), layer_counts=(2, 4))
        assert len(r.rows) == 2
        assert all(row["speedup"] > 0.5 for row in r.rows)

    def test_fig11a_speedup_grows_with_layers(self):
        r = fig11a_mlp(archs=("ampere",), layer_counts=(2, 20))
        sus = r.column("speedup")
        assert sus[1] > sus[0]

    def test_fig11b_columns(self):
        r = fig11b_lstm(archs=("ampere",), hidden_sizes=(128,))
        assert r.rows[0]["speedup_vs_cublas"] > 1.0

    def test_fig12_spacefusion_wins(self):
        r = fig12_layernorm(archs=("ampere",), sizes=(2048,))
        row = r.rows[0]
        assert row["su_pytorch"] > 2.0
        assert row["su_vs_pytorch_op"] > 0.9

    def test_fig13_fa_absent_on_volta(self):
        r = fig13_mha(archs=("volta",), batches=(1,), seqs=(128,))
        row = r.rows[0]
        assert row["su_fa2"] is None  # no Volta build (as in the paper)
        assert row["su_fa1"] is not None

    def test_fig15_unfused_worse_everywhere(self):
        r = fig15_memory_cache("ampere")
        for row in r.filtered(variant="unfused_baseline"):
            assert row["dram_norm"] > 1.0
            assert row["l2_miss_norm"] > 1.0


class TestEndToEndExperiments:
    def test_fig14_row_shape(self):
        r = fig14_end_to_end(archs=("ampere",), models=("bert",),
                             batches=(1,), engines=("pytorch",
                                                    "spacefusion"))
        assert r.rows[0]["su_spacefusion"] > 1.0

    def test_fig14_unsupported_marked_none(self):
        r = fig14_end_to_end(archs=("hopper",), models=("bert",),
                             batches=(1,),
                             engines=("pytorch", "spacefusion",
                                      "bladedisc"))
        assert r.rows[0]["su_bladedisc"] is None

    def test_fig16a_variants_bounded_by_full(self):
        r = fig16a_ablation(arch="ampere", models=("bert",), batches=(1,))
        row = r.rows[0]
        assert row["spacefusion"] == pytest.approx(1.0)
        for variant in ("base_ss", "base_as", "base_ts"):
            assert 0.2 < row[variant] <= 1.01

    def test_fig16c_perf_grows(self):
        r = fig16c_arch_sensitivity(models=("bert",))
        row = r.rows[0]
        assert row["perf_hopper"] > row["perf_ampere"] > 1.0


class TestCompileTimeExperiments:
    def test_table4_tuning_dominates(self):
        r = table4_mha_breakdown("ampere", cases=((8, 256),))
        row = r.rows[0]
        assert row["tuning_s"] > (row["ts_slice_ms"]
                                  + row["enum_cfg_ms"]) / 1e3
        assert row["total_s"] >= row["tuning_s"]

    def test_table5_spacefusion_fastest(self):
        r = table5_model_compile_times("ampere", models=("vit",), seq=128)
        row = r.rows[0]
        assert row["spacefusion_s"] < row["bladedisc_s"]
        assert row["spacefusion_s"] < row["tensorrt_s"]


class TestPatternCensus:
    def test_suite_has_14_instances_9_structures(self):
        suite = evaluation_suite()
        assert len(suite) == 14
        structures = {p.name.split("@")[0] for p in suite}
        assert len(structures) == 9

    def test_table6_ordering(self):
        r = table6_fusion_patterns("ampere")
        counts = {row["compiler"]: row["total"] for row in r.rows}
        assert counts["spacefusion"] >= counts["nnfusion"] \
            >= counts["bladedisc"]
        by = {row["compiler"]: row for row in r.rows}
        # BladeDISC fuses MI-only patterns (section 6.6).
        assert by["bladedisc"]["ci_and_mi"] == 0
        assert by["spacefusion"]["ci_and_mi"] > 0
        # Only SpaceFusion (and the tile-graph compiler, partially) mixes
        # CI and MI ops; its mixed patterns dominate its census.
        assert by["spacefusion"]["ci_and_mi"] > by["spacefusion"]["mi_only"]
