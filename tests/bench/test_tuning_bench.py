"""Tuning-amortization benchmark: the acceptance-criteria assertions."""

import json

from repro.bench import run_tuning_bench


class TestTuningBench:
    def test_warm_db_amortizes_and_preserves_configs(self, tmp_path):
        """The PR's acceptance floor: warm-DB recompile cuts simulated
        tuning wall >=5x, cold guided search beats plain enumeration,
        and every chosen config matches the no-database baseline."""
        report = run_tuning_bench(str(tmp_path / "db"), models=("bert",))
        assert report.configs_identical
        assert report.warm_reduction >= 5.0
        assert report.cold_reduction > 1.0
        assert report.counters.get("tunedb.hits", 0) > 0
        assert report.wall_saved_s > 0.0

    def test_report_roundtrips_and_renders(self, tmp_path):
        report = run_tuning_bench(str(tmp_path / "db"), models=("bert",))
        payload = json.loads(report.to_json())
        assert payload["warm_reduction"] == report.warm_reduction
        assert payload["tunedb"]["disk_entries"] > 0
        text = report.render()
        assert "warm-DB reduction" in text and "bert" in text
