"""The span-derived compile breakdown: consistency with CompileStats.

The Table 4 benchmark and ``repro trace`` both derive their per-phase
breakdown from :func:`repro.bench.compile_time.compile_breakdown_from_trace`
— these tests pin that helper to the compiler's own accounting so the two
surfaces can never drift apart.
"""

import pytest

from repro.baselines.engines import TRITON_JIT_SECONDS
from repro.bench.compile_time import (
    ANALYSIS_PHASES,
    compile_breakdown_from_trace,
    table4_mha_breakdown,
)
from repro.hw import AMPERE
from repro.obs import Tracer, use_tracer
from repro.pipeline import make_compiler


def _traced_compile(graph):
    tracer = Tracer()
    with use_tracer(tracer):
        schedule, stats = make_compiler(AMPERE).compile_graph(graph)
    return tracer, schedule, stats


class TestBreakdownFromTrace:
    def test_phases_match_compile_stats(self, small_mha):
        tracer, schedule, stats = _traced_compile(small_mha)
        breakdown = compile_breakdown_from_trace(tracer, schedule)
        assert set(breakdown) <= set(ANALYSIS_PHASES) | {"tuning"}
        # Analysis phases come from the same timer CompileStats records
        # (timed_phase wraps the span), so they agree closely.
        for phase in ANALYSIS_PHASES:
            if phase in breakdown:
                assert breakdown[phase] == pytest.approx(
                    stats.phase_times.get(phase, 0.0), rel=0.5, abs=2e-3)

    def test_tuning_is_accounted_not_wall_clock(self, small_mha):
        tracer, schedule, stats = _traced_compile(small_mha)
        breakdown = compile_breakdown_from_trace(tracer, schedule)
        jit_configs = sum(len(k.search_space) or 1
                          for k in schedule.kernels
                          if not k.meta.get("barrier"))
        expected = jit_configs * TRITON_JIT_SECONDS + stats.tuning_wall_time
        assert breakdown["tuning"] == pytest.approx(expected, rel=1e-6)

    def test_tuning_dominates(self, small_mha):
        tracer, schedule, _stats = _traced_compile(small_mha)
        breakdown = compile_breakdown_from_trace(tracer, schedule)
        analysis = sum(v for k, v in breakdown.items() if k != "tuning")
        assert breakdown["tuning"] > analysis

    def test_probes_do_not_double_count(self, small_mha):
        """Schedulability probes run slicing inside the partitioning
        phase; their wall time must not surface as slicing spans."""
        tracer, _schedule, stats = _traced_compile(small_mha)
        totals = tracer.phase_totals(category="compile")
        # Span totals track the stats accounting; if probes also emitted
        # spans, the span total would exceed the recorded phase time.
        for phase in ("spatial_slice", "temporal_slice"):
            if phase in totals:
                assert totals[phase] <= stats.phase_times[phase] + 2e-3


class TestTable4:
    def test_small_case_rows(self):
        result = table4_mha_breakdown(cases=((2, 64),), heads=2, head_dim=16)
        (row,) = result.rows
        assert row["workload"] == "MHA(2,64)"
        assert row["tuning_s"] > 0.0
        # The breakdown is exhaustive: the listed columns are a subset of
        # the total (partitioning/smg_build/memory_plan fill the rest).
        listed = (row["ts_slice_ms"] + row["enum_cfg_ms"]
                  + row["ss_slice_ms"]) / 1e3 + row["tuning_s"]
        assert row["total_s"] >= listed
        assert row["total_s"] == pytest.approx(listed, rel=0.05)
        # Tuning dominates, as in the paper's Table 4.
        assert row["tuning_s"] > 0.9 * row["total_s"]
