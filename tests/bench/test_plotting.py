"""Tests for the terminal plotting helpers."""

import pytest

from repro.bench.plotting import bar_chart, comparison_chart, series_chart
from repro.bench.reporting import ExperimentResult


class TestBarChart:
    def test_bars_scale_to_peak(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10          # peak fills the width
        assert lines[0].count("█") == 5

    def test_title_and_units(self):
        out = bar_chart(["a"], [1.5], title="T", unit="ms")
        assert out.startswith("T")
        assert "1.50ms" in out

    def test_none_rendered_as_dash(self):
        out = bar_chart(["a", "b"], [1.0, None])
        assert "-" in out.splitlines()[1]

    def test_half_cell(self):
        out = bar_chart(["a", "b"], [2.0, 1.75], width=4)  # 3.5 cells
        assert "▌" in out.splitlines()[1]

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_ok(self):
        assert bar_chart([], []) == ""


class TestSeriesChart:
    def _result(self):
        r = ExperimentResult("figX", "demo", ["arch", "seq", "su"])
        for arch in ("volta", "ampere"):
            for seq, su in ((128, 2.0), (256, 3.0)):
                r.add_row(arch=arch, seq=seq, su=su)
        return r

    def test_grouped_output(self):
        out = series_chart(self._result(), x="seq", y="su", group_by="arch")
        assert out.count("[arch=") == 2
        assert "128" in out and "256" in out

    def test_ungrouped(self):
        out = series_chart(self._result(), x="seq", y="su")
        assert "figX" in out

    def test_comparison_chart(self):
        r = ExperimentResult("figY", "demo", ["model", "a", "b"])
        r.add_row(model="bert", a=2.0, b=1.0)
        out = comparison_chart(r, "model", ["a", "b"])
        assert "bert" in out and "2.00" in out
