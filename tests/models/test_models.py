"""Tests for the evaluation subgraphs and the Transformer model zoo."""

import pytest

from repro.ir import count_all_to_ones
from repro.models import (
    MODEL_CONFIGS,
    TransformerConfig,
    build_model,
    build_transformer_program,
    layernorm_graph,
    lstm_cell_graph,
    mha_graph,
    mlp_graph,
    rmsnorm_graph,
    softmax_gemm_graph,
    vit_sequence_length,
)


class TestSubgraphBuilders:
    def test_mlp_layer_count(self):
        g = mlp_graph(5, 64, 32, 48)
        assert sum(1 for op in g.ops if op.is_contraction) == 5
        assert len(g.ops) == 15  # matmul + bias + act per layer

    def test_mlp_weight_tensors_marked(self):
        g = mlp_graph(2, 64, 32, 48)
        weights = [t for t in g.tensors.values() if t.is_weight]
        assert len(weights) == 4  # 2 weights + 2 biases

    def test_mlp_output_named(self):
        g = mlp_graph(3, 64, 32, 48)
        assert g.output_tensors == ["Out"]

    def test_lstm_structure(self):
        g = lstm_cell_graph(16, 32)
        assert sum(1 for op in g.ops if op.is_contraction) == 2
        assert set(g.output_tensors) == {"CellOut", "Out"}

    def test_lstm_default_input_size(self):
        g = lstm_cell_graph(16, 32)
        assert g.dims.size("k") == 32

    def test_layernorm_affine_flag(self):
        with_affine = layernorm_graph(8, 16, affine=True)
        without = layernorm_graph(8, 16, affine=False)
        assert len(with_affine.ops) > len(without.ops)

    def test_mha_dims(self):
        g = mha_graph(2, 4, 32, 24, 8)
        assert g.dims.size("b") == 2
        assert g.dims.size("h") == 4
        assert g.dims.size("m") == 32
        assert g.dims.size("l") == 24

    def test_mha_mask_and_scale_ops(self):
        plain = mha_graph(1, 1, 8, 8, 4, masked=False, scaled=False)
        scaled = mha_graph(1, 1, 8, 8, 4, masked=False, scaled=True)
        masked = mha_graph(1, 1, 8, 8, 4, masked=True, scaled=True)
        assert len(scaled.ops) == len(plain.ops) + 1
        assert len(masked.ops) == len(scaled.ops) + 1
        assert "Mask" in masked.input_tensors

    def test_mha_a2o_census(self):
        # Section 2: 4 All-to-Ones in plain MHA.
        assert count_all_to_ones(mha_graph(1, 1, 8, 8, 4, scaled=False)) == 4

    def test_rmsnorm_single_reduction(self):
        assert count_all_to_ones(rmsnorm_graph(8, 16)) == 1

    def test_softmax_gemm_matches_fig2(self):
        g = softmax_gemm_graph(16, 256, 64)
        kinds = [op.kind for op in g.ops]
        assert kinds[-1] == "matmul"
        assert "reduce_max" in kinds and "reduce_sum" in kinds


class TestTransformerPrograms:
    CFG = TransformerConfig(name="tiny", num_layers=2, hidden=64, heads=4,
                            intermediate=128)

    def test_subprogram_sequence(self):
        prog = build_transformer_program(self.CFG, batch=2, seq=16)
        names = [s.graph.name.split(".")[-1] for s in prog.subprograms]
        assert names == ["qkv", "split", "attn", "merge", "proj", "ffn"]

    def test_occurrences_match_layers(self):
        prog = build_transformer_program(self.CFG, batch=2, seq=16)
        assert all(s.occurrences == 2 for s in prog.subprograms)

    def test_barrier_subprograms_are_reshapes(self):
        prog = build_transformer_program(self.CFG, batch=2, seq=16)
        split = prog.subprograms[1].graph
        assert all(op.is_barrier for op in split.ops)
        assert len(split.ops) == 3  # Q, K, V head splits

    def test_cross_attention_adds_subprograms(self):
        cfg = TransformerConfig(name="xdec", num_layers=1, hidden=64,
                                heads=4, intermediate=128, is_decoder=True,
                                cross_attention=True)
        prog = build_transformer_program(cfg, batch=1, seq=8)
        assert len(prog.subprograms) == 8

    def test_decoder_masks_attention(self):
        cfg = TransformerConfig(name="dec", num_layers=1, hidden=64,
                                heads=4, intermediate=128, is_decoder=True)
        prog = build_transformer_program(cfg, batch=1, seq=8)
        attn = prog.subprograms[2].graph
        assert "Mask" in attn.input_tensors

    def test_silu_gated_ffn(self):
        cfg = TransformerConfig(name="gated", num_layers=1, hidden=64,
                                heads=4, intermediate=128, norm="rmsnorm",
                                activation="silu_gated")
        prog = build_transformer_program(cfg, batch=1, seq=8)
        ffn = prog.subprograms[5].graph
        assert sum(1 for op in ffn.ops if op.is_contraction) == 3
        assert any(op.kind == "silu" for op in ffn.ops)

    def test_head_dim(self):
        assert self.CFG.head_dim == 16


class TestModelZoo:
    def test_all_models_buildable(self):
        for name in MODEL_CONFIGS:
            prog = build_model(name, batch=1, seq=64)
            assert prog.subprograms
            assert prog.meta["model"] == name

    def test_vit_sequence_length(self):
        assert vit_sequence_length(224) == 197
        assert vit_sequence_length(768) == 2305

    def test_vit_uses_image_size(self):
        prog = build_model("vit", batch=1, image_size=224)
        assert prog.meta["seq"] == 197

    def test_llama2_structure(self):
        cfg = MODEL_CONFIGS["llama2"]
        assert cfg.num_layers == 32
        assert cfg.hidden == 4096
        assert cfg.heads == 32
        assert cfg.intermediate == 11008
        assert cfg.activation == "silu_gated"

    def test_t5_has_encoder_and_decoder(self):
        prog = build_model("t5", batch=1, seq=32)
        enc = [s for s in prog.subprograms if "t5enc" in s.graph.name]
        dec = [s for s in prog.subprograms if "t5." in s.graph.name]
        assert enc and dec

    def test_albert_dedups_to_bert_like_structure(self):
        prog = build_model("albert", batch=1, seq=64)
        uniq = prog.unique_subprograms()
        assert len(uniq) == 6
        assert all(s.occurrences == 12 for s in uniq)
