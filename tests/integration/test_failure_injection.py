"""Failure injection: prove the correctness checks have teeth.

Each test corrupts one load-bearing piece of the machinery — an update
function, the aggregation order, an initial value — and asserts the fused
result *diverges* from the reference.  If any of these passed, the green
equality tests elsewhere would be vacuous.
"""

import numpy as np
import pytest

from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from repro.core.temporal_slicer import AggregationPlan, ReductionStage, plan_temporal_slice
from repro.core.update_functions import NormFactor, UpdateFunction
from repro.hw import AMPERE
from repro.pipeline import compile_for
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds


def _mha_kernel(small_mha, plan, tile=16):
    smg = build_smg(small_mha)
    return ProgramSchedule("p", [KernelSchedule(
        "k", smg, ("m",), plan,
        config=ScheduleConfig(block=(("m", 32),), tile=tile))])


def _max_err(graph, sched, seed=0):
    feeds = random_feeds(graph, seed=seed)
    ref = execute_graph_reference(graph, feeds)
    env = execute_schedule(sched, feeds)
    out = graph.output_tensors[0]
    return float(np.max(np.abs(env[out] - ref[out])))


class TestUpdateFunctionMutations:
    def test_identity_update_breaks_sum(self, small_mha):
        """Dropping updateSum (plain Simple Aggregate on the dependent
        chain) must produce wrong results — the paper's motivation for
        UTA."""
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        broken = AggregationPlan(
            dim=plan.dim, graph=plan.graph,
            stages=[
                plan.stages[0],
                ReductionStage(plan.stages[1].op_name,
                               plan.stages[1].output, "sum",
                               UpdateFunction(plan.stages[1].output, (), ())),
                plan.stages[2],
            ],
            tile_op_names=plan.tile_op_names,
            pass2_op_names=plan.pass2_op_names)
        err = _max_err(small_mha, _mha_kernel(small_mha, broken))
        assert err > 1e-3

    def test_wrong_factor_sign_breaks(self, small_mha):
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        s = plan.stages[1]
        flipped = UpdateFunction(
            s.output,
            tuple(NormFactor(f.agg, f.func, -f.power)
                  for f in s.update.factors),
            ())
        broken = AggregationPlan(
            dim=plan.dim, graph=plan.graph,
            stages=[plan.stages[0],
                    ReductionStage(s.op_name, s.output, "sum", flipped),
                    plan.stages[2]],
            tile_op_names=plan.tile_op_names,
            pass2_op_names=plan.pass2_op_names)
        err = _max_err(small_mha, _mha_kernel(small_mha, broken))
        # The flipped sign overflows exp(): divergence or outright NaN.
        assert err > 1e-3 or np.isnan(err)

    def test_single_tile_hides_the_mutation(self, small_mha):
        """With one tile the update functions never fire: the mutated plan
        must still be exact — confirming the divergence above really comes
        from cross-tile aggregation."""
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        s = plan.stages[1]
        broken = AggregationPlan(
            dim=plan.dim, graph=plan.graph,
            stages=[plan.stages[0],
                    ReductionStage(s.op_name, s.output, "sum",
                                   UpdateFunction(s.output, (), ())),
                    plan.stages[2]],
            tile_op_names=plan.tile_op_names,
            pass2_op_names=plan.pass2_op_names)
        err = _max_err(small_mha, _mha_kernel(small_mha, broken, tile=80))
        assert err < 1e-9


class TestStageOrderMutations:
    def test_reordered_stages_break(self, small_mha):
        """Evaluating the sum stage before the max stage consumes a stale
        maximum."""
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        reordered = AggregationPlan(
            dim=plan.dim, graph=plan.graph,
            stages=plan.stages,
            tile_op_names=_swap(plan.tile_op_names,
                                plan.stages[0].op_name,
                                plan.stages[1].op_name),
            pass2_op_names=plan.pass2_op_names)
        with pytest.raises(Exception):
            # Either an execution error (missing operand) or divergence.
            err = _max_err(small_mha, _mha_kernel(small_mha, reordered))
            assert err > 1e-3
            raise AssertionError  # noqa: divergence counts as failure too


def _swap(names, a, b):
    out = list(names)
    ia, ib = out.index(a), out.index(b)
    out[ia], out[ib] = out[ib], out[ia]
    return out


class TestModelMutations:
    def test_spill_free_fa2_modelled_faster_than_mutated(self, small_mha):
        """Injecting an output-spill factor into a schedule must slow its
        modelled time — the counters respond to the mutation."""
        from repro.hw import DeviceSimulator
        sched, _ = compile_for(small_mha, AMPERE)
        sim = DeviceSimulator(AMPERE)
        clean = sim.kernel_time(sched.kernels[0])
        sched.kernels[0].meta["output_spill_factor"] = 8.0
        dirty = sim.kernel_time(sched.kernels[0])
        assert dirty >= clean
