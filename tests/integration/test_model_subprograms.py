"""Numerical validation of every model-zoo subprogram.

Each unique subprogram of each zoo model is compiled and executed against
the unfused reference — the closest thing to end-to-end numeric model
validation the barrier-cut program structure allows (the barriers
themselves are plain reshapes, validated separately)."""

import numpy as np
import pytest

from repro.hw import AMPERE
from repro.models import MODEL_CONFIGS, TransformerConfig, build_transformer_program, causal_mask
from repro.pipeline import compile_for
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds

_TINY = {
    "postnorm": TransformerConfig(
        name="tiny_post", num_layers=2, hidden=32, heads=4, intermediate=64,
        norm="layernorm", activation="gelu"),
    "prenorm_gated": TransformerConfig(
        name="tiny_pre", num_layers=2, hidden=32, heads=4, intermediate=48,
        norm="rmsnorm", activation="silu_gated", is_decoder=True,
        pre_norm=True),
    "cross": TransformerConfig(
        name="tiny_cross", num_layers=1, hidden=32, heads=2, intermediate=48,
        norm="rmsnorm", activation="relu", is_decoder=True,
        cross_attention=True),
}


def _feeds_for(graph):
    feeds = random_feeds(graph, seed=7, scale=0.5)
    if "Mask" in feeds:
        dims = graph.tensors["Mask"].shape(graph.dims)
        feeds["Mask"] = causal_mask(*dims)
    return feeds


@pytest.mark.parametrize("cfg_name", sorted(_TINY))
def test_all_subprograms_numerically_correct(cfg_name):
    cfg = _TINY[cfg_name]
    prog = build_transformer_program(cfg, batch=2, seq=8)
    checked = 0
    for sub in prog.unique_subprograms():
        graph = sub.graph
        if any(op.is_barrier for op in graph.ops):
            continue  # layout-only subprograms: no arithmetic to verify
        schedule, _ = compile_for(graph, AMPERE)
        feeds = _feeds_for(graph)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(schedule, feeds)
        for name, expected in ref.items():
            np.testing.assert_allclose(
                env[name], expected, atol=1e-8,
                err_msg=f"{cfg_name}/{graph.name}: {name}")
        checked += 1
    assert checked >= 4


def test_causal_mask_shape_and_content():
    m = causal_mask(4, 4)
    assert m[0, 0] == 1 and m[0, 3] == 0 and m[3, 0] == 1

    decode = causal_mask(1, 8, offset=7)
    assert decode.sum() == 8  # one new token sees the whole cache


@pytest.mark.parametrize("model_name", sorted(MODEL_CONFIGS))
def test_zoo_attention_subprograms_execute(model_name):
    """The attention core of every zoo model, shrunk, runs correctly."""
    cfg = MODEL_CONFIGS[model_name]
    tiny = TransformerConfig(
        name=f"tiny_{model_name}", num_layers=1, hidden=32,
        heads=min(cfg.heads, 4), intermediate=48, norm=cfg.norm,
        activation=cfg.activation, is_decoder=cfg.is_decoder,
        cross_attention=cfg.cross_attention, pre_norm=cfg.pre_norm)
    prog = build_transformer_program(tiny, batch=2, seq=8)
    attn = next(s.graph for s in prog.subprograms
                if s.graph.name.endswith(".attn"))
    schedule, _ = compile_for(attn, AMPERE)
    feeds = _feeds_for(attn)
    ref = execute_graph_reference(attn, feeds)
    env = execute_schedule(schedule, feeds)
    np.testing.assert_allclose(env["AttnOut"], ref["AttnOut"], atol=1e-8)
