"""Integration tests asserting the paper's headline result *shapes*.

Absolute numbers come from the device model, so these tests pin the
qualitative claims the paper makes — who wins, roughly by how much, and
where the crossovers are — with deliberately loose bounds.
"""

import pytest

from repro.baselines import (
    compile_model_with_engine,
    schedule_flash_attention,
    schedule_fused_layernorm,
    schedule_pytorch,
    schedule_unfused_primitive,
)
from repro.hw import AMPERE, HOPPER, VOLTA
from repro.models import build_model, layernorm_graph, mha_graph, mlp_graph
from repro.pipeline import compile_for, simulate, simulate_model


def _speedup(graph, gpu, baseline_schedule):
    fused, _ = compile_for(graph, gpu)
    return (simulate(baseline_schedule, gpu).time_s
            / simulate(fused, gpu).time_s)


class TestSubgraphClaims:
    def test_mha_beats_pytorch_substantially(self):
        """Section 6.1: up to 10.35x / average 5.40x over PyTorch."""
        graph = mha_graph(1, 16, 1024, 1024, 64)
        su = _speedup(graph, AMPERE, schedule_pytorch(graph, AMPERE))
        assert su > 2.0

    def test_mha_comparable_to_flash_attention_2(self):
        """Section 6.1: comparable performance to FlashAttention 2."""
        graph = mha_graph(32, 16, 1024, 1024, 64)
        fused, _ = compile_for(graph, AMPERE)
        sf = simulate(fused, AMPERE).time_s
        fa2 = simulate(schedule_flash_attention(graph, AMPERE, "fa2"),
                       AMPERE).time_s
        assert 0.5 < fa2 / sf < 2.5

    def test_fa2_beats_fa1(self):
        """FlashAttention-2 removes FA-1's output spills."""
        graph = mha_graph(32, 16, 2048, 2048, 64)
        fa1 = simulate(schedule_flash_attention(graph, AMPERE, "fa1"),
                       AMPERE).time_s
        fa2 = simulate(schedule_flash_attention(graph, AMPERE, "fa2"),
                       AMPERE).time_s
        assert fa2 < fa1

    def test_layernorm_beats_pytorch(self):
        """Section 6.1: average 7.25x over unfused PyTorch."""
        graph = layernorm_graph(4096, 4096)
        su = _speedup(graph, AMPERE,
                      schedule_unfused_primitive(graph, AMPERE,
                                                 efficiency=1.0))
        assert su > 3.0

    def test_layernorm_at_least_matches_fused_baselines(self):
        graph = layernorm_graph(4096, 4096)
        fused, _ = compile_for(graph, AMPERE)
        sf = simulate(fused, AMPERE).time_s
        for variant in ("pytorch_op", "apex", "ln_triton"):
            t = simulate(schedule_fused_layernorm(graph, AMPERE, variant),
                         AMPERE).time_s
            assert t / sf > 0.9

    def test_mlp_fusion_wins_at_small_widths(self):
        """Footnote 3: multi-layer MLP fusion pays off for N,K <= 256."""
        from repro.baselines import schedule_cublaslt
        graph = mlp_graph(8, 8192, 256, 256)
        su = _speedup(graph, AMPERE, schedule_cublaslt(graph, AMPERE))
        assert su > 1.1

    def test_fused_mlp_is_single_kernel_at_256(self):
        graph = mlp_graph(20, 8192, 256, 256)
        sched, _ = compile_for(graph, AMPERE)
        assert sched.num_kernels == 1


class TestMemoryClaims:
    def test_mha_traffic_reduction_order_of_magnitude(self):
        """Section 6.3: ~19x average data-movement reduction for MHA."""
        graph = mha_graph(32, 16, 1024, 1024, 64)
        fused, _ = compile_for(graph, AMPERE)
        sf = simulate(fused, AMPERE)
        unfused = simulate(schedule_unfused_primitive(graph, AMPERE), AMPERE)
        assert unfused.dram_bytes / sf.dram_bytes > 8

    def test_ln_traffic_reduction_smaller_than_mha(self):
        """Section 6.3: LN's reduction (5.25x) is smaller than MHA's
        (18.98x) because LN has no quadratic intermediate."""
        ln = layernorm_graph(4096, 4096)
        mha = mha_graph(32, 16, 1024, 1024, 64)
        ratios = {}
        for name, graph in (("ln", ln), ("mha", mha)):
            fused, _ = compile_for(graph, AMPERE)
            sf = simulate(fused, AMPERE)
            unf = simulate(schedule_unfused_primitive(graph, AMPERE), AMPERE)
            ratios[name] = unf.dram_bytes / sf.dram_bytes
        assert ratios["mha"] > ratios["ln"]


class TestEndToEndClaims:
    @pytest.fixture(scope="class")
    def bert(self):
        return build_model("bert", batch=1, seq=512)

    def _time(self, prog, gpu, engine):
        model = compile_model_with_engine(prog, gpu, engine)
        return simulate_model(model, gpu,
                              cuda_graphs=engine != "pytorch").time_s

    def test_spacefusion_beats_pytorch_end_to_end(self, bert):
        assert self._time(bert, AMPERE, "pytorch") \
            / self._time(bert, AMPERE, "spacefusion") > 2.0

    def test_spacefusion_beats_bladedisc(self, bert):
        """Section 6.2: average 2.27x over BladeDISC."""
        assert self._time(bert, AMPERE, "bladedisc") \
            / self._time(bert, AMPERE, "spacefusion") > 1.05

    def test_spacefusion_beats_kernl(self, bert):
        """Section 6.2: average 1.34x over Kernl."""
        assert self._time(bert, AMPERE, "kernl") \
            / self._time(bert, AMPERE, "spacefusion") > 1.0

    def test_llama2_gains_smaller_than_bert(self):
        """Section 6.2: Llama2's larger weights blunt the speedups."""
        sus = {}
        for name in ("bert", "llama2"):
            prog = build_model(name, batch=1, seq=512)
            sus[name] = (self._time(prog, AMPERE, "pytorch")
                         / self._time(prog, AMPERE, "spacefusion"))
        assert sus["llama2"] < sus["bert"]

    def test_speedup_grows_with_architecture(self):
        """Figure 16(c): newer architectures see larger speedups."""
        prog = build_model("bert", batch=1, seq=512)
        su = {}
        for gpu in (VOLTA, HOPPER):
            su[gpu.arch] = (self._time(prog, gpu, "pytorch")
                            / self._time(prog, gpu, "spacefusion"))
        assert su["hopper"] > su["volta"]


class TestWelderComparison:
    def test_welder_fails_long_sequence_mha(self):
        """Section 6.2: NNFusion fails to fuse MHA at long sequence
        lengths; SpaceFusion's temporal slicing keeps one kernel."""
        from repro.core.compiler import FusionOptions
        graph = mha_graph(1, 4, 4096, 4096, 64)
        sf, _ = compile_for(graph, VOLTA)
        welder, _ = compile_for(graph, VOLTA, FusionOptions(enable_uta=False))
        assert sf.num_kernels == 1
        assert welder.num_kernels > 1

    def test_spacefusion_at_least_matches_welder(self):
        from repro.core.compiler import FusionOptions
        graph = mha_graph(2, 8, 2048, 2048, 64)
        sf, _ = compile_for(graph, VOLTA)
        welder, _ = compile_for(graph, VOLTA, FusionOptions(enable_uta=False))
        assert simulate(sf, VOLTA).time_s <= simulate(welder, VOLTA).time_s
