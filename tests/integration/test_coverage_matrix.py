"""Coverage matrices: every model x engine x architecture combination the
paper's Figure 14 spans must compile, simulate, and behave sanely."""

import pytest

from repro.baselines import (
    ENGINES,
    compile_model_with_engine,
    engine_supported,
)
from repro.hw import ARCHITECTURES
from repro.models import MODEL_CONFIGS, build_model
from repro.pipeline import compile_model_for, simulate_model

_SMALL_SEQ = 64


@pytest.mark.parametrize("model_name", sorted(MODEL_CONFIGS))
@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_spacefusion_compiles_every_model_every_arch(model_name, arch):
    gpu = ARCHITECTURES[arch]
    program = build_model(model_name, batch=1, seq=_SMALL_SEQ)
    compiled = compile_model_for(program, gpu)
    counters = simulate_model(compiled, gpu)
    assert counters.time_s > 0
    assert counters.kernel_launches > 0
    for sub in compiled.subprograms:
        for kernel in sub.schedule.kernels:
            if not kernel.meta.get("barrier"):
                assert kernel.config is not None


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_every_engine_every_arch(engine, arch):
    gpu = ARCHITECTURES[arch]
    if not engine_supported(engine, gpu):
        pytest.skip(f"{engine} unsupported on {arch} (as in the paper)")
    program = build_model("bert", batch=1, seq=_SMALL_SEQ)
    model = compile_model_with_engine(program, gpu, engine)
    counters = simulate_model(model, gpu, cuda_graphs=engine != "pytorch")
    assert counters.time_s > 0
    assert counters.dram_bytes > 0


@pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
def test_spacefusion_never_slower_than_eager(arch):
    gpu = ARCHITECTURES[arch]
    program = build_model("bert", batch=1, seq=_SMALL_SEQ)
    sf = simulate_model(
        compile_model_with_engine(program, gpu, "spacefusion"), gpu)
    eager = simulate_model(
        compile_model_with_engine(program, gpu, "pytorch"), gpu,
        cuda_graphs=False)
    assert sf.time_s < eager.time_s


@pytest.mark.parametrize("batch", [1, 4, 32])
def test_batch_scaling_monotone(batch):
    """More batch means more work: end-to-end time grows with batch."""
    gpu = ARCHITECTURES["ampere"]
    program = build_model("bert", batch=batch, seq=_SMALL_SEQ)
    compiled = compile_model_for(program, gpu)
    time_s = simulate_model(compiled, gpu).time_s
    if not hasattr(test_batch_scaling_monotone, "_prev"):
        test_batch_scaling_monotone._prev = {}
    prev = test_batch_scaling_monotone._prev
    for other_batch, other_time in prev.items():
        if other_batch < batch:
            assert time_s > other_time
    prev[batch] = time_s


def test_dram_traffic_nonnegative_everywhere():
    gpu = ARCHITECTURES["ampere"]
    for model_name in ("bert", "llama2"):
        program = build_model(model_name, batch=1, seq=_SMALL_SEQ)
        compiled = compile_model_for(program, gpu)
        counters = simulate_model(compiled, gpu)
        assert counters.dram_bytes > 0
        assert counters.l1_fill_bytes >= counters.dram_bytes * 0.1
