"""Cross-validation: the analytical traffic model vs traced execution.

The experiments' headline quantities (data movement, cache misses) come
from the structural cost model.  Here we *run* the same schedules under the
tracing executor and require the model's global-load accounting to match
what the blocks actually fetched — the reproduction's internal consistency
guarantee.
"""

import numpy as np
import pytest

from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from repro.core.temporal_slicer import plan_temporal_slice
from repro.hw import AMPERE, DeviceSimulator
from repro.models import layernorm_graph, mha_graph, mlp_graph
from repro.pipeline import compile_for
from repro.runtime.kernels import execute_graph_reference, random_feeds
from repro.runtime.tracing import TracingExecutor, trace_program


def _traced_vs_modeled(graph, schedule, seed=0):
    sim = DeviceSimulator(AMPERE)
    feeds = random_feeds(graph, seed=seed)
    env, traces = trace_program(schedule, feeds)
    results = []
    for kernel in schedule.kernels:
        trace = traces[kernel.name]
        _counters, breakdown = sim.kernel_cost(kernel)
        results.append((kernel, trace, breakdown))
    return env, results


class TestTrafficModelAgreement:
    def test_mha_loads_match_exactly(self, small_mha):
        """Divisible blocks/tiles: the model's load accounting must equal
        the traced byte count exactly."""
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", 32),), tile=16))
        sched = ProgramSchedule("p", [kernel])
        # Use fp64 trace but compare element counts scaled to fp16 bytes,
        # matching the model's dtype accounting.
        _env, results = _traced_vs_modeled(small_mha, sched)
        _kernel, trace, breakdown = results[0]
        modeled_loads = breakdown.load_bytes
        assert trace.load_bytes == modeled_loads

    def test_layernorm_two_pass_loads_match(self, small_ln):
        smg = build_smg(small_ln)
        plan = plan_temporal_slice(smg, "n")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", 8),), tile=36))
        sched = ProgramSchedule("p", [kernel])
        _env, results = _traced_vs_modeled(small_ln, sched)
        _kernel, trace, breakdown = results[0]
        assert trace.load_bytes == breakdown.load_bytes

    def test_ragged_blocks_match_exactly(self, small_mha):
        """Indivisible blocks/tiles: sliced dimensions partition exactly
        (edge blocks read only the remainder), so the model's accounting
        is byte-exact on ragged grids too — not merely an upper bound."""
        smg = build_smg(small_mha)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", 28),), tile=24))
        sched = ProgramSchedule("p", [kernel])
        _env, results = _traced_vs_modeled(small_mha, sched)
        _kernel, trace, breakdown = results[0]
        assert trace.load_bytes == breakdown.load_bytes

    def test_compiled_mlp_traffic_agrees(self, small_mlp):
        sched, _ = compile_for(small_mlp, AMPERE)
        _env, results = _traced_vs_modeled(small_mlp, sched)
        for kernel, trace, breakdown in results:
            assert trace.load_bytes <= breakdown.load_bytes
            assert trace.load_bytes >= 0.5 * breakdown.load_bytes

    def test_ragged_layernorm_matches_exactly(self, small_ln):
        """Indivisible row-block and temporal tile on the two-pass
        LayerNorm; the remainder blocks must not be over-counted."""
        smg = build_smg(small_ln)
        plan = plan_temporal_slice(smg, "n")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", 7),), tile=25))
        sched = ProgramSchedule("p", [kernel])
        _env, results = _traced_vs_modeled(small_ln, sched)
        _kernel, trace, breakdown = results[0]
        assert trace.load_bytes == breakdown.load_bytes

    def test_ragged_o2a_duplication_matches_exactly(self):
        """One-to-All duplication on an indivisible grid: K/V are
        re-fetched ceil(64/24) = 3 times, and the whole kernel's modeled
        loads equal the traced bytes."""
        graph = mha_graph(1, 1, 64, 32, 16, scaled=False)
        smg = build_smg(graph)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule(
            "k", smg, ("b", "h", "m"), plan,
            config=ScheduleConfig(
                block=(("b", 1), ("h", 1), ("m", 24)), tile=32))
        sched = ProgramSchedule("p", [kernel])
        feeds = random_feeds(graph, seed=0)
        _env, traces = trace_program(sched, feeds)
        trace = traces["k"]
        k_bytes = graph.tensors["K"].nbytes(graph.dims)
        assert trace.loads_by_tensor["K"] == 3 * k_bytes  # ceil(64/24)
        _counters, breakdown = DeviceSimulator(AMPERE).kernel_cost(kernel)
        assert trace.load_bytes == breakdown.load_bytes

    def test_o2a_duplication_visible_in_trace(self):
        """The trace must show K/V re-fetched once per m-block — the
        One-to-All duplication the cost model charges."""
        graph = mha_graph(1, 1, 64, 32, 16, scaled=False)
        smg = build_smg(graph)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule(
            "k", smg, ("b", "h", "m"), plan,
            config=ScheduleConfig(
                block=(("b", 1), ("h", 1), ("m", 16)), tile=32))
        sched = ProgramSchedule("p", [kernel])
        feeds = random_feeds(graph, seed=0)
        _env, traces = trace_program(sched, feeds)
        trace = traces["k"]
        k_bytes = graph.tensors["K"].nbytes(graph.dims)
        assert trace.loads_by_tensor["K"] == 4 * k_bytes  # 64/16 m-blocks

    def test_traced_execution_still_correct(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        feeds = random_feeds(small_mha, seed=7)
        env, _traces = trace_program(sched, feeds)
        ref = execute_graph_reference(small_mha, feeds)
        np.testing.assert_allclose(env["Out"], ref["Out"], atol=1e-9)

    def test_store_bytes_counted(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        feeds = random_feeds(small_mha, seed=0)
        _env, traces = trace_program(sched, feeds)
        out_bytes = small_mha.tensors["Out"].nbytes(small_mha.dims)
        assert sum(t.store_bytes for t in traces.values()) >= out_bytes


class TestBlockInvariantHoisting:
    def test_q_loaded_once_per_block(self):
        """Q (no temporal extent) is hoisted out of the tile loop: traced
        Q traffic equals its full size times the number of passes, not
        times the tile count."""
        graph = mha_graph(1, 1, 32, 64, 8, scaled=False)
        smg = build_smg(graph)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule(
            "k", smg, ("b", "h", "m"), plan,
            config=ScheduleConfig(
                block=(("b", 1), ("h", 1), ("m", 32)), tile=8))
        feeds = random_feeds(graph, seed=0)
        _env, traces = trace_program(ProgramSchedule("p", [kernel]), feeds)
        q_bytes = graph.tensors["Q"].nbytes(graph.dims)
        assert traces["k"].loads_by_tensor["Q"] == q_bytes
