"""Tests for operator construction, validation, and dependency queries."""

import pytest

from repro.ir.ops import (
    Op,
    ceil_div,
    make_barrier,
    make_binary,
    make_matmul,
    make_reduce,
    make_scalar,
    make_unary,
    pow2_floor,
    pow2_range,
    transcendental_weight,
)
from repro.ir.tensor import DimRegistry


@pytest.fixture
def reg():
    r = DimRegistry()
    for name, size in (("m", 8), ("n", 6), ("k", 4)):
        r.define(name, size)
    return r


class TestMatmul:
    def test_construction(self):
        op = make_matmul("mm", "A", ("m", "k"), "B", ("n", "k"),
                         "C", ("m", "n"), "k")
        assert op.kind == "matmul"
        assert op.reduce_dims == ("k",)
        assert op.reduce_kind == "sum"
        assert op.iter_dims == ("m", "n", "k")

    def test_is_contraction_and_reduction(self):
        op = make_matmul("mm", "A", ("m", "k"), "B", ("n", "k"),
                         "C", ("m", "n"), "k")
        assert op.is_contraction
        assert op.is_reduction
        assert not op.is_elementwise

    def test_broadcast_dims_per_operand(self):
        op = make_matmul("mm", "A", ("m", "k"), "B", ("n", "k"),
                         "C", ("m", "n"), "k")
        # A lacks n: reused along n; B lacks m: reused along m.
        assert op.broadcast_dims_of_input(0) == ("n",)
        assert op.broadcast_dims_of_input(1) == ("m",)

    def test_reduce_dim_in_output_raises(self):
        with pytest.raises(ValueError, match="also in output"):
            make_matmul("mm", "A", ("m", "k"), "B", ("n", "k"),
                        "C", ("m", "k"), "k")

    def test_operand_missing_reduce_dim_raises(self):
        with pytest.raises(ValueError, match="lacks reduce dim"):
            make_matmul("mm", "A", ("m", "n"), "B", ("n", "k"),
                        "C", ("m", "n"), "k")

    def test_flops_counts_fma(self, reg):
        op = make_matmul("mm", "A", ("m", "k"), "B", ("n", "k"),
                         "C", ("m", "n"), "k")
        assert op.flops(reg) == 2 * 8 * 6 * 4

    def test_batched_matmul(self):
        op = make_matmul("mm", "A", ("m", "n", "k"), "B", ("m", "n", "k"),
                         "C", ("m", "n"), "k")
        assert op.broadcast_dims_of_input(0) == ()


class TestReduce:
    def test_reduce_sum(self):
        op = make_reduce("r", "sum", "X", ("m", "n"), "Y", "n")
        assert op.kind == "reduce_sum"
        assert op.output_axes == ("m",)
        assert op.reduce_dims == ("n",)

    @pytest.mark.parametrize("kind", ["sum", "max", "min", "mean"])
    def test_all_kinds(self, kind):
        op = make_reduce("r", kind, "X", ("m", "n"), "Y", "n")
        assert op.reduce_kind == kind

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown reduce kind"):
            make_reduce("r", "prod", "X", ("m", "n"), "Y", "n")

    def test_dim_not_axis_raises(self):
        with pytest.raises(ValueError, match="not an axis"):
            make_reduce("r", "sum", "X", ("m", "n"), "Y", "k")

    def test_reduce_flops(self, reg):
        op = make_reduce("r", "sum", "X", ("m", "n"), "Y", "n")
        assert op.flops(reg) == 8 * 6


class TestElementwise:
    def test_unary(self):
        op = make_unary("e", "exp", "X", ("m", "n"), "Y")
        assert op.is_elementwise
        assert not op.is_reduction

    def test_unknown_unary_raises(self):
        with pytest.raises(ValueError, match="unknown unary"):
            make_unary("e", "frobnicate", "X", ("m",), "Y")

    def test_binary_broadcast(self):
        op = make_binary("b", "sub", "X", ("m", "n"), "Mu", ("m",),
                         "Y", ("m", "n"))
        assert op.has_broadcast
        assert op.broadcast_dims_of_input(1) == ("n",)
        assert not op.is_elementwise  # one operand is broadcast

    def test_binary_same_shape_is_elementwise(self):
        op = make_binary("b", "add", "X", ("m", "n"), "Y", ("m", "n"),
                         "Z", ("m", "n"))
        assert op.is_elementwise

    def test_unknown_binary_raises(self):
        with pytest.raises(ValueError, match="unknown binary"):
            make_binary("b", "xor", "X", ("m",), "Y", ("m",), "Z", ("m",))

    def test_scalar_op(self):
        op = make_scalar("s", "mul", "X", ("m",), "Y", 0.5)
        assert op.kind == "scalar_mul"
        assert op.attrs["scalar"] == 0.5

    def test_unknown_scalar_kind_raises(self):
        with pytest.raises(ValueError, match="unknown scalar"):
            make_scalar("s", "mod", "X", ("m",), "Y", 2.0)


class TestBarrier:
    def test_reshape_is_barrier(self):
        op = make_barrier("r", "reshape", "X", ("m", "n"), "Y", ("k",))
        assert op.is_barrier
        assert op.flops(DimRegistry()) == 0

    def test_unknown_barrier_raises(self):
        with pytest.raises(ValueError, match="unknown barrier"):
            make_barrier("r", "melt", "X", ("m",), "Y", ("m",))


class TestOpValidation:
    def test_input_dims_outside_iteration_space(self):
        with pytest.raises(ValueError, match="outside the iteration space"):
            Op(name="bad", kind="add", inputs=("A", "B"), output="C",
               input_axes=(("m", "z"), ("m", "n")), output_axes=("m", "n"),
               iter_dims=("m", "n"))

    def test_reduce_dims_mismatch(self):
        with pytest.raises(ValueError, match="do not match"):
            Op(name="bad", kind="reduce_sum", inputs=("A",), output="C",
               input_axes=(("m", "n"),), output_axes=("m",),
               iter_dims=("m", "n"), reduce_dims=(), reduce_kind="sum")

    def test_reduce_requires_kind(self):
        with pytest.raises(ValueError, match="needs a reduce_kind"):
            Op(name="bad", kind="reduce_sum", inputs=("A",), output="C",
               input_axes=(("m", "n"),), output_axes=("m",),
               iter_dims=("m", "n"), reduce_dims=("n",), reduce_kind=None)

    def test_inputs_axes_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            Op(name="bad", kind="add", inputs=("A", "B"), output="C",
               input_axes=(("m",),), output_axes=("m",), iter_dims=("m",))


class TestHelpers:
    def test_transcendental_weights(self):
        assert transcendental_weight("exp") > transcendental_weight("add")
        assert transcendental_weight("gelu") >= transcendental_weight("exp")
        assert transcendental_weight("add") == 1.0

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(1, 100) == 1

    def test_pow2_floor(self):
        assert pow2_floor(1) == 1
        assert pow2_floor(17) == 16
        assert pow2_floor(64) == 64
        with pytest.raises(ValueError):
            pow2_floor(0)

    def test_pow2_range(self):
        assert pow2_range(2, 16) == [2, 4, 8, 16]
        assert pow2_range(3, 16) == [4, 8, 16]
        assert pow2_range(8, 4) == []
        assert pow2_range(1, 1) == [1]

    def test_iter_volume(self, reg):
        op = make_unary("e", "exp", "X", ("m", "n"), "Y")
        assert op.iter_volume(reg) == 48
