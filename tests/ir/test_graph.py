"""Tests for the dataflow graph and its builder."""

import pytest

from repro.ir import DataflowGraph, GraphBuilder, GraphError, TensorSpec
from repro.ir.ops import make_unary


class TestGraphBuilder:
    def test_input_registers_dims(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 6)])
        assert x.dims == ("m", "n")
        assert b.graph.dims.size("n") == 6

    def test_input_with_bare_dim_names(self):
        b = GraphBuilder("g")
        b.input("X", [("m", 4)])
        y = b.input("Y", ["m"])
        assert y.dims == ("m",)

    def test_input_unknown_bare_dim_raises(self):
        b = GraphBuilder("g")
        with pytest.raises(GraphError, match="not registered"):
            b.input("X", ["ghost"])

    def test_matmul_infers_output_dims(self):
        b = GraphBuilder("g")
        a = b.input("A", [("m", 4), ("k", 3)])
        w = b.input("B", [("n", 5), ("k", 3)])
        c = b.matmul(a, w, reduce_dim="k")
        assert set(c.dims) == {"m", "n"}

    def test_binary_broadcast_union_dims(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 6)])
        v = b.input("V", ["m"])
        out = b.binary("sub", x, v)
        assert out.dims == ("m", "n")

    def test_reduce_drops_dim(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 6)])
        r = b.reduce("max", x, dim="n")
        assert r.dims == ("m",)

    def test_softmax_composite_is_five_primitives(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 6)])
        b.softmax(x, dim="n")
        kinds = [op.kind for op in b.graph.ops]
        assert kinds == ["reduce_max", "sub", "exp", "reduce_sum", "div"]

    def test_layernorm_composite_matches_fig10c(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 6)])
        b.layernorm(x, dim="n")
        kinds = [op.kind for op in b.graph.ops]
        assert kinds[:4] == ["reduce_mean", "sub", "square", "reduce_mean"]
        assert "sqrt" in kinds and "div" in kinds

    def test_scalar_op(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4)])
        y = b.scalar("mul", x, 0.25)
        assert b.graph.producer_of(y.name).attrs["scalar"] == 0.25

    def test_barrier_op(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 6)])
        y = b.barrier("reshape", x, [("f", 24)])
        assert b.graph.producer_of(y.name).is_barrier

    def test_build_validates(self, small_mha):
        assert len(small_mha.ops) == 7


class TestDataflowGraph:
    def _graph(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4), ("n", 6)])
        e = b.unary("exp", x, out_name="E")
        b.reduce("sum", e, dim="n", out_name="S")
        return b.build()

    def test_inputs_and_outputs(self):
        g = self._graph()
        assert g.input_tensors == ["X"]
        assert g.output_tensors == ["S"]
        assert g.intermediate_tensors == ["E"]

    def test_declared_outputs_override(self):
        g = self._graph()
        g.declared_outputs = ["E", "S"]
        assert set(g.output_tensors) == {"E", "S"}

    def test_producer_and_consumers(self):
        g = self._graph()
        assert g.producer_of("E").kind == "exp"
        assert g.producer_of("X") is None
        assert [op.kind for op in g.consumers_of("E")] == ["reduce_sum"]

    def test_op_lookup(self):
        g = self._graph()
        assert g.op(g.ops[0].name) is g.ops[0]
        with pytest.raises(KeyError):
            g.op("nope")

    def test_topological_order(self, small_mha):
        order = small_mha.topological_ops()
        seen = set(small_mha.input_tensors)
        for op in order:
            assert all(t in seen for t in op.inputs)
            seen.add(op.output)

    def test_ssa_violation_raises(self):
        g = DataflowGraph("g")
        g.dims.define("m", 4)
        g.tensors["X"] = TensorSpec("X", ("m",))
        g.tensors["Y"] = TensorSpec("Y", ("m",))
        g.add_op(make_unary("u1", "exp", "X", ("m",), "Y"))
        with pytest.raises(GraphError, match="SSA"):
            g.add_op(make_unary("u2", "exp", "X", ("m",), "Y"))

    def test_undefined_tensor_raises(self):
        g = DataflowGraph("g")
        g.dims.define("m", 4)
        g.tensors["Y"] = TensorSpec("Y", ("m",))
        with pytest.raises(GraphError, match="undefined tensor"):
            g.add_op(make_unary("u", "exp", "X", ("m",), "Y"))

    def test_duplicate_tensor_raises(self):
        g = DataflowGraph("g")
        g.dims.define("m", 4)
        g.add_tensor(TensorSpec("X", ("m",)))
        with pytest.raises(GraphError, match="already defined"):
            g.add_tensor(TensorSpec("X", ("m",)))

    def test_tensor_unknown_dim_raises(self):
        g = DataflowGraph("g")
        with pytest.raises(GraphError, match="unknown dim"):
            g.add_tensor(TensorSpec("X", ("m",)))

    def test_missing_producer_detected(self):
        g = DataflowGraph("g")
        g.dims.define("m", 4)
        for name in ("A", "B", "C"):
            g.tensors[name] = TensorSpec(name, ("m",))
        g.ops.append(make_unary("u1", "exp", "B", ("m",), "C"))
        g.ops.append(make_unary("u2", "exp", "C", ("m",), "B"))
        with pytest.raises(GraphError, match="cycle or missing"):
            g.topological_ops()

    def test_validate_checks_axis_arity(self):
        g = DataflowGraph("g")
        g.dims.define("m", 4)
        g.dims.define("n", 3)
        g.tensors["X"] = TensorSpec("X", ("m", "n"))
        g.tensors["Y"] = TensorSpec("Y", ("m",))
        g.ops.append(make_unary("u", "exp", "X", ("m",), "Y"))
        with pytest.raises(GraphError, match="axis map"):
            g.validate()

    def test_total_flops_positive(self, small_mha):
        assert small_mha.total_flops() > 0

    def test_fusion_group_tags_survive(self, small_ln):
        tags = {op.attrs.get("fusion_group") for op in small_ln.ops}
        assert "layernorm" in tags
