"""Tests for the general einsum operator (Table 1's 'potential' row)."""

import numpy as np
import pytest

from repro.hw import AMPERE, DeviceSimulator
from repro.ir import GraphBuilder
from repro.ir.ops import make_einsum
from repro.ir.traits import dependency_profile
from repro.pipeline import compile_for
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import evaluate_op, execute_graph_reference, random_feeds


class TestEinsumConstruction:
    def test_gemm_special_case(self):
        op = make_einsum("e", "A", ("m", "k"), "B", ("n", "k"),
                         "C", ("m", "n"))
        assert op.reduce_dims == ("k",)
        assert op.is_contraction

    def test_double_contraction(self):
        op = make_einsum("e", "A", ("m", "k", "j"), "B", ("n", "k", "j"),
                         "C", ("m", "n"))
        assert set(op.reduce_dims) == {"k", "j"}

    def test_outer_product_has_no_reduce(self):
        op = make_einsum("e", "A", ("m",), "B", ("n",), "C", ("m", "n"))
        assert op.reduce_dims == ()
        assert op.reduce_kind is None

    def test_table1_potential_dependencies(self):
        # Einsum's dependency classes depend on the axis maps (the paper
        # marks all three as 'potential presence').
        gemm = make_einsum("e", "A", ("m", "k"), "B", ("n", "k"),
                           "C", ("m", "n"))
        prof = dependency_profile(gemm)
        assert prof.one_to_all and prof.all_to_one and not prof.one_to_one
        ew = make_einsum("e2", "A", ("m", "n"), "B", ("m", "n"),
                         "C", ("m", "n"))
        prof2 = dependency_profile(ew)
        assert prof2.one_to_one and not prof2.all_to_one


class TestEinsumNumerics:
    def test_double_contraction_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 3, 5))
        b = rng.standard_normal((6, 3, 5))
        op = make_einsum("e", "A", ("m", "k", "j"), "B", ("n", "k", "j"),
                         "C", ("m", "n"))
        out = evaluate_op(op, {"A": a, "B": b})
        assert np.allclose(out, np.einsum("mkj,nkj->mn", a, b))

    def test_outer_product(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal(4)
        b = rng.standard_normal(6)
        op = make_einsum("e", "A", ("m",), "B", ("n",), "C", ("m", "n"))
        assert np.allclose(evaluate_op(op, {"A": a, "B": b}),
                           np.outer(a, b))


class TestEinsumScheduling:
    def _graph(self):
        b = GraphBuilder("es")
        a = b.input("A", [("m", 24), ("k", 8), ("j", 6)])
        w = b.input("B", [("n", 16), ("k", 8), ("j", 6)])
        b.einsum(a, w, out_dims=("m", "n"), out_name="C")
        return b.build()

    def test_compiles_and_validates(self):
        graph = self._graph()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=2)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["C"], ref["C"], atol=1e-9)

    def test_einsum_chain_with_softmax_fuses(self):
        """A double-contraction attention variant still fuses with UTA."""
        b = GraphBuilder("es_attn")
        q = b.input("Q", [("m", 32), ("k", 8), ("j", 4)])
        kk = b.input("K", [("l", 40), ("k", 8), ("j", 4)])
        v = b.input("V", [("l", 40), ("dv", 16)])
        qk = b.einsum(q, kk, out_dims=("m", "l"), out_name="QK")
        p = b.softmax(qk, dim="l")
        b.matmul(p, v, reduce_dim="l", out_name="Out")
        graph = b.build()
        sched, _ = compile_for(graph, AMPERE)
        assert sched.num_kernels == 1
        assert sched.kernels[0].plan.uses_uta
        feeds = random_feeds(graph, seed=5)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["Out"], ref["Out"], atol=1e-9)


class TestConfigSweep:
    def test_sweep_sorted_and_complete(self, small_mha):
        sched, _ = compile_for(small_mha, AMPERE)
        kernel = sched.kernels[0]
        sim = DeviceSimulator(AMPERE)
        sweep = sim.sweep_configs(kernel)
        assert len(sweep) == len(kernel.search_space)
        times = [t for _c, t in sweep]
        assert times == sorted(times)
        # The tuner's chosen config is the sweep's best.
        assert sweep[0][1] == pytest.approx(
            sim.kernel_time(kernel, kernel.config))
