"""Tests reproducing Table 1 and the MI/CI classification of section 6.6."""

import pytest

from repro.ir import GraphBuilder
from repro.ir.traits import (
    classify_graph,
    count_all_to_ones,
    dependency_profile,
    graph_intensity,
    is_compute_intensive,
    table1_rows,
)


class TestTable1:
    """The decoupled-dependency table of the paper, derived from access
    forms rather than asserted by hand."""

    def test_gemm_row(self):
        rows = table1_rows()
        gemm = rows["GEMM"]
        # Paper: GEMM has no One-to-One, has One-to-All and All-to-One.
        assert not gemm.one_to_one
        assert gemm.one_to_all
        assert gemm.all_to_one

    def test_softmax_row(self):
        softmax = table1_rows()["Softmax"]
        # Paper: Softmax exhibits all three dependency classes.
        assert softmax.one_to_one
        assert softmax.one_to_all
        assert softmax.all_to_one

    def test_reduce_row(self):
        reduce_max = table1_rows()["ReduceMax"]
        # Paper: ReduceMax/ReduceMean have only All-to-One.
        assert not reduce_max.one_to_one
        assert not reduce_max.one_to_all
        assert reduce_max.all_to_one

    def test_broadcast_elementwise_row(self):
        bcast = table1_rows()["ElementwiseBroadcast"]
        # Paper: element-wise with broadcast has O2O and O2A, no A2O.
        assert bcast.one_to_one
        assert bcast.one_to_all
        assert not bcast.all_to_one

    def test_pure_elementwise_profile(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4)])
        b.unary("exp", x)
        prof = dependency_profile(b.graph.ops[0])
        assert prof.one_to_one and not prof.one_to_all and not prof.all_to_one

    def test_as_row_rendering(self):
        prof = table1_rows()["GEMM"]
        assert prof.as_row() == ("no", "yes", "yes")


class TestIntensity:
    def test_large_gemm_is_compute_intensive(self):
        b = GraphBuilder("g")
        a = b.input("A", [("m", 512), ("k", 512)])
        w = b.input("B", [("n", 512), ("k", 512)])
        b.matmul(a, w, reduce_dim="k")
        g = b.build()
        assert is_compute_intensive(g.ops[0], g.dims)

    def test_skinny_gemm_is_memory_intensive(self):
        b = GraphBuilder("g")
        a = b.input("A", [("m", 4), ("k", 8)])
        w = b.input("B", [("n", 4), ("k", 8)])
        b.matmul(a, w, reduce_dim="k")
        g = b.build()
        assert not is_compute_intensive(g.ops[0], g.dims)

    def test_elementwise_is_memory_intensive(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 1024), ("n", 1024)])
        b.unary("exp", x)
        g = b.build()
        assert not is_compute_intensive(g.ops[0], g.dims)

    def test_classify_graph_labels_every_op(self, small_mha):
        labels = classify_graph(small_mha)
        assert set(labels) == {op.name for op in small_mha.ops}
        assert set(labels.values()) <= {"CI", "MI"}

    def test_graph_intensity_mixed(self):
        b = GraphBuilder("g")
        a = b.input("A", [("m", 512), ("k", 512)])
        w = b.input("B", [("n", 512), ("k", 512)])
        c = b.matmul(a, w, reduce_dim="k")
        b.unary("exp", c)
        assert graph_intensity(b.build()) == "mixed"

    def test_graph_intensity_mi_only(self, small_ln):
        assert graph_intensity(small_ln) == "MI"

    def test_graph_intensity_ci_only(self):
        b = GraphBuilder("g")
        a = b.input("A", [("m", 512), ("k", 512)])
        w = b.input("B", [("n", 512), ("k", 512)])
        b.matmul(a, w, reduce_dim="k")
        assert graph_intensity(b.build()) == "CI"


class TestAllToOneCensus:
    def test_mha_has_four_a2o_mappings(self, small_mha):
        # Section 2: MHA contains 4 All-to-Ones (GEMM1, max, sum, GEMM2).
        assert count_all_to_ones(small_mha) == 4

    def test_layernorm_has_two(self, small_ln):
        assert count_all_to_ones(small_ln) == 2

    def test_elementwise_graph_has_none(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 4)])
        b.unary("exp", x)
        assert count_all_to_ones(b.build()) == 0
