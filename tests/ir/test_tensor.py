"""Tests for dimension registry and tensor specifications."""

import pytest

from repro.ir.tensor import DTYPE_BYTES, DimRegistry, TensorSpec


class TestDimRegistry:
    def test_define_and_size(self):
        reg = DimRegistry()
        assert reg.define("m", 128) == "m"
        assert reg.size("m") == 128

    def test_redefine_same_size_is_ok(self):
        reg = DimRegistry()
        reg.define("m", 64)
        reg.define("m", 64)
        assert reg.size("m") == 64

    def test_redefine_different_size_raises(self):
        reg = DimRegistry()
        reg.define("m", 64)
        with pytest.raises(ValueError, match="redefined"):
            reg.define("m", 65)

    def test_nonpositive_size_raises(self):
        reg = DimRegistry()
        with pytest.raises(ValueError, match="positive"):
            reg.define("m", 0)
        with pytest.raises(ValueError):
            reg.define("n", -3)

    def test_unknown_dim_raises_keyerror(self):
        reg = DimRegistry()
        with pytest.raises(KeyError, match="unknown dimension"):
            reg.size("missing")

    def test_contains_and_names_preserve_order(self):
        reg = DimRegistry()
        reg.define("b", 2)
        reg.define("a", 3)
        assert "b" in reg and "a" in reg and "c" not in reg
        assert reg.names() == ("b", "a")

    def test_copy_is_independent(self):
        reg = DimRegistry()
        reg.define("m", 8)
        clone = reg.copy()
        clone.define("n", 4)
        assert "n" in clone and "n" not in reg

    def test_items(self):
        reg = DimRegistry()
        reg.define("x", 5)
        assert reg.items() == (("x", 5),)


class TestTensorSpec:
    def _reg(self):
        reg = DimRegistry()
        reg.define("m", 16)
        reg.define("n", 8)
        return reg

    def test_shape_and_numel(self):
        reg = self._reg()
        t = TensorSpec("X", ("m", "n"))
        assert t.shape(reg) == (16, 8)
        assert t.numel(reg) == 128

    def test_nbytes_fp16_default(self):
        reg = self._reg()
        t = TensorSpec("X", ("m", "n"))
        assert t.nbytes(reg) == 128 * 2

    def test_nbytes_fp32(self):
        reg = self._reg()
        t = TensorSpec("X", ("m",), dtype="fp32")
        assert t.nbytes(reg) == 16 * 4

    def test_bad_dtype_raises(self):
        with pytest.raises(ValueError, match="dtype"):
            TensorSpec("X", ("m",), dtype="fp8")

    def test_repeated_dim_raises(self):
        with pytest.raises(ValueError, match="repeats"):
            TensorSpec("X", ("m", "m"))

    def test_axis_of(self):
        t = TensorSpec("X", ("m", "n"))
        assert t.axis_of("n") == 1
        with pytest.raises(ValueError, match="no dimension"):
            t.axis_of("k")

    def test_rank(self):
        assert TensorSpec("X", ("m", "n")).rank == 2
        assert TensorSpec("S", ()).rank == 0

    def test_scalar_tensor_numel(self):
        reg = self._reg()
        assert TensorSpec("S", ()).numel(reg) == 1

    def test_dtype_table_is_consistent(self):
        assert DTYPE_BYTES["fp16"] == 2
        assert DTYPE_BYTES["fp32"] == 4
        assert DTYPE_BYTES["bf16"] == 2

    def test_is_weight_flag(self):
        t = TensorSpec("W", ("m",), is_weight=True)
        assert t.is_weight
