"""Tests for tensor programs: barrier partitioning and deduplication."""

import pytest

from repro.ir import GraphBuilder, TensorProgram, partition_at_barriers, program_from_graph
from repro.ir.program import Subprogram, validate_program
from repro.models import layernorm_graph


def _graph_with_barrier():
    b = GraphBuilder("g")
    x = b.input("X", [("m", 8), ("n", 6)])
    e = b.unary("exp", x)
    r = b.barrier("reshape", e, [("f", 48)])
    b.unary("relu", r, out_name="Out")
    return b.build()


class TestPartitionAtBarriers:
    def test_barrier_splits_into_three_regions(self):
        parts = partition_at_barriers(_graph_with_barrier())
        assert len(parts) == 3
        assert [len(p.ops) for p in parts] == [1, 1, 1]
        assert parts[1].ops[0].is_barrier

    def test_no_barrier_single_region(self, small_mha):
        parts = partition_at_barriers(small_mha)
        assert len(parts) == 1
        assert len(parts[0].ops) == len(small_mha.ops)

    def test_regions_are_valid_graphs(self):
        for part in partition_at_barriers(_graph_with_barrier()):
            part.validate()

    def test_region_io_chains(self):
        parts = partition_at_barriers(_graph_with_barrier())
        assert parts[1].input_tensors == [parts[0].output_tensors[0]]
        assert parts[2].input_tensors == [parts[1].output_tensors[0]]

    def test_leading_barrier(self):
        b = GraphBuilder("g")
        x = b.input("X", [("m", 8)])
        r = b.barrier("reshape", x, [("a", 2), ("c", 4)])
        b.unary("exp", r)
        parts = partition_at_barriers(b.build())
        assert len(parts) == 2
        assert parts[0].ops[0].is_barrier


class TestSubprogramDedup:
    def test_identical_graphs_share_signature(self):
        a = Subprogram(layernorm_graph(64, 32, name="ln"))
        b = Subprogram(layernorm_graph(64, 32, name="ln"))
        assert a.signature() == b.signature()

    def test_different_sizes_differ(self):
        a = Subprogram(layernorm_graph(64, 32, name="ln"))
        b = Subprogram(layernorm_graph(64, 48, name="ln"))
        assert a.signature() != b.signature()

    def test_unique_subprograms_fold_occurrences(self):
        prog = TensorProgram("p")
        prog.add(layernorm_graph(64, 32, name="ln"), occurrences=3)
        prog.add(layernorm_graph(64, 32, name="ln"), occurrences=2)
        prog.add(layernorm_graph(64, 48, name="ln"), occurrences=1)
        uniq = prog.unique_subprograms()
        assert len(uniq) == 2
        assert uniq[0].occurrences == 5
        assert uniq[1].occurrences == 1

    def test_layer_name_suffix_ignored_in_signature(self):
        # Repeated layers carry indexed names but identical structure.
        a = Subprogram(layernorm_graph(64, 32, name="ln#part0"))
        b = Subprogram(layernorm_graph(64, 32, name="ln#part1"))
        assert a.signature() == b.signature()

    def test_total_flops_scales_with_occurrences(self):
        prog = TensorProgram("p")
        g = layernorm_graph(64, 32)
        prog.add(g, occurrences=4)
        assert prog.total_flops() == 4 * g.total_flops()


class TestProgramFromGraph:
    def test_builds_subprograms(self):
        prog = program_from_graph(_graph_with_barrier(), occurrences=2)
        assert len(prog.subprograms) == 3
        assert all(s.occurrences == 2 for s in prog.subprograms)

    def test_validate_program(self):
        prog = program_from_graph(_graph_with_barrier())
        validate_program(prog)

    def test_meta_passthrough(self):
        prog = program_from_graph(_graph_with_barrier(), meta={"batch": 8})
        assert prog.meta["batch"] == 8
