"""Property-based tests (hypothesis) for the core invariants.

The single most important invariant of the whole system: *any* schedule the
compiler emits computes exactly what the unfused graph computes, for any
shape and any block/tile configuration.  Alongside it: update-function
algebra, slicing-bound arithmetic, and L2 byte accounting.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from repro.core.spaces import SlicedExtent
from repro.core.temporal_slicer import plan_temporal_slice
from repro.core.update_functions import NormFactor, UpdateFunction
from repro.hw import AMPERE
from repro.hw.memory import L2State
from repro.ir import GraphBuilder
from repro.models import layernorm_graph, mha_graph, mlp_graph
from repro.pipeline import compile_for
from repro.runtime.compiled import PlanCache, execute_compiled
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _mha(m, l, d):
    b = GraphBuilder("mha_prop")
    q = b.input("Q", [("m", m), ("dk", d)])
    k = b.input("K", [("l", l), ("dk", d)])
    v = b.input("V", [("l", l), ("dv", d)])
    qk = b.matmul(q, k, reduce_dim="dk", out_name="QK")
    p = b.softmax(qk, dim="l")
    b.matmul(p, v, reduce_dim="l", out_name="Out")
    return b.build()


class TestFusedEqualsReference:
    @_SETTINGS
    @given(m=st.integers(2, 48), l=st.integers(2, 48), d=st.integers(1, 16),
           block=st.integers(1, 48), tile=st.integers(1, 48),
           seed=st.integers(0, 10_000))
    def test_uta_attention_any_tiling(self, m, l, d, block, tile, seed):
        graph = _mha(m, l, d)
        smg = build_smg(graph)
        plan = plan_temporal_slice(smg, "l")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", min(block, m)),),
                                  tile=min(tile, l)))
        feeds = random_feeds(graph, seed=seed)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(ProgramSchedule("p", [kernel]), feeds)
        np.testing.assert_allclose(env["Out"], ref["Out"], atol=1e-8)

    @_SETTINGS
    @given(m=st.integers(1, 32), n=st.integers(2, 64),
           block=st.integers(1, 32), tile=st.integers(1, 64),
           seed=st.integers(0, 10_000))
    def test_layernorm_any_tiling(self, m, n, block, tile, seed):
        b = GraphBuilder("ln_prop")
        x = b.input("X", [("m", m), ("n", n)])
        b.layernorm(x, dim="n", out_name="Y")
        graph = b.build()
        smg = build_smg(graph)
        plan = plan_temporal_slice(smg, "n")
        kernel = KernelSchedule(
            "k", smg, ("m",), plan,
            config=ScheduleConfig(block=(("m", min(block, m)),),
                                  tile=min(tile, n)))
        feeds = random_feeds(graph, seed=seed)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(ProgramSchedule("p", [kernel]), feeds)
        np.testing.assert_allclose(env["Y"], ref["Y"], atol=1e-8)

    @_SETTINGS
    @given(ops=st.lists(st.sampled_from(
        ["exp", "relu", "tanh", "sigmoid", "square", "abs", "neg"]),
        min_size=1, max_size=5),
        m=st.integers(1, 16), n=st.integers(1, 16),
        seed=st.integers(0, 1000))
    def test_random_elementwise_chain_compiles_correctly(self, ops, m, n,
                                                         seed):
        b = GraphBuilder("chain")
        cur = b.input("X", [("m", m), ("n", n)])
        for kind in ops:
            cur = b.unary(kind, cur)
        graph = b.build()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        out = graph.output_tensors[0]
        np.testing.assert_allclose(env[out], ref[out], atol=1e-9)

    @_SETTINGS
    @given(m=st.integers(2, 24), n=st.integers(2, 40),
           kind=st.sampled_from(["sum", "max", "min", "mean"]),
           seed=st.integers(0, 1000))
    def test_reduction_then_broadcast_compiles_correctly(self, m, n, kind,
                                                         seed):
        b = GraphBuilder("rb")
        x = b.input("X", [("m", m), ("n", n)])
        r = b.reduce(kind, x, dim="n")
        b.binary("sub", x, r, out_name="Y")
        graph = b.build()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        ref = execute_graph_reference(graph, feeds)
        env = execute_schedule(sched, feeds)
        np.testing.assert_allclose(env["Y"], ref["Y"], atol=1e-9)


class TestCompiledEngineParity:
    """The compiled engine is a pure lowering: for any model-zoo subgraph
    and any shape, its outputs are *bitwise* identical to the schedule
    interpreter's and match the unfused reference numerically."""

    @_SETTINGS
    @given(m=st.integers(2, 40), l=st.integers(2, 40), d=st.integers(1, 16),
           seed=st.integers(0, 10_000))
    def test_mha_compiled_matches_interpreter(self, m, l, d, seed):
        graph = mha_graph(1, 2, m, l, d, name="mha_eng")
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        env_i = execute_schedule(sched, feeds)
        env_c = execute_compiled(sched, feeds, cache=PlanCache())
        ref = execute_graph_reference(graph, feeds)
        for t, expected in ref.items():
            np.testing.assert_array_equal(env_c[t], env_i[t])
            np.testing.assert_allclose(env_c[t], expected, atol=1e-8)

    @_SETTINGS
    @given(m=st.integers(1, 48), n=st.integers(2, 96),
           seed=st.integers(0, 10_000))
    def test_layernorm_compiled_matches_interpreter(self, m, n, seed):
        graph = layernorm_graph(m, n, name="ln_eng")
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        env_i = execute_schedule(sched, feeds)
        env_c = execute_compiled(sched, feeds, cache=PlanCache())
        ref = execute_graph_reference(graph, feeds)
        out = graph.output_tensors[0]
        np.testing.assert_array_equal(env_c[out], env_i[out])
        np.testing.assert_allclose(env_c[out], ref[out], atol=1e-8)

    @_SETTINGS
    @given(layers=st.integers(1, 3), m=st.integers(1, 32),
           in_features=st.integers(2, 32), hidden=st.integers(2, 32),
           seed=st.integers(0, 10_000))
    def test_mlp_compiled_matches_interpreter(self, layers, m, in_features,
                                              hidden, seed):
        graph = mlp_graph(layers, m, in_features, hidden, name="mlp_eng")
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        env_i = execute_schedule(sched, feeds)
        env_c = execute_compiled(sched, feeds, cache=PlanCache())
        ref = execute_graph_reference(graph, feeds)
        for t, expected in ref.items():
            np.testing.assert_array_equal(env_c[t], env_i[t])
            np.testing.assert_allclose(env_c[t], expected, atol=1e-8)

    @_SETTINGS
    @given(ops=st.lists(st.sampled_from(
        ["exp", "relu", "tanh", "sigmoid", "square", "abs", "neg"]),
        min_size=1, max_size=5),
        m=st.integers(1, 16), n=st.integers(1, 16),
        seed=st.integers(0, 1000))
    def test_elementwise_chain_compiled_matches_interpreter(self, ops, m, n,
                                                            seed):
        b = GraphBuilder("chain_eng")
        cur = b.input("X", [("m", m), ("n", n)])
        for kind in ops:
            cur = b.unary(kind, cur)
        graph = b.build()
        sched, _ = compile_for(graph, AMPERE)
        feeds = random_feeds(graph, seed=seed)
        out = graph.output_tensors[0]
        env_i = execute_schedule(sched, feeds)
        env_c = execute_compiled(sched, feeds, cache=PlanCache())
        np.testing.assert_array_equal(env_c[out], env_i[out])

    @_SETTINGS
    @given(dtype=st.sampled_from([np.float64, np.float32, "bfloat16"]),
           builder=st.sampled_from(["mha", "layernorm", "mlp"]),
           seed=st.integers(0, 10_000))
    def test_every_fused_kind_matches_at_every_dtype(self, dtype, builder,
                                                     seed):
        """Every fused-plan kind (vector, loopnest, whole, barrier) runs at
        f64, f32 and emulated bf16 without an ``interp`` fallback.  At f64
        the fused plan is bitwise-equal to the interpreter; at f32/bf16 it
        is oracle-clean (the interpreter's UTA re-normalisation runs at
        f64 internally — see UpdateFunction.apply — so sub-f64 runs agree
        to tolerance, not bitwise)."""
        from repro.runtime.compiled import lower_program
        from repro.runtime.oracle import tolerance_for

        graph = {
            "mha": lambda: mha_graph(1, 2, 24, 24, 8, name="mha_dt"),
            "layernorm": lambda: layernorm_graph(16, 48, name="ln_dt"),
            "mlp": lambda: mlp_graph(2, 16, 12, 12, name="mlp_dt"),
        }[builder]()
        sched, _ = compile_for(graph, AMPERE)
        assert "interp" not in lower_program(sched, dtype).kind_counts()
        feeds = random_feeds(graph, seed=seed)
        env_i = execute_schedule(sched, feeds, dtype=dtype)
        env_c = execute_compiled(sched, feeds, dtype=dtype,
                                 cache=PlanCache())
        ref = execute_graph_reference(graph, feeds, dtype=np.float64)
        tol = tolerance_for(dtype, ref)
        for t, expected in ref.items():
            if dtype is np.float64:
                np.testing.assert_array_equal(env_c[t], env_i[t])
            err = np.max(np.abs(np.asarray(env_c[t], dtype=np.float64)
                                - expected)) if expected.size else 0.0
            assert err <= tol, (t, err, tol)


class TestUpdateFunctionAlgebra:
    @_SETTINGS
    @given(vals=st.lists(st.floats(-20, 20), min_size=2, max_size=40),
           split=st.integers(1, 39))
    def test_online_softmax_sum_invariant(self, vals, split):
        """Two-chunk online accumulation equals the one-shot value for any
        split point — the algebra the generated update functions encode."""
        x = np.array(vals)
        split = min(split, len(x) - 1)
        x1, x2 = x[:split], x[split:]
        upd = UpdateFunction("S", (NormFactor("M", "exp", -1),), ())
        m1 = x1.max()
        s1 = np.exp(x1 - m1).sum()
        m2 = max(m1, x2.max())
        s2 = upd.apply(np.array(s1), {"M": np.array(m1)},
                       {"M": np.array(m2)}) + np.exp(x2 - m2).sum()
        expected = np.exp(x - x.max()).sum()
        np.testing.assert_allclose(s2, expected, rtol=1e-9)

    @_SETTINGS
    @given(old=st.floats(0.1, 100), a=st.floats(-5, 5), b=st.floats(-5, 5))
    def test_update_roundtrip_is_identity(self, old, a, b):
        """Applying an update and its inverse recovers the stored value."""
        upd = UpdateFunction("S", (NormFactor("M", "exp", -1),), ())
        forward = upd.apply(np.array(old), {"M": np.array(a)},
                            {"M": np.array(b)})
        back = upd.apply(forward, {"M": np.array(b)}, {"M": np.array(a)})
        np.testing.assert_allclose(back, old, rtol=1e-9)


class TestSlicingArithmetic:
    @_SETTINGS
    @given(size=st.integers(1, 1000), block=st.integers(1, 1000))
    def test_slices_cover_exactly(self, size, block):
        block = min(block, size)
        ext = SlicedExtent("d", size, block)
        covered = 0
        prev_hi = 0
        for i in range(ext.num_slices):
            lo, hi = ext.slice_bounds(i)
            assert lo == prev_hi
            assert hi > lo
            covered += hi - lo
            prev_hi = hi
        assert covered == size


class TestL2Accounting:
    @_SETTINGS
    @given(inserts=st.lists(
        st.tuples(st.sampled_from("abcdefgh"), st.integers(1, 600)),
        max_size=30))
    def test_capacity_never_exceeded(self, inserts):
        l2 = L2State(1000)
        for name, nbytes in inserts:
            l2.insert(name, nbytes)
            assert l2.used_bytes <= 1000
