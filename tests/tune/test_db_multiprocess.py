"""Cross-process single-flight on cold fingerprints: N real processes
race the guided tuner on one kernel and exactly one campaign runs.

This is the fleet-sharing guarantee: workers pointing at one TuneDB
directory serialise on the per-fingerprint advisory file lock, the
winner's ``put`` lands atomically, and every waiter re-checks the disk
tier after acquiring — so it replays the stored winner (one confirmation
timing) instead of duplicating the campaign.
"""

import multiprocessing

import pytest

from repro.hw import AMPERE
from repro.ir import GraphBuilder
from repro.serve import HAVE_FCNTL
from repro.tune import GuidedTuner, TuneDB, gpu_fingerprint

pytestmark = pytest.mark.skipif(
    not HAVE_FCNTL,
    reason="cross-process single-flight needs fcntl advisory locks")

N_RACERS = 3


def _build_graph():
    b = GraphBuilder("mha_small")
    q = b.input("Q", [("m", 96), ("dk", 24)])
    k = b.input("K", [("l", 80), ("dk", 24)])
    v = b.input("V", [("l", 80), ("dv", 40)])
    qk = b.matmul(q, k, reduce_dim="dk", out_name="QK")
    p = b.softmax(qk, dim="l")
    b.matmul(p, v, reduce_dim="l", out_name="O")
    return b.graph


def _make_kernel():
    from repro.core.builder import build_smg
    from repro.core.schedule import KernelSchedule, ScheduleConfig
    from repro.core.temporal_slicer import plan_temporal_slice

    smg = build_smg(_build_graph())
    plan = plan_temporal_slice(smg, "l")
    kernel = KernelSchedule("k", smg, ("m",), plan)
    kernel.search_space = [
        ScheduleConfig(block=(("m", 8 * (i + 1)),), tile=16)
        for i in range(6)
    ]
    return kernel


def _race_child(barrier, out_q, db_dir, idx):
    def slow_timing(kernel, cfg):
        # Stretch the campaign so every racer reliably reaches the cold
        # path while the first holder is still mid-campaign: only the
        # file lock can serialise them.
        import time
        time.sleep(0.05)
        return 1.0 + abs(cfg.block_of("m") - 24) / 8.0

    db = TuneDB(db_dir)
    tuner = GuidedTuner(db, gpu_fingerprint(AMPERE), lock_timeout_s=60.0)
    kernel = _make_kernel()
    barrier.wait(timeout=60.0)
    res = tuner.tune(kernel, slow_timing)
    out_q.put({
        "idx": idx,
        "configs_evaluated": res.configs_evaluated,
        "config": None if res.best_config is None
        else (res.best_config.block, res.best_config.tile),
    })


class TestSingleFlight:
    def test_one_campaign_fleet_wide(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(N_RACERS)
        out_q = ctx.Queue()
        procs = [ctx.Process(target=_race_child,
                             args=(barrier, out_q, str(tmp_path), i))
                 for i in range(N_RACERS)]
        for p in procs:
            p.start()
        results = []
        try:
            for _ in range(N_RACERS):
                results.append(out_q.get(timeout=120.0))
        finally:
            for p in procs:
                p.join(timeout=30.0)
                if p.is_alive():
                    p.terminate()

        assert len(results) == N_RACERS
        # Exactly one racer ran the 6-config campaign; everyone else
        # replayed the stored winner at one confirmation timing.
        full = [r for r in results if r["configs_evaluated"] == 6]
        replays = [r for r in results if r["configs_evaluated"] == 1]
        assert len(full) == 1
        assert len(replays) == N_RACERS - 1
        assert len({r["config"] for r in results}) == 1  # same winner
        # One entry on disk, written once.
        assert TuneDB(str(tmp_path)).disk_stats()["disk_entries"] == 1
