"""TuneDB storage behaviour: tiers, containment, maintenance."""

import json

import pytest

from repro.tune import DB_FORMAT_VERSION, TuneDB, TuneDBError, TuneEntry
from repro.tune.db import MAX_ENTRY_SAMPLES


def entry(fp="a" * 24, best=1.5, **kw):
    defaults = dict(
        fingerprint=fp, gpu="gpu-x", kernel_name="k",
        config={"block": [["m", 8]], "tile": 16},
        best_time=best, tuning_wall_time=120.0,
        configs_evaluated=4, configs_quit_early=2,
        kernel_features=[1.0, 2.0], samples=[[[1.0, 2.0, 3.0], 1.5]],
    )
    defaults.update(kw)
    return TuneEntry(**defaults)


class TestRoundtrip:
    def test_memory_only(self):
        db = TuneDB()
        assert db.get("a" * 24) is None
        db.put(entry())
        got = db.get("a" * 24)
        assert got is not None and got.best_time == 1.5
        assert db.mem_hits == 1 and db.misses == 1

    def test_disk_roundtrip_fresh_instance(self, tmp_path):
        TuneDB(tmp_path).put(entry())
        got = TuneDB(tmp_path).get("a" * 24)
        assert got is not None
        assert got.config == {"block": [["m", 8]], "tile": 16}
        assert got.tuning_wall_time == 120.0
        assert got.created > 0  # stamped at put time

    def test_entry_dict_roundtrip(self):
        e = entry()
        assert TuneEntry.from_dict(e.to_dict()).to_dict() == e.to_dict()

    def test_put_without_fingerprint_raises(self):
        with pytest.raises(TuneDBError):
            TuneDB().put(entry(fp=""))

    def test_samples_capped(self, tmp_path):
        big = entry(samples=[[[float(i)], 1.0]
                             for i in range(MAX_ENTRY_SAMPLES * 2)])
        db = TuneDB(tmp_path)
        db.put(big)
        got = TuneDB(tmp_path).get("a" * 24)
        assert len(got.samples) == MAX_ENTRY_SAMPLES


class TestLRU:
    def test_capacity_bound(self):
        db = TuneDB(capacity=2)
        for i in range(4):
            db.put(entry(fp=f"{i:024d}"))
        assert len(db.entries()) == 2
        # Oldest evicted, newest retained.
        assert db.get(f"{0:024d}") is None
        assert db.get(f"{3:024d}") is not None

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        TuneDB(tmp_path).put(entry())
        db = TuneDB(tmp_path)
        assert db.get("a" * 24) is not None
        assert db.disk_hits == 1
        assert db.get("a" * 24) is not None
        assert db.mem_hits == 1  # second read served from the LRU


class TestContainment:
    def test_corrupt_entry_is_miss_and_deleted(self, tmp_path):
        db = TuneDB(tmp_path)
        path = tmp_path / ("a" * 24 + ".json")
        path.write_text("{not json")
        assert db.get("a" * 24) is None
        assert not path.exists()
        assert db.misses == 1

    def test_version_mismatch_is_miss_and_deleted(self, tmp_path):
        db = TuneDB(tmp_path)
        payload = entry().to_dict()
        payload["format_version"] = DB_FORMAT_VERSION + 1
        path = tmp_path / ("a" * 24 + ".json")
        path.write_text(json.dumps(payload))
        assert db.get("a" * 24) is None
        assert not path.exists()

    def test_invalidate_drops_both_tiers(self, tmp_path):
        db = TuneDB(tmp_path)
        db.put(entry())
        db.invalidate("a" * 24)
        assert db.get("a" * 24) is None
        assert not (tmp_path / ("a" * 24 + ".json")).exists()


class TestMaintenance:
    def test_export_skips_unreadable(self, tmp_path):
        db = TuneDB(tmp_path)
        db.put(entry())
        (tmp_path / ("b" * 24 + ".json")).write_text("junk")
        dumped = db.export()
        assert len(dumped) == 1
        assert dumped[0]["fingerprint"] == "a" * 24

    def test_prune_keep_most_recent(self, tmp_path):
        db = TuneDB(tmp_path)
        for i in range(5):
            db.put(entry(fp=f"{i:024d}", created=float(i + 1)))
        removed = db.prune(keep=2)
        assert removed == 3
        remaining = {e["fingerprint"] for e in db.export()}
        assert remaining == {f"{3:024d}", f"{4:024d}"}

    def test_prune_max_age(self, tmp_path):
        db = TuneDB(tmp_path)
        db.put(entry(fp="c" * 24, created=1.0))  # ancient
        db.put(entry(fp="d" * 24))               # stamped now
        assert db.prune(max_age_s=3600.0) == 1
        assert [e["fingerprint"] for e in db.export()] == ["d" * 24]

    def test_prune_removes_corrupt_files(self, tmp_path):
        db = TuneDB(tmp_path)
        (tmp_path / ("e" * 24 + ".json")).write_text("junk")
        assert db.prune() == 1
        assert db.export() == []


class TestSamplePool:
    def test_pool_fed_once_per_fingerprint(self):
        db = TuneDB()
        db.put(entry())
        db.put(entry())  # same fingerprint again: no duplicate samples
        assert len(db.samples()) == 1

    def test_stale_feature_version_excluded(self):
        db = TuneDB()
        db.put(entry(feature_version=0))
        assert db.samples() == []
