"""GuidedTuner policy: replay, invariance, warm starts, accounting."""

import random

import pytest

from repro.core.autotuner import (
    DefaultTuner,
    config_sort_key,
    evaluate_search_space,
)
from repro.hw import AMPERE
from repro.serve.metrics import ServeMetrics
from repro.tune import GuidedTuner, RidgePredictor, TuneDB, gpu_fingerprint

from .conftest import make_kernel

GPU_KEY = gpu_fingerprint(AMPERE)


def block_timing(kernel, cfg):
    """Deterministic synthetic cost: best at block=24, unique winner."""
    return 1.0 + abs(cfg.block_of("m") - 24) / 8.0


class CountingTimer:
    def __init__(self, fn=block_timing):
        self.fn = fn
        self.calls = 0

    def __call__(self, kernel, cfg):
        self.calls += 1
        return self.fn(kernel, cfg)


class TestReplay:
    def test_exact_hit_costs_one_timing_call(self, small_mha):
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY)
        cold = tuner.tune(make_kernel(small_mha, 6), block_timing)

        timer = CountingTimer()
        warm_kernel = make_kernel(small_mha, 6)
        warm = tuner.tune(warm_kernel, timer)
        assert timer.calls == 1
        assert warm.best_config == cold.best_config
        assert warm.configs_evaluated == 1
        assert warm.tuning_wall_time < cold.tuning_wall_time
        assert warm_kernel.config == cold.best_config  # committed

    def test_replay_matches_default_tuner_winner(self, small_mha):
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY)
        default = DefaultTuner().tune(make_kernel(small_mha, 6),
                                      block_timing)
        tuner.tune(make_kernel(small_mha, 6), block_timing)
        replay = tuner.tune(make_kernel(small_mha, 6), block_timing)
        assert replay.best_config == default.best_config

    def test_stale_entry_falls_through_to_full_campaign(self, small_mha):
        metrics = ServeMetrics()
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY, metrics=metrics)
        tuner.tune(make_kernel(small_mha, 6), block_timing)

        # A changed cost model: confirmation disagrees far beyond rtol.
        timer = CountingTimer(lambda k, c: block_timing(k, c) * 10.0)
        res = tuner.tune(make_kernel(small_mha, 6), timer)
        assert metrics.get("tunedb.stale") == 1
        assert res.configs_evaluated == 6  # full campaign re-ran
        assert timer.calls > 1

    def test_replay_respects_keep_timings(self, small_mha):
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY)
        tuner.tune(make_kernel(small_mha, 6), block_timing)
        kept = tuner.tune(make_kernel(small_mha, 6), block_timing,
                          keep_timings=True)
        dropped = tuner.tune(make_kernel(small_mha, 6), block_timing,
                             keep_timings=False)
        assert len(kept.timings) == 1
        assert dropped.timings == []

    def test_trivial_space_skips_database(self, small_mha):
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY)
        res = tuner.tune(make_kernel(small_mha, 1), block_timing)
        assert res.best_config is not None
        assert db.entries() == []  # nothing stored, nothing looked up


class TestWinnerInvariance:
    def test_any_candidate_order_same_winner(self, small_mha):
        """The guided policy only reorders evaluation; the §6.5 winner
        must be the lexicographic (time, key) minimum under any order —
        including with exact timing ties."""
        kernel = make_kernel(small_mha, 8)

        def tie_timing(k, cfg):  # three-way exact tie at the optimum
            return max(1.0, abs(cfg.block_of("m") - 24) / 16.0)

        reference = evaluate_search_space(kernel, tie_timing)
        rng = random.Random(7)
        for _ in range(10):
            order = list(kernel.search_space)
            rng.shuffle(order)
            res = evaluate_search_space(kernel, tie_timing,
                                        candidates=order)
            assert res.best_config == reference.best_config
            assert res.best_time == reference.best_time

    def test_guided_tuner_matches_default_on_cold_runs(self, small_mha):
        for n in (2, 5, 8):
            default = DefaultTuner().tune(make_kernel(small_mha, n),
                                          block_timing)
            guided = GuidedTuner(TuneDB(), GPU_KEY).tune(
                make_kernel(small_mha, n), block_timing)
            assert guided.best_config == default.best_config


class TestWarmStart:
    def test_neighbor_config_promoted_and_counted(self, small_mha):
        metrics = ServeMetrics()
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY, metrics=metrics)
        tuner.tune(make_kernel(small_mha, 6), block_timing)

        # Different search space -> different fingerprint (a miss), but
        # the stored winner is a member, so the neighbor path promotes it.
        other = make_kernel(small_mha, 7)
        res = tuner.tune(other, block_timing, keep_timings=True)
        assert metrics.get("tunedb.warm_starts") == 1
        assert metrics.get("tunedb.misses") == 2
        # The promoted incumbent was evaluated first.
        first_cfg, _t = res.timings[0]
        assert first_cfg.block_of("m") == 24
        # And the winner is still the enumeration-order winner.
        default = DefaultTuner().tune(make_kernel(small_mha, 7),
                                      block_timing)
        assert res.best_config == default.best_config

    def test_warm_start_reduces_wall_clock(self, small_mha):
        """Fronting the eventual winner lets the early-quit budget trim
        every other candidate, so the campaign's accounted wall shrinks."""
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY)
        tuner.tune(make_kernel(small_mha, 6), block_timing)
        cold = DefaultTuner().tune(make_kernel(small_mha, 7), block_timing)
        warm = tuner.tune(make_kernel(small_mha, 7), block_timing)
        assert warm.best_config == cold.best_config
        assert warm.tuning_wall_time < cold.tuning_wall_time


class TestPredictor:
    def test_needs_min_samples(self):
        p = RidgePredictor(min_samples=4)
        assert not p.fit([[[1.0, 2.0], 1.0]] * 3)
        assert p.predict([[1.0, 2.0]]) is None

    def test_learns_monotone_trend(self):
        p = RidgePredictor(min_samples=4)
        samples = [[[float(i), 1.0], 0.5 + 0.25 * i] for i in range(16)]
        assert p.fit(samples)
        lo, hi = p.predict([[1.0, 1.0], [14.0, 1.0]])
        assert lo < hi

    def test_rejects_nonpositive_times(self):
        p = RidgePredictor(min_samples=4)
        assert not p.fit([[[1.0], 0.0]] * 8)

    def test_guided_ordering_kicks_in_with_history(self, small_mha):
        metrics = ServeMetrics()
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY, metrics=metrics,
                            predictor=RidgePredictor(min_samples=4))
        tuner.tune(make_kernel(small_mha, 6), block_timing)
        res = tuner.tune(make_kernel(small_mha, 8), block_timing)
        assert metrics.get("tunedb.guided") == 1
        default = DefaultTuner().tune(make_kernel(small_mha, 8),
                                      block_timing)
        assert res.best_config == default.best_config


class TestAccounting:
    def test_hit_and_saved_gauge(self, small_mha):
        metrics = ServeMetrics()
        db = TuneDB()
        tuner = GuidedTuner(db, GPU_KEY, metrics=metrics)
        cold = tuner.tune(make_kernel(small_mha, 6), block_timing)
        warm = tuner.tune(make_kernel(small_mha, 6), block_timing)
        assert metrics.get("tunedb.hits") == 1
        assert metrics.get("tunedb.misses") == 1
        saved = metrics.get_gauge("tunedb.wall_saved_s")
        assert saved == pytest.approx(
            cold.tuning_wall_time - warm.tuning_wall_time)

    def test_counters_render_and_scrape(self, small_mha):
        metrics = ServeMetrics()
        tuner = GuidedTuner(TuneDB(), GPU_KEY, metrics=metrics)
        tuner.tune(make_kernel(small_mha, 6), block_timing)
        tuner.tune(make_kernel(small_mha, 6), block_timing)
        report = metrics.render_report()
        assert "tunedb.hits" in report and "tunedb.misses" in report
        prom = metrics.to_prometheus()
        assert "repro_tunedb_hits 1" in prom
        assert "repro_tunedb_wall_saved_s" in prom
