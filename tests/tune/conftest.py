"""Shared kernel fixtures for the tuning-database tests."""

import pytest

from repro.core.builder import build_smg
from repro.core.schedule import KernelSchedule, ScheduleConfig
from repro.core.temporal_slicer import plan_temporal_slice


def make_kernel(graph, n_configs, name="k"):
    """A KernelSchedule over ``graph`` with a synthetic n-point space."""
    smg = build_smg(graph)
    plan = plan_temporal_slice(smg, "l")
    kernel = KernelSchedule(name, smg, ("m",), plan)
    kernel.search_space = [
        ScheduleConfig(block=(("m", 8 * (i + 1)),), tile=16)
        for i in range(n_configs)
    ]
    return kernel


@pytest.fixture
def mha_kernel(small_mha):
    return make_kernel(small_mha, 6)
