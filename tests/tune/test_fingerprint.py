"""Fingerprint canonicalization: what must and must not change the key."""

import dataclasses

from repro.hw import AMPERE, HOPPER
from repro.tune import gpu_fingerprint, kernel_fingerprint

from .conftest import make_kernel


class TestKernelFingerprint:
    def test_stable_across_calls(self, mha_kernel):
        key = gpu_fingerprint(AMPERE)
        assert kernel_fingerprint(mha_kernel, key) == \
            kernel_fingerprint(mha_kernel, key)

    def test_graph_name_is_blanked(self, small_mha):
        """Partition-path naming (model.c0 vs model.g1.c0) must not split
        entries for structurally identical subgraphs."""
        a = make_kernel(small_mha, 4)
        b = make_kernel(small_mha, 4)
        b.smg.graph.name = "model.c0.g1"
        key = gpu_fingerprint(AMPERE)
        assert kernel_fingerprint(a, key) == kernel_fingerprint(b, key)

    def test_kernel_name_irrelevant(self, small_mha):
        a = make_kernel(small_mha, 4, name="first")
        b = make_kernel(small_mha, 4, name="second")
        key = gpu_fingerprint(AMPERE)
        assert kernel_fingerprint(a, key) == kernel_fingerprint(b, key)

    def test_search_space_changes_key(self, small_mha):
        """Same graph, different candidate set = a different campaign."""
        a = make_kernel(small_mha, 4)
        b = make_kernel(small_mha, 5)
        key = gpu_fingerprint(AMPERE)
        assert kernel_fingerprint(a, key) != kernel_fingerprint(b, key)

    def test_gpu_changes_key(self, mha_kernel):
        assert kernel_fingerprint(mha_kernel, gpu_fingerprint(AMPERE)) != \
            kernel_fingerprint(mha_kernel, gpu_fingerprint(HOPPER))

    def test_memory_levels_change_key(self, small_mha):
        a = make_kernel(small_mha, 4)
        b = make_kernel(small_mha, 4)
        b.memory_levels = {"QK": "smem"}
        key = gpu_fingerprint(AMPERE)
        assert kernel_fingerprint(a, key) != kernel_fingerprint(b, key)


class TestGPUFingerprint:
    def test_distinct_presets_distinct_keys(self):
        assert gpu_fingerprint(AMPERE) != gpu_fingerprint(HOPPER)

    def test_same_name_different_spec_distinct(self):
        """A what-if spec sharing the preset's name must not alias its
        database entries — the key hashes every field."""
        tweaked = dataclasses.replace(AMPERE, sm_count=AMPERE.sm_count + 1)
        assert gpu_fingerprint(tweaked) != gpu_fingerprint(AMPERE)
