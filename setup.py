"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments whose pip cannot fetch
build-isolation dependencies (the legacy editable path needs only
setuptools).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of SpaceFusion (EuroSys '25): operator "
                 "fusion via Space-Mapping Graphs"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "scipy"],
    },
)
