"""Figure 16(b): sensitivity to input sizes.

Paper: at batch 1 the gains generally diminish as inputs grow (parallelism
saturates the baseline); at batch 32 gains are pronounced for most models.
"""

from repro.bench import fig16b_input_sensitivity


def test_fig16b_input_sensitivity(report):
    result = report(lambda: fig16b_input_sensitivity())
    for row in result.rows:
        assert max(row["small"], row["medium"], row["large"]) == 1.0
        assert min(row["small"], row["medium"], row["large"]) > 0.1
