"""Extension study: conclusion stability under cost-model perturbation.

Every experiment in this reproduction reads timings off an analytical
device model; this bench scales each modelling constant by 0.5-2x and
asserts the paper-shape conclusions (fusion wins, FA-2 parity, LayerNorm
fusion wins) hold at every point.
"""

from repro.bench.robustness import model_robustness


def test_model_robustness(report):
    result = report(lambda: model_robustness(),
                    float_fmt="{:.2f}")
    for row in result.rows:
        assert row["mha_fused_beats_eager"], row
        assert row["mha_within_fa2_band"], row
        assert row["ln_fused_beats_unfused"], row
