"""Figure 14: end-to-end model inference speedups over PyTorch.

Paper: up to 8.79x / average 3.54x over PyTorch; 1.27x over TensorRT,
1.34x over Kernl, 2.27x over BladeDISC, 1.21x over NNFusion (Volta);
NNFusion Volta-only, BladeDISC absent on Hopper; Llama2 gains smallest.
"""

from repro.bench import fig14_end_to_end, geomean


def test_fig14_end_to_end(report):
    result = report(lambda: fig14_end_to_end())
    sus = [s for s in result.column("su_spacefusion")]
    assert geomean(sus) > 1.5
    assert max(sus) > 5.0
    # Availability gaps mirror the paper.
    for row in result.filtered(arch="hopper"):
        assert row["su_bladedisc"] is None and row["su_nnfusion"] is None
    for row in result.filtered(arch="ampere"):
        assert row["su_nnfusion"] is None
    # Llama2 sees the smallest batch-1 gains (section 6.2's analysis).
    for arch in ("volta", "ampere", "hopper"):
        by_model = {r["model"]: r["su_spacefusion"]
                    for r in result.filtered(arch=arch, batch=1)}
        assert by_model["llama2"] == min(by_model.values())
    print(f"\naverage speedup over PyTorch: {geomean(sus):.2f}x, "
          f"max {max(sus):.2f}x (paper: 3.54x avg, 8.79x max)")
