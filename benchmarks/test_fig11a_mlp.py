"""Figure 11(a): fused multi-layer MLP speedup over cuBLASLt.

Paper: up to 3.15x, average 2.35x; fusion feasible for GEMM N,K <= 256,
gains growing with the number of fused layers on every architecture.
"""

from repro.bench import fig11a_mlp, geomean


def test_fig11a_mlp(report):
    result = report(lambda: fig11a_mlp(layer_counts=range(2, 21, 2)))
    speedups = result.column("speedup")
    assert all(s > 0.8 for s in speedups)
    assert max(speedups) > 1.5
    # Gains grow with fused depth per architecture.
    for arch in ("volta", "ampere", "hopper"):
        rows = result.filtered(arch=arch)
        assert rows[-1]["speedup"] > rows[0]["speedup"]
    print(f"\naverage speedup: {geomean(speedups):.2f}x "
          f"(paper: 2.35x avg, 3.15x max)")
