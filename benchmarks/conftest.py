"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure via the experiment
harness, prints the rows (visible with ``pytest -s`` and always written to
``benchmarks/results/``), and times the harness itself with
pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(benchmark):
    """Run an experiment under the benchmark timer and persist its table."""

    def _run(fn, float_fmt: str = "{:.2f}"):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        text = result.render(float_fmt=float_fmt)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{result.experiment}.txt"
        out.write_text(text + "\n")
        return result

    return _run
