"""Extension experiment: autoregressive decode attention (seq_q = 1).

Not a paper figure — the deployment regime the paper's introduction
motivates.  SpaceFusion must stay ahead of the eager baseline, and its
partitioning alternative gives it flash-decoding-like behaviour at batch 1
with long KV caches, where the single fused kernel runs out of
parallelism.
"""

from repro.bench.decode import decode_attention


def test_decode_attention(report):
    result = report(lambda: decode_attention())
    for row in result.rows:
        assert row["su_spacefusion"] >= 1.0
    # Batch-1 long-KV: the compiler splits for parallelism and must not
    # lose to the fixed single-kernel FlashAttention-2 schedule.
    long_kv = result.filtered(batch=1, kv_len=8192)[0]
    if long_kv["su_fa2"] is not None:
        assert long_kv["su_spacefusion"] >= long_kv["su_fa2"]
