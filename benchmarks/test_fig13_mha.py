"""Figure 13: fused MHA speedups across sequence lengths.

Paper: up to 10.35x / average 5.40x over PyTorch; comparable to
FlashAttention-2; FlashAttention CUDA absent on Volta.
"""

from repro.bench import fig13_mha, geomean


def test_fig13_mha(report):
    result = report(lambda: fig13_mha())
    sus = result.column("su_spacefusion")
    assert all(s > 1.0 for s in sus)
    # FA CUDA has no Volta build (absent bars in the paper's figure).
    for row in result.filtered(arch="volta"):
        assert row["su_fa2"] is None
    # Comparable to FlashAttention-2 wherever FA2 exists.
    for row in result.rows:
        if row["su_fa2"] is not None:
            assert row["su_spacefusion"] / row["su_fa2"] > 0.55
    print(f"\naverage speedup: {geomean(sus):.2f}x, max {max(sus):.2f}x "
          f"(paper: 5.40x avg, 10.35x max)")
