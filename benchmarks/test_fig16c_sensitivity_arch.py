"""Figure 16(c): sensitivity to GPU architecture.

Paper: SpaceFusion's cross-architecture performance ratio averages
1 : 2.26 : 4.34 against the 1 : 2.79 : 6.75 peak ratio (the CPU-side
overhead dilutes the fastest parts), and speedups grow with capability.
The widened sweep continues past the paper with the H200 (same Hopper
compute class, 2.4x the DRAM bandwidth) and a Blackwell-class part.
"""

from repro.bench import fig16c_arch_sensitivity, geomean


def test_fig16c_arch_sensitivity(report):
    result = report(lambda: fig16c_arch_sensitivity())
    amp = geomean(result.column("perf_ampere"))
    hop = geomean(result.column("perf_hopper"))
    assert 1.0 < amp < 2.79   # below the peak ratio, as the paper observes
    assert amp < hop < 6.75
    print(f"\nperf ratio volta:ampere:hopper = 1:{amp:.2f}:{hop:.2f} "
          f"(paper: 1:2.26:4.34, peak 1:2.79:6.75)")


def test_fig16c_new_presets_extend_the_curve(report):
    """H200 and Blackwell must continue the capability scaling: each at
    least as fast as the part below it, each below its own peak-ratio
    headroom (the realised/peak gap keeps widening off-paper too)."""
    result = report(lambda: fig16c_arch_sensitivity())
    hop = geomean(result.column("perf_hopper"))
    h200 = geomean(result.column("perf_h200"))
    bw = geomean(result.column("perf_blackwell"))
    assert hop <= h200 <= bw
    # Peak tensor-flop ratios over Volta: H200 8.83x, Blackwell 20.1x.
    assert h200 < 8.83
    assert bw < 20.1
    print(f"\nperf ratio hopper:h200:blackwell = "
          f"{hop:.2f}:{h200:.2f}:{bw:.2f} (volta = 1)")
