"""Figure 16(c): sensitivity to GPU architecture.

Paper: SpaceFusion's cross-architecture performance ratio averages
1 : 2.26 : 4.34 against the 1 : 2.79 : 6.75 peak ratio (the CPU-side
overhead dilutes the fastest parts), and speedups grow with capability.
"""

from repro.bench import fig16c_arch_sensitivity, geomean


def test_fig16c_arch_sensitivity(report):
    result = report(lambda: fig16c_arch_sensitivity())
    amp = geomean(result.column("perf_ampere"))
    hop = geomean(result.column("perf_hopper"))
    assert 1.0 < amp < 2.79   # below the peak ratio, as the paper observes
    assert amp < hop < 6.75
    print(f"\nperf ratio volta:ampere:hopper = 1:{amp:.2f}:{hop:.2f} "
          f"(paper: 1:2.26:4.34, peak 1:2.79:6.75)")
