"""Table 6: fusion patterns discovered across the evaluation suite.

Paper: SpaceFusion 50 patterns (5 CI-only, 15 MI-only, 30 mixed),
NNFusion/Welder 30, BladeDISC/AStitch 14 (memory-intensive only).
With this reproduction's 9 structure types the absolute counts are far
smaller, but the capability ordering and the CI/MI structure hold.
"""

from repro.bench import table6_fusion_patterns


def test_tab6_fusion_patterns(report):
    result = report(lambda: table6_fusion_patterns())
    by = {row["compiler"]: row for row in result.rows}
    assert by["spacefusion"]["total"] >= by["nnfusion"]["total"] \
        >= by["bladedisc"]["total"]
    assert by["bladedisc"]["ci_and_mi"] == 0      # MI-only fusion
    assert by["spacefusion"]["ci_and_mi"] > 0     # CI+MI fusion unlocked
    assert by["spacefusion"]["ci_and_mi"] > by["spacefusion"]["mi_only"]
