"""Figure 15: L1/L2 cache misses and device-memory movement.

Paper: up to 83.0% fewer L1 misses, 94.1% fewer L2 misses and 96.45% less
data movement than the baselines; LN cuts traffic 5.25x on average for an
8.08x speedup while MHA cuts 18.98x for 6.64x.
"""

from repro.bench import fig15_memory_cache, geomean


def test_fig15_memory_cache(report):
    result = report(lambda: fig15_memory_cache())
    unfused = result.filtered(variant="unfused_baseline")
    assert all(r["dram_norm"] > 1.5 for r in unfused)
    mha_cut = geomean([r["dram_norm"] for r in unfused
                       if r["case"].startswith("MHA")])
    ln_cut = geomean([r["dram_norm"] for r in unfused
                      if r["case"].startswith("LN")])
    assert mha_cut > ln_cut  # section 6.3's contrast
    print(f"\nMHA traffic reduction {mha_cut:.1f}x (paper avg 18.98x); "
          f"LN {ln_cut:.1f}x (paper avg 5.25x)")
