"""Figure 16(a): ablation of the slicers and the auto-scheduler.

Paper: Base(SS) reaches at least 51% of full SpaceFusion, Base+AS up to
79%, Base+TS between 72% and 89%.
"""

from repro.bench import fig16a_ablation


def test_fig16a_ablation(report):
    result = report(lambda: fig16a_ablation())
    for row in result.rows:
        assert row["spacefusion"] == 1.0
        for variant in ("base_ss", "base_as", "base_ts"):
            assert 0.15 < row[variant] <= 1.01
        # Auto-scheduling never hurts the spatial-only variant.
        assert row["base_as"] >= row["base_ss"] - 1e-9
