"""Table 4: compilation-time breakdown for MHA.

Paper (MHA(32,1024)): analysis phases take milliseconds
(TS 17.31ms, enumCfg 2.63ms, SS 0.23ms) while the tuning campaign
dominates (33.04s of 36.33s total).
"""

from repro.bench import table4_mha_breakdown


def test_tab4_compile_breakdown(report):
    result = report(lambda: table4_mha_breakdown(),
                    float_fmt="{:.3f}")
    for row in result.rows:
        analysis_s = (row["ts_slice_ms"] + row["enum_cfg_ms"]
                      + row["ss_slice_ms"]) / 1e3
        assert analysis_s < 1.0            # analysis is milliseconds
        assert row["tuning_s"] > analysis_s  # tuning dominates
        assert row["total_s"] < 120.0        # tens of seconds, not hours
