"""Ablation benches for DESIGN.md's called-out design choices:
partition-candidate exploration depth (5.3), the early-quit alpha (6.5),
and Update-then-Aggregate vs kernel splitting (4.3)."""

from repro.bench.ablations import (
    ablation_candidate_depth,
    ablation_early_quit,
    ablation_uta_vs_split,
)


def test_ablation_candidate_depth(report):
    result = report(lambda: ablation_candidate_depth())
    by = {row["case"]: row for row in result.rows}
    # Exploration never hurts, and rescues the wide-FFN case decisively.
    for row in result.rows:
        assert row["benefit"] >= 0.99
    assert by["FFN(2,11008)"]["benefit"] > 1.5
    assert by["FFN(2,11008)"]["kernels_with"] > 1


def test_ablation_early_quit(report):
    result = report(lambda: ablation_early_quit(), float_fmt="{:.3g}")
    rows = sorted(result.rows, key=lambda r: r["alpha"])
    # Smaller alpha quits more configurations and spends less wall-clock.
    assert rows[0]["tuning_wall_s"] <= rows[-1]["tuning_wall_s"]
    assert rows[0]["configs_quit"] >= rows[-1]["configs_quit"]
    # ... while the chosen schedule stays within 10% of the exhaustive one
    # (the paper's rationale for alpha=0.25).
    best = min(r["best_time_us"] for r in rows)
    for row in rows:
        assert row["best_time_us"] <= 1.10 * best


def test_ablation_uta_vs_split(report):
    result = report(lambda: ablation_uta_vs_split())
    for row in result.rows:
        assert row["benefit"] >= 0.95
    # Once the spatial-only fusion stops fitting, the UTA advantage jumps.
    assert result.rows[-1]["no_uta_kernels"] > 1
    assert result.rows[-1]["benefit"] > 1.2
