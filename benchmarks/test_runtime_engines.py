"""Runtime engines: schedule interpreter vs compiled execution.

Not a paper figure — this tracks the repo's own execution engine: the
compiled engine (lower once, cache the plan, vectorize the block grid)
must beat the interpreter on every Fig. 11–13 serving workload while
staying bitwise identical to it.  Alongside the rendered table, writes
``results/BENCH_runtime.json`` so the speedup trajectory is diffable
across commits.
"""

import json
import pathlib

from repro.bench import bench_runtime, geomean

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_runtime_engines(report):
    result = report(lambda: bench_runtime(iters=5), float_fmt="{:.3f}")

    # Parity is non-negotiable: same dtype, same bits, and both engines
    # within float tolerance of the unfused reference.
    assert all(result.column("bitwise_equal"))
    assert all(err <= 1e-8 for err in result.column("max_abs_err"))

    # Every kernel lowers to a real fused plan — the interp fallback kind
    # no longer exists.
    assert all("interp" not in {k.split(":")[0]
                                for k in row["kinds"].split(",")}
               for row in result.rows)

    # Perf: never slower per workload (generous noise slack).  Whole-
    # program fused plans sit at ~9-10x geomean and ~4x on MHA on a quiet
    # box; the floors leave headroom for a heavily contended CI runner.
    assert all(s > 0.8 for s in result.column("speedup"))
    gm = geomean(result.column("speedup"))
    assert gm >= 4.0, f"geomean speedup {gm:.2f}x below the 4x floor"
    mha = next(r["speedup"] for r in result.rows if r["workload"] == "mha")
    assert mha >= 2.0, f"mha speedup {mha:.2f}x below the 2x floor"

    payload = {
        "experiment": "bench_runtime",
        "gpu": "ampere",
        "iters": 5,
        "workloads": {
            row["workload"]: {
                "interpreter_ms": row["interpreter_ms"],
                "compiled_ms": row["compiled_ms"],
                "speedup": row["speedup"],
                "kinds": row["kinds"],
            }
            for row in result.rows
        },
        "geomean_speedup": gm,
    }
    out = RESULTS_DIR / "BENCH_runtime.json"
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\ngeomean speedup: {gm:.2f}x -> {out}")
