"""Figure 12: fused LayerNorm speedups.

Paper: 7.25x average over unfused PyTorch; up to 1.59x / 2.46x / 4.03x
over PyTorch Op / NVIDIA Apex / LN Triton.
"""

from repro.bench import fig12_layernorm, geomean


def test_fig12_layernorm(report):
    result = report(lambda: fig12_layernorm())
    su_pt = result.column("su_pytorch")
    assert all(s > 2.0 for s in su_pt)
    # SpaceFusion at least matches every fused baseline on every size.
    for col in ("su_vs_pytorch_op", "su_vs_apex", "su_vs_ln_triton"):
        assert all(s > 0.9 for s in result.column(col))
    print(f"\naverage speedup over PyTorch: {geomean(su_pt):.2f}x "
          f"(paper: 7.25x)")
