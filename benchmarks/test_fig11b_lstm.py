"""Figure 11(b): fused LSTM cell speedup over cuBLAS.

Paper: up to 2.87x, average 2.29x over the five-kernel cuBLAS baseline.
"""

from repro.bench import fig11b_lstm, geomean


def test_fig11b_lstm(report):
    result = report(lambda: fig11b_lstm())
    speedups = result.column("speedup_vs_cublas")
    assert all(s > 1.0 for s in speedups)
    print(f"\naverage speedup: {geomean(speedups):.2f}x "
          f"(paper: 2.29x avg, 2.87x max)")
