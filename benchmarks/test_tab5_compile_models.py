"""Table 5: model compilation time across compilers.

Paper: SpaceFusion compiles 2.44x faster than BladeDISC and 2.39x faster
than TensorRT on average (Bert: 176.2 / 141.1 / 68.4 seconds).
"""

from repro.bench import table5_model_compile_times


def test_tab5_compile_models(report):
    result = report(lambda: table5_model_compile_times())
    for row in result.rows:
        assert row["spacefusion_s"] < row["bladedisc_s"]
        assert row["spacefusion_s"] < row["tensorrt_s"]
