"""Figure 2 (motivation): Softmax-GEMM fusion via shape alignment vs
SpaceFusion's dependency-transformed schedule.

Paper: with TileM_align=16 and K=256 the aligned fusion works but has poor
intra-block locality; at K=1024 the 16x1024 intermediate tiles no longer
fit in shared memory and the alignment-based fusion fails, while the
reordered schedule of Figure 2(d) keeps fusing.
"""

from repro.bench.motivation import fig2_motivation


def test_fig2_motivation(report):
    result = report(lambda: fig2_motivation("volta"))
    by_k = {row["k"]: row for row in result.rows}
    assert by_k[256]["welder_fused"]
    assert not by_k[1024]["welder_fused"]      # the paper's failure point
    for row in result.rows:
        assert row["spacefusion_kernels"] == 1  # SpaceFusion always fuses
    assert by_k[4096]["speedup_vs_welder"] > by_k[256]["speedup_vs_welder"]
