"""Quickstart: fuse a Softmax-GEMM pair with SpaceFusion.

This walks the paper's running example (Figure 2): a softmax feeding a
GEMM — the fusion that defeats shape-alignment compilers when the reduced
dimension grows.  We:

1. build the operator graph,
2. lift it to a Space-Mapping Graph and print it,
3. auto-schedule it for a simulated A100,
4. execute the fused schedule numerically and check it against the
   unfused reference,
5. compare modelled cost against a cuBLASLt-style baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import schedule_cublaslt
from repro.core.builder import build_smg
from repro.hw import AMPERE
from repro.ir import GraphBuilder
from repro.pipeline import compile_for, simulate
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds


def build_softmax_gemm(m: int = 512, k: int = 1024, n: int = 64):
    """The Figure-2 workload: Out = softmax(X, dim=k) @ W."""
    b = GraphBuilder("softmax_gemm")
    x = b.input("X", [("m", m), ("k", k)])
    w = b.input("W", [("n", n), ("k", k)], is_weight=True)
    p = b.softmax(x, dim="k")
    b.matmul(p, w, reduce_dim="k", out_name="Out")
    return b.build()


def main() -> None:
    graph = build_softmax_gemm()
    print(f"Graph: {len(graph.ops)} operators, "
          f"{graph.total_flops() / 1e6:.1f} MFLOPs\n")

    # --- 1. The Space-Mapping Graph -----------------------------------
    smg = build_smg(graph)
    print(smg.render())
    chains = smg.a2o_dependency_chains("k")
    print(f"\nAll-to-One chains along k: "
          f"{[[m.reduce_kind for m in c] for c in chains]}")

    # --- 2. Auto-scheduling -------------------------------------------
    schedule, stats = compile_for(graph, AMPERE)
    print(f"\n{schedule.describe()}")
    kernel = schedule.kernels[0]
    if kernel.plan is not None:
        print(kernel.plan.describe())
    print(f"analysis phases: "
          f"{ {k: f'{v*1e3:.2f}ms' for k, v in stats.phase_times.items()} }")

    # --- 3. Numerical validation --------------------------------------
    feeds = random_feeds(graph, seed=0)
    reference = execute_graph_reference(graph, feeds)
    fused_env = execute_schedule(schedule, feeds)
    err = np.max(np.abs(fused_env["Out"] - reference["Out"]))
    print(f"\nfused vs unfused max abs error: {err:.2e}")
    assert err < 1e-9, "fused schedule diverged from the reference!"

    # --- 4. Modelled performance --------------------------------------
    fused_cost = simulate(schedule, AMPERE)
    baseline = schedule_cublaslt(graph, AMPERE)
    base_cost = simulate(baseline, AMPERE)
    print(f"\nSpaceFusion : {fused_cost.summary()}")
    print(f"cuBLASLt    : {base_cost.summary()}")
    print(f"speedup     : {base_cost.time_s / fused_cost.time_s:.2f}x")


if __name__ == "__main__":
    main()
