"""Ablation playground: what each SpaceFusion ingredient buys (Figure 16a).

Compile the same workloads under the ablation variants:

* Base(SS)   — spatial slicing only, expert-fixed block sizes;
* Base+AS    — spatial slicing with auto-scheduling;
* Base+TS    — spatial + temporal slicing, fixed configs;
* SpaceFusion — everything;

plus the capability-restricted comparators (AStitch-like, Welder-like),
then show where each one loses — the footprint-vs-locality trade-off the
paper's introduction frames.

Run:  python examples/ablation_playground.py
"""

from repro.core.compiler import FusionOptions
from repro.hw import AMPERE
from repro.models import layernorm_graph, mha_graph, mlp_graph
from repro.pipeline import compile_for, simulate

VARIANTS = {
    "base_ss": FusionOptions(enable_temporal=False, auto_tune=False),
    "base_as": FusionOptions(enable_temporal=False, auto_tune=True),
    "base_ts": FusionOptions(enable_temporal=True, auto_tune=False),
    "spacefusion": FusionOptions(),
    "astitch-like": FusionOptions(fuse_compute_intensive=False),
    "welder-like": FusionOptions(enable_uta=False),
}

WORKLOADS = {
    "MHA(8,16,1024)": lambda: mha_graph(8, 16, 1024, 1024, 64),
    "MHA(1,8,4096)": lambda: mha_graph(1, 8, 4096, 4096, 64),
    "LN(8192)": lambda: layernorm_graph(8192, 8192),
    "MLP(12,256)": lambda: mlp_graph(12, 8192, 256, 256),
}


def main() -> None:
    print(f"{'workload':>16} " + "".join(f"{v:>14}" for v in VARIANTS)
          + f" {'(kernels)':>12}")
    for label, make in WORKLOADS.items():
        graph = make()
        times = {}
        kernels = {}
        for variant, options in VARIANTS.items():
            schedule, _ = compile_for(graph, AMPERE, options)
            times[variant] = simulate(schedule, AMPERE).time_s
            kernels[variant] = schedule.num_kernels
        full = times["spacefusion"]
        cells = "".join(f"{full / times[v]:>13.2f}x" for v in VARIANTS)
        kcells = "/".join(str(kernels[v]) for v in VARIANTS)
        print(f"{label:>16} {cells}  [{kcells}]")
    print("\n(values are performance normalised to full SpaceFusion; the "
          "bracket shows kernels per variant)")
    print("Things to notice:")
    print(" - Base(SS) collapses on long-sequence MHA: without temporal "
          "slicing the full rows must fit on chip;")
    print(" - the Welder-like compiler splits exactly where Update-then-"
          "Aggregate would have been needed;")
    print(" - the AStitch-like compiler never joins GEMMs with the "
          "memory-intensive softmax, paying global-memory round trips.")


if __name__ == "__main__":
    main()
