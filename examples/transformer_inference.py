"""End-to-end Transformer inference across engines and architectures.

Reproduces a slice of the paper's Figure 14: compile the model zoo with
every inference engine (PyTorch eager, TensorRT-style, Kernl-style,
BladeDISC/AStitch, NNFusion/Welder, SpaceFusion) and compare the modelled
latency on the three GPU generations.

Run:  python examples/transformer_inference.py [model] [batch]
      e.g.  python examples/transformer_inference.py bert 1
"""

import sys

from repro.baselines import (
    ENGINES,
    EngineUnsupported,
    compile_model_with_engine,
    engine_supported,
)
from repro.hw import ARCHITECTURES
from repro.models import MODEL_CONFIGS, build_model
from repro.pipeline import simulate_model


def profile_model(name: str, batch: int, seq: int = 512) -> None:
    print(f"\n=== {name} (batch={batch}, seq={seq}) ===")
    header = f"{'engine':>12} " + "".join(f"{a:>12}" for a in ARCHITECTURES)
    print(header)
    baselines = {}
    for engine in ENGINES:
        cells = []
        for arch, gpu in ARCHITECTURES.items():
            if not engine_supported(engine, gpu):
                cells.append(f"{'-':>12}")
                continue
            program = build_model(name, batch=batch, seq=seq)
            try:
                model = compile_model_with_engine(program, gpu, engine)
            except EngineUnsupported:
                cells.append(f"{'-':>12}")
                continue
            t = simulate_model(model, gpu,
                               cuda_graphs=engine != "pytorch").time_s
            if engine == "pytorch":
                baselines[arch] = t
                cells.append(f"{t*1e3:>10.2f}ms")
            else:
                su = baselines[arch] / t
                cells.append(f"{t*1e3:>6.2f}ms/{su:>4.1f}x")
        print(f"{engine:>12} " + "".join(cells))
    print("(cells show latency, and speedup over PyTorch where applicable)")


def show_kernel_budget(name: str, batch: int) -> None:
    """How many kernels per layer each engine launches — the fusion story
    in one number."""
    gpu = ARCHITECTURES["ampere"]
    program = build_model(name, batch=batch, seq=512)
    print(f"\nkernels per layer on {gpu.name}:")
    for engine in ENGINES:
        if not engine_supported(engine, gpu):
            continue
        model = compile_model_with_engine(program, gpu, engine)
        kernels = sum(s.schedule.num_kernels for s in model.subprograms)
        print(f"  {engine:>12}: {kernels}")


if __name__ == "__main__":
    model_name = sys.argv[1] if len(sys.argv) > 1 else "bert"
    batch_size = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    if model_name not in MODEL_CONFIGS:
        raise SystemExit(f"unknown model {model_name!r}; "
                         f"choices: {sorted(MODEL_CONFIGS)}")
    profile_model(model_name, batch_size)
    show_kernel_budget(model_name, batch_size)
