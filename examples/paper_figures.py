"""Regenerate the paper's figures as terminal charts.

Runs a compact version of every evaluation figure and renders it as ASCII
bars — the quickest way to *see* the reproduction's shapes next to the
paper's.

Run:  python examples/paper_figures.py [fig13|fig12|fig14|fig16c|all]
"""

import sys

from repro.bench import (
    fig12_layernorm,
    fig13_mha,
    fig14_end_to_end,
    fig16c_arch_sensitivity,
)
from repro.bench.plotting import bar_chart, series_chart


def show_fig13() -> None:
    result = fig13_mha(archs=("ampere",), batches=(32,),
                       seqs=(128, 256, 512, 1024, 2048))
    print(series_chart(result, x="seq", y="su_spacefusion",
                       title="Fig 13 (ampere, batch 32): SpaceFusion "
                             "speedup over PyTorch"))
    print()
    row = result.filtered(seq=1024)[0]
    print(bar_chart(
        ["spacefusion", "fa1", "fa2", "fa_triton"],
        [row["su_spacefusion"], row["su_fa1"], row["su_fa2"],
         row["su_fa_triton"]],
        title="Fig 13 @ seq 1024: all systems (speedup over PyTorch)"))


def show_fig12() -> None:
    result = fig12_layernorm(archs=("ampere",),
                             sizes=(1024, 4096, 16384, 32768))
    print(series_chart(result, x="m", y="su_pytorch",
                       title="Fig 12 (ampere): fused LayerNorm speedup "
                             "over PyTorch"))


def show_fig14() -> None:
    result = fig14_end_to_end(archs=("ampere",), models=("bert", "vit"),
                              batches=(1,))
    for row in result.rows:
        print(bar_chart(
            ["spacefusion", "tensorrt", "kernl", "bladedisc"],
            [row["su_spacefusion"], row["su_tensorrt"], row["su_kernl"],
             row["su_bladedisc"]],
            title=f"Fig 14: {row['model']} batch {row['batch']} on ampere "
                  "(speedup over PyTorch)"))
        print()


def show_fig16c() -> None:
    result = fig16c_arch_sensitivity(models=("bert", "llama2"))
    for row in result.rows:
        print(bar_chart(
            ["volta", "ampere", "hopper"],
            [row["perf_volta"], row["perf_ampere"], row["perf_hopper"]],
            title=f"Fig 16c: {row['model']} performance across "
                  "architectures (Volta = 1)"))
        print()
    print("paper's ratio: 1 : 2.26 : 4.34 (peak 1 : 2.79 : 6.75)")


SHOWS = {"fig13": show_fig13, "fig12": show_fig12, "fig14": show_fig14,
         "fig16c": show_fig16c}

if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "all"
    if which == "all":
        for fn in SHOWS.values():
            fn()
            print("\n" + "=" * 64 + "\n")
    else:
        SHOWS[which]()
