"""Serving workflow: compile once, cache on disk, execute generated kernels.

An inference service compiles its model the first time it boots and never
again: this example drives the on-disk schedule cache
(`repro.core.serialize.ScheduleCache`), restores the schedule in a "second
process", lowers it to executable Python kernels via the codegen backend,
and serves a few batches — verifying every response against the unfused
reference.

Run:  python examples/compile_cache_serving.py
"""

import tempfile
import time

import numpy as np

from repro.codegen.python_backend import compile_program_to_python
from repro.core.serialize import ScheduleCache, compile_cached
from repro.hw import AMPERE
from repro.models import mha_graph
from repro.runtime.kernels import execute_graph_reference, random_feeds


def main() -> None:
    graph = mha_graph(2, 8, 256, 256, 64)
    cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
    cache = ScheduleCache(cache_dir)

    # --- boot #1: cold compile ----------------------------------------
    t0 = time.perf_counter()
    schedule, stats = compile_cached(graph, AMPERE, cache)
    cold = time.perf_counter() - t0
    print(f"cold compile : {cold*1e3:7.1f} ms "
          f"(analysis {sum(stats.phase_times.values())*1e3:.1f} ms, "
          f"{stats.configs_evaluated} configs tuned)")

    # --- boot #2: cache hit -------------------------------------------
    t0 = time.perf_counter()
    restored, stats2 = compile_cached(graph, AMPERE, cache)
    warm = time.perf_counter() - t0
    assert stats2 is None, "expected a cache hit"
    print(f"warm restore : {warm*1e3:7.1f} ms "
          f"({cold/warm:.0f}x faster; {cache.hits} hit / "
          f"{cache.misses} miss)")

    # --- lower to executable kernels -----------------------------------
    kernels = compile_program_to_python(restored)
    print(f"generated    : {len(kernels)} Python kernel(s), "
          f"{sum(len(k.source.splitlines()) for k in kernels)} lines")

    # --- serve ---------------------------------------------------------
    for request in range(3):
        feeds = random_feeds(graph, seed=100 + request)
        env = {k: np.asarray(v) for k, v in feeds.items()}
        t0 = time.perf_counter()
        for gk in kernels:
            gk(env)
        served = time.perf_counter() - t0
        expected = execute_graph_reference(graph, feeds)["Out"]
        err = float(np.max(np.abs(env["Out"] - expected)))
        print(f"request {request}: served in {served*1e3:6.1f} ms "
              f"(host numpy), max err {err:.2e}")
        assert err < 1e-9
    print("all responses verified against the unfused reference")


if __name__ == "__main__":
    main()
