"""Serving workflow: InferenceSession + FusionServer over the compile cache.

An inference service compiles its model the first time it boots and never
again.  This example drives the full `repro.serve` stack:

* boot #1 — an :class:`InferenceSession` cold-compiles through the
  two-tier cache (memory LRU over the on-disk
  `repro.core.serialize.ScheduleCache`);
* boot #2 — a fresh session (a "second process") restores the schedule
  from disk in milliseconds;
* serving — a :class:`FusionServer` with dynamic batching answers
  concurrent client requests, each verified against the unfused
  reference;
* the serve-stats report shows cache tiers, batch sizes and latencies.

Run:  python examples/compile_cache_serving.py
"""

import tempfile
import threading
import time

import numpy as np

from repro.core.serialize import ScheduleCache
from repro.hw import AMPERE
from repro.models import mha_graph
from repro.runtime.kernels import execute_graph_reference, random_feeds
from repro.serve import (
    FusionServer,
    InferenceSession,
    ServeMetrics,
    TieredScheduleCache,
)


def main() -> None:
    graph = mha_graph(2, 8, 256, 256, 64)
    cache_dir = tempfile.mkdtemp(prefix="repro-cache-")

    # --- boot #1: cold compile ----------------------------------------
    metrics = ServeMetrics()
    cache = TieredScheduleCache(disk=ScheduleCache(cache_dir),
                                metrics=metrics)
    t0 = time.perf_counter()
    session = InferenceSession(graph, AMPERE, cache=cache, metrics=metrics,
                               eager=True)
    cold = time.perf_counter() - t0
    print(f"cold compile : {cold*1e3:7.1f} ms "
          f"({session.num_kernels} lowered kernel(s), "
          f"engine={session.engine}, state={session.state})")

    # --- boot #2: warm restore from the disk tier ---------------------
    metrics2 = ServeMetrics()
    cache2 = TieredScheduleCache(disk=ScheduleCache(cache_dir),
                                 metrics=metrics2)
    t0 = time.perf_counter()
    session2 = InferenceSession(graph, AMPERE, cache=cache2,
                                metrics=metrics2, eager=True)
    warm = time.perf_counter() - t0
    print(f"warm restore : {warm*1e3:7.1f} ms "
          f"({cold/warm:.0f}x faster; "
          f"disk_hits={cache2.stats()['disk_hits']})")
    assert cache2.stats()["compile_misses"] == 0, "expected a cache hit"

    # --- serve concurrent traffic through the warm session ------------
    server = FusionServer({"mha": session2}, max_batch=4, max_wait_ms=2.0,
                          workers=2, metrics=metrics2)
    n_clients, per_client = 3, 2
    expected = {
        seed: execute_graph_reference(graph, random_feeds(graph, seed=seed))
        for seed in range(per_client)
    }
    failures = []

    def client(cid: int) -> None:
        for seed in range(per_client):
            feeds = random_feeds(graph, seed=seed)
            reply = server.infer("mha", feeds)
            err = float(np.max(np.abs(reply.outputs["Out"]
                                      - expected[seed]["Out"])))
            print(f"client {cid} request {seed}: "
                  f"served in {reply.latency_s*1e3:6.1f} ms "
                  f"(host numpy), max err {err:.2e}"
                  + (" [degraded]" if reply.degraded else ""))
            if err >= 1e-9:
                failures.append((cid, seed, err))

    with server:
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    assert not failures, failures
    print("all responses verified against the unfused reference")
    print()
    print(server.stats_report())


if __name__ == "__main__":
    main()
