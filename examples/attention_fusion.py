"""Attention fusion deep-dive: SpaceFusion's automatically derived
FlashAttention.

The paper's flagship demonstration (sections 4.3 and 6.1): the temporal
slicer discovers the online-softmax rescaling — the update functions of
Figure 8 — mechanically, from the dependency structure of the attention
graph.  This example:

1. prints the generated update functions next to the paper's formulas,
2. validates the fused kernel bit-for-bit against the unfused reference,
3. sweeps sequence lengths comparing SpaceFusion, FlashAttention-1/2, the
   Triton FlashAttention, and the PyTorch baseline (Figure 13's series).

Run:  python examples/attention_fusion.py
"""

import numpy as np

from repro.baselines import (
    FlashAttentionUnavailable,
    schedule_flash_attention,
    schedule_pytorch,
)
from repro.hw import AMPERE
from repro.models import mha_graph
from repro.pipeline import compile_for, simulate
from repro.runtime.executor import execute_schedule
from repro.runtime.kernels import execute_graph_reference, random_feeds


def show_update_functions() -> None:
    graph = mha_graph(1, 1, 256, 256, 64, scaled=False)
    schedule, _ = compile_for(graph, AMPERE)
    plan = schedule.kernels[0].plan
    assert plan is not None and plan.uses_uta
    print("Generated update functions (compare the paper's Figure 8(e)):")
    for stage in plan.stages:
        print(f"  [{stage.combiner:>3}] {stage.update.describe()}")
    print("""
Paper's hand-derived forms:
  updateSum(Sum_old) = Sum_old * exp(Max_old)/exp(Max)
  updateOut(Out_old) = Out_old * Sum_old/Sum * exp(Max_old)/exp(Max)
""")


def validate_numerics() -> None:
    graph = mha_graph(2, 4, 96, 80, 32)
    schedule, _ = compile_for(graph, AMPERE)
    feeds = random_feeds(graph, seed=42)
    ref = execute_graph_reference(graph, feeds)
    env = execute_schedule(schedule, feeds)
    err = np.max(np.abs(env["Out"] - ref["Out"]))
    print(f"fused attention vs reference: max abs error {err:.2e}")
    assert err < 1e-9


def sweep_sequence_lengths() -> None:
    print(f"\n{'seq':>6} {'pytorch':>10} {'spacefusion':>12} "
          f"{'fa1':>8} {'fa2':>8} {'fa_triton':>10}   speedup(SF)")
    for seq in (128, 256, 512, 1024, 2048, 4096):
        graph = mha_graph(8, 16, seq, seq, 64)
        base = simulate(schedule_pytorch(graph, AMPERE), AMPERE).time_s
        fused, _ = compile_for(graph, AMPERE)
        sf = simulate(fused, AMPERE).time_s
        row = [f"{seq:>6}", f"{base*1e6:>9.1f}u", f"{sf*1e6:>11.1f}u"]
        for variant in ("fa1", "fa2", "fa_triton"):
            try:
                t = simulate(schedule_flash_attention(graph, AMPERE,
                                                      variant), AMPERE).time_s
                row.append(f"{t*1e6:>7.1f}u" if variant != "fa_triton"
                           else f"{t*1e6:>9.1f}u")
            except FlashAttentionUnavailable:
                row.append("      -")
        row.append(f"  {base/sf:>6.2f}x")
        print(" ".join(row))


if __name__ == "__main__":
    show_update_functions()
    validate_numerics()
    sweep_sequence_lengths()
