"""Pre-wired entry points: compiler + device simulator in one call.

This is the public "just compile my graph for this GPU" API used by the
examples and benchmarks::

    from repro.pipeline import compile_for, simulate
    from repro.hw import AMPERE

    schedule, stats = compile_for(graph, AMPERE)
    counters = simulate(schedule, AMPERE)
"""

from __future__ import annotations

from .core.compiler import (
    CompiledModel,
    CompileStats,
    FusionOptions,
    SpaceFusionCompiler,
)
from .core.schedule import ProgramSchedule
from .hw.counters import PerfCounters
from .hw.simulator import DeviceSimulator
from .hw.specs import GPUSpec
from .ir.graph import DataflowGraph
from .ir.program import TensorProgram


def make_compiler(gpu: GPUSpec,
                  options: FusionOptions | None = None,
                  tune_db=None,
                  tune_metrics=None) -> SpaceFusionCompiler:
    """A SpaceFusion compiler targeting ``gpu``, timed by its cost model.

    ``tune_db`` (a :class:`repro.tune.TuneDB`) swaps the default tuning
    procedure for the database-backed :class:`repro.tune.GuidedTuner`:
    previously tuned kernels replay their stored winner, cold kernels
    search guided by database history.  Chosen configurations are
    identical either way; only tuning wall-clock changes.
    ``tune_metrics`` (a :class:`repro.serve.metrics.ServeMetrics`)
    receives the tuner's ``tunedb.*`` counters.
    """
    sim = DeviceSimulator(gpu)
    tuner = None
    if tune_db is not None:
        from .tune import GuidedTuner, gpu_fingerprint

        tuner = GuidedTuner(tune_db, gpu_key=gpu_fingerprint(gpu),
                            metrics=tune_metrics)
    return SpaceFusionCompiler(
        rc=gpu.resource_config(),
        timing_fn=lambda kernel, cfg: sim.kernel_time(kernel, cfg),
        options=options,
        tuner=tuner,
    )


def compile_for(graph: DataflowGraph, gpu: GPUSpec,
                options: FusionOptions | None = None,
                tune_db=None,
                tune_metrics=None,
                ) -> tuple[ProgramSchedule, CompileStats]:
    """Compile one barrier-free graph for ``gpu``."""
    return make_compiler(gpu, options, tune_db=tune_db,
                         tune_metrics=tune_metrics).compile_graph(graph)


def compile_model_for(program: TensorProgram, gpu: GPUSpec,
                      options: FusionOptions | None = None,
                      tune_db=None,
                      tune_metrics=None) -> CompiledModel:
    """Compile a whole model program (repeated subprograms compile once)."""
    return make_compiler(gpu, options, tune_db=tune_db,
                         tune_metrics=tune_metrics).compile_model(program)


def compile_model_parallel_for(program: TensorProgram, gpu: GPUSpec,
                               options: FusionOptions | None = None,
                               max_workers: int | None = None,
                               tune_db=None,
                               tune_metrics=None,
                               ) -> CompiledModel:
    """Like :func:`compile_model_for` with subprograms tuned concurrently.

    The merge is deterministic: chosen configurations and modelled kernel
    times are identical to the serial path (see
    :mod:`repro.serve.parallel`).
    """
    from .serve.parallel import compile_model_parallel

    return compile_model_parallel(program, gpu, options,
                                  max_workers=max_workers,
                                  tune_db=tune_db,
                                  tune_metrics=tune_metrics)


def simulate(schedule: ProgramSchedule, gpu: GPUSpec,
             cuda_graphs: bool | None = None) -> PerfCounters:
    """Model the execution cost of a compiled schedule on ``gpu``."""
    return DeviceSimulator(gpu).program_cost(schedule, cuda_graphs=cuda_graphs)


def simulate_model(model: CompiledModel, gpu: GPUSpec,
                   cuda_graphs: bool | None = None) -> PerfCounters:
    """Model a compiled model end to end (subprograms scaled by occurrence)."""
    sim = DeviceSimulator(gpu)
    total = PerfCounters(line_bytes=gpu.line_bytes)
    for sub in model.subprograms:
        counters = sim.program_cost(sub.schedule, cuda_graphs=cuda_graphs)
        total.add(counters.scaled(sub.occurrences))
    return total
