"""Pre-wired entry points: compiler + device simulator in one call.

This is the public "just compile my graph for this GPU" API used by the
examples and benchmarks::

    from repro.pipeline import compile_for, simulate
    from repro.hw import AMPERE

    schedule, stats = compile_for(graph, AMPERE)
    counters = simulate(schedule, AMPERE)
"""

from __future__ import annotations

from .core.compiler import (
    CompiledModel,
    CompileStats,
    FusionOptions,
    SpaceFusionCompiler,
)
from .core.schedule import ProgramSchedule
from .hw.counters import PerfCounters
from .hw.simulator import DeviceSimulator
from .hw.specs import GPUSpec
from .ir.graph import DataflowGraph
from .ir.program import TensorProgram


def make_compiler(gpu: GPUSpec,
                  options: FusionOptions | None = None) -> SpaceFusionCompiler:
    """A SpaceFusion compiler targeting ``gpu``, timed by its cost model."""
    sim = DeviceSimulator(gpu)
    return SpaceFusionCompiler(
        rc=gpu.resource_config(),
        timing_fn=lambda kernel, cfg: sim.kernel_time(kernel, cfg),
        options=options,
    )


def compile_for(graph: DataflowGraph, gpu: GPUSpec,
                options: FusionOptions | None = None,
                ) -> tuple[ProgramSchedule, CompileStats]:
    """Compile one barrier-free graph for ``gpu``."""
    return make_compiler(gpu, options).compile_graph(graph)


def compile_model_for(program: TensorProgram, gpu: GPUSpec,
                      options: FusionOptions | None = None) -> CompiledModel:
    """Compile a whole model program (repeated subprograms compile once)."""
    return make_compiler(gpu, options).compile_model(program)


def compile_model_parallel_for(program: TensorProgram, gpu: GPUSpec,
                               options: FusionOptions | None = None,
                               max_workers: int | None = None,
                               ) -> CompiledModel:
    """Like :func:`compile_model_for` with subprograms tuned concurrently.

    The merge is deterministic: chosen configurations and modelled kernel
    times are identical to the serial path (see
    :mod:`repro.serve.parallel`).
    """
    from .serve.parallel import compile_model_parallel

    return compile_model_parallel(program, gpu, options,
                                  max_workers=max_workers)


def simulate(schedule: ProgramSchedule, gpu: GPUSpec,
             cuda_graphs: bool | None = None) -> PerfCounters:
    """Model the execution cost of a compiled schedule on ``gpu``."""
    return DeviceSimulator(gpu).program_cost(schedule, cuda_graphs=cuda_graphs)


def simulate_model(model: CompiledModel, gpu: GPUSpec,
                   cuda_graphs: bool | None = None) -> PerfCounters:
    """Model a compiled model end to end (subprograms scaled by occurrence)."""
    sim = DeviceSimulator(gpu)
    total = PerfCounters(line_bytes=gpu.line_bytes)
    for sub in model.subprograms:
        counters = sim.program_cost(sub.schedule, cuda_graphs=cuda_graphs)
        total.add(counters.scaled(sub.occurrences))
    return total
