"""Dependency analysis: quantify the complexity SpaceFusion tames (§2).

The paper motivates the SMG by counting what a *single output element* of
MHA depends on: ``(2LK + 4K + 2)`` elements drawn from 8 tensors, through
6 layers of nested dependencies built from 6 One-to-Alls and 4 All-to-Ones.
This module computes those numbers for any graph, by propagating exact
element-requirement masks backwards through the operators' access forms —
the machine-checkable version of the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.graph import DataflowGraph
from ..ir.ops import Op


@dataclass(frozen=True)
class DependencyStats:
    """What one output element transitively depends on."""

    output: str
    #: Elements required per tensor (inputs and intermediates).
    elements_by_tensor: dict[str, int]
    #: Total elements across all *other* tensors (the paper's 2LK+4K+2).
    total_elements: int
    #: Number of distinct tensors touched (the paper's "8 tensors").
    tensors_touched: int
    #: Longest operator chain from any input to the output element (the
    #: paper's "6 layers nested dependencies").
    nesting_depth: int

    def describe(self) -> str:
        return (f"one element of {self.output!r} depends on "
                f"{self.total_elements} elements from "
                f"{self.tensors_touched} tensors "
                f"({self.nesting_depth} layers of nesting)")


def _required_inputs(op: Op, out_mask: np.ndarray,
                     shapes: dict[str, tuple[int, ...]],
                     ) -> dict[str, np.ndarray]:
    """Input element masks needed to produce ``out_mask`` of ``op.output``.

    Derived from the access form: the needed iteration points are the
    output mask extended along the reduced dims (All-to-One pulls the whole
    range); each input's mask is the projection of those points onto its
    axes (collapsing broadcast dims: One-to-All means one element serves
    all points along the dim).
    """
    iter_shape = []
    out_pos = {d: i for i, d in enumerate(op.output_axes)}
    for d in op.iter_dims:
        if d in out_pos:
            iter_shape.append(out_mask.shape[out_pos[d]])
        else:
            # reduced dim: full extent, recovered from an input that has it
            size = None
            for tensor, axes in zip(op.inputs, op.input_axes):
                if d in axes:
                    size = shapes[tensor][axes.index(d)]
                    break
            iter_shape.append(size if size is not None else 1)

    # Broadcast the output mask over the iteration space.
    idx = []
    for d in op.iter_dims:
        idx.append(slice(None) if d in out_pos else np.newaxis)
    aligned = np.transpose(
        out_mask, [out_pos[d] for d in op.iter_dims if d in out_pos])
    iter_mask = np.broadcast_to(aligned[tuple(
        slice(None) if d in out_pos else np.newaxis
        for d in op.iter_dims)], iter_shape)

    needed: dict[str, np.ndarray] = {}
    iter_pos = {d: i for i, d in enumerate(op.iter_dims)}
    for tensor, axes in zip(op.inputs, op.input_axes):
        if not axes:  # opaque barrier access: everything
            needed[tensor] = np.ones(shapes[tensor], dtype=bool)
            continue
        drop = tuple(i for i, d in enumerate(op.iter_dims) if d not in axes)
        mask = iter_mask.any(axis=drop) if drop else iter_mask
        order = [d for d in op.iter_dims if d in axes]
        if tuple(order) != tuple(axes):
            mask = np.transpose(mask, [order.index(d) for d in axes])
        prev = needed.get(tensor)
        needed[tensor] = mask if prev is None else (prev | mask)
    return needed


def single_output_dependency_stats(graph: DataflowGraph,
                                   output: str | None = None,
                                   element: tuple[int, ...] | None = None,
                                   ) -> DependencyStats:
    """Exact dependency census for one element of ``output``.

    Masks are propagated backwards op by op; the result counts, per tensor,
    how many of its elements the chosen output element transitively
    requires — reproducing the paper's section-2 arithmetic for MHA
    (asserted in the tests symbolically: ``2*L*K + 4*K + 2``).
    """
    graph.validate()
    output = output or graph.output_tensors[0]
    shapes = {t: spec.shape(graph.dims) for t, spec in graph.tensors.items()}
    element = element or tuple(0 for _ in shapes[output])

    masks: dict[str, np.ndarray] = {
        output: np.zeros(shapes[output], dtype=bool)
    }
    masks[output][element] = True

    depth: dict[str, int] = {output: 0}
    for op in reversed(graph.topological_ops()):
        if op.output not in masks or not masks[op.output].any():
            continue
        for tensor, mask in _required_inputs(op, masks[op.output],
                                             shapes).items():
            prev = masks.get(tensor)
            masks[tensor] = mask if prev is None else (prev | mask)
            depth[tensor] = max(depth.get(tensor, 0),
                                depth[op.output] + 1)

    elements = {
        t: int(m.sum()) for t, m in masks.items()
        if t != output and m.any()
    }
    return DependencyStats(
        output=output,
        elements_by_tensor=elements,
        total_elements=sum(elements.values()),
        tensors_touched=len(elements) + 1,
        nesting_depth=max(depth.values()) if depth else 0,
    )


def mapping_census(graph: DataflowGraph) -> dict[str, int]:
    """Counts of each mapping kind in the graph's SMG (the paper's
    "6 One-to-Alls and 4 All-to-Ones" for MHA)."""
    from .builder import build_smg
    from .mappings import A2O, O2A, O2O

    smg = build_smg(graph)
    counts = {"O2O": 0, "O2A": 0, "A2O": 0}
    for m in smg.mappings:
        counts[m.kind.value] += 1
    return counts
