"""Auto-tuner: configuration search with the early-quit rule (section 6.5).

SpaceFusion evaluates every configuration in the (deliberately small)
search space by timing test runs — the median of 100 runs after 20 warm-up
runs — and abandons a *losing* configuration once its accumulated test
time exceeds a proportion alpha (0.25 in the paper) of the current best
configuration's total test time.  A configuration that is beating the
incumbent is never cut short — the budget exists to stop spending runs on
losers — so the eventual winner always completed (and was billed for) its
full campaign.  An abandoned configuration is out of the running: it never
finished its measurement campaign, so it cannot be selected as the winner,
only billed for the test runs it did consume.

Here the per-run time comes from the device cost model instead of silicon,
and the tuner *accounts* the wall-clock the paper's procedure would have
spent (warm-up plus measured runs, with early quits shortening bad
configurations).  That accounting is what regenerates the compilation-time
tables (Tables 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..resilience import faults as _faults
from .schedule import KernelSchedule, ScheduleConfig

#: Paper's tuning procedure constants.
WARMUP_RUNS = 20
MEASURE_RUNS = 100
DEFAULT_ALPHA = 0.25

#: Failpoint at the head of every tuning campaign: a per-candidate
#: compile/measure failure in the real system aborts the kernel's
#: campaign, which the serving cache's retry policy then absorbs.
FP_TUNE = _faults.register("compile.autotune")


@dataclass
class TuneResult:
    """Outcome of tuning one kernel."""

    kernel: KernelSchedule
    best_config: ScheduleConfig | None
    best_time: float
    configs_evaluated: int
    configs_quit_early: int
    #: Simulated wall-clock the measurement campaign would take (seconds).
    tuning_wall_time: float
    #: The full (config, time) trace of the campaign.  Retention is
    #: opt-in: the serve path evaluates with ``keep_timings=False``, so
    #: large search spaces don't pin a timing list per kernel for the
    #: session's lifetime; the Table 4/5 benchmarks keep it on.
    timings: list[tuple[ScheduleConfig, float]] = field(default_factory=list)


def config_sort_key(cfg: ScheduleConfig | None) -> tuple:
    """Stable, order-independent identity of one configuration.

    Used to break *exact* timing ties deterministically: when two
    configurations measure identical, the winner is the one with the
    smaller key, no matter which was evaluated first.  Parallel
    compilation, guided (reordered) search, and TuneDB replay therefore
    all crown the same configuration.  ``None`` sorts last.
    """
    if cfg is None:
        return (1, (), -2)
    return (0, cfg.block, -1 if cfg.tile is None else cfg.tile)


def evaluate_search_space(
        kernel: KernelSchedule,
        timing_fn: Callable[[KernelSchedule, ScheduleConfig], float],
        alpha: float = DEFAULT_ALPHA,
        warmup_runs: int = WARMUP_RUNS,
        measure_runs: int = MEASURE_RUNS,
        candidates: list[ScheduleConfig] | None = None,
        keep_timings: bool = True) -> TuneResult:
    """Run the tuning campaign over ``kernel.search_space`` without
    mutating the kernel.

    Pure with respect to the kernel, so concurrent workers (the parallel
    compilation path in :mod:`repro.serve.parallel`) can evaluate kernels
    that other threads hold references to; callers then commit the choice
    with :func:`apply_tune_result` at a deterministic merge point.

    ``candidates`` overrides the *evaluation order* (it must be a
    permutation of the search space — the guided policy in
    :mod:`repro.tune` feeds candidates best-first so the early-quit rule
    bites sooner).  The chosen winner is order-independent: a
    configuration strictly beating the incumbent always completes its
    full campaign, and exact ties resolve by :func:`config_sort_key`, so
    the winner is the lexicographic minimum of ``(time, key)`` under any
    order.  Only the accounted wall-clock depends on the order.
    """
    _faults.fire(FP_TUNE)
    best_cfg: ScheduleConfig | None = None
    best_time = float("inf")
    wall = 0.0
    quit_early = 0
    timings: list[tuple[ScheduleConfig, float]] = []
    space = kernel.search_space if candidates is None else candidates

    for cfg in space:
        t = timing_fn(kernel, cfg)
        if keep_timings:
            timings.append((cfg, t))
        abandoned = False
        wins_tie = (t == best_time
                    and config_sort_key(cfg) < config_sort_key(best_cfg))
        if best_cfg is None or t < best_time or wins_tie:
            # A configuration on track to beat the incumbent is never cut
            # short: the early-quit rule exists to stop wasting test runs
            # on losers, and a winner must complete (and be billed for)
            # its full measurement campaign.  An exact tie counts as
            # "on track" only for the configuration with the smaller
            # stable key, keeping the winner order-independent.
            runs = warmup_runs + measure_runs
        else:
            # Early quit: stop measuring once accumulated test time passes
            # alpha times the best config's total test time.
            budget = alpha * (warmup_runs + measure_runs) * best_time
            if t * measure_runs > budget:
                allowed = max(1, int(budget / t))
                runs = min(warmup_runs + measure_runs, allowed)
                abandoned = runs < warmup_runs + measure_runs
                if abandoned:
                    quit_early += 1
            else:
                runs = warmup_runs + measure_runs
        wall += runs * t
        # An abandoned configuration never had its full measurement
        # campaign, so per section 6.5 it cannot become the winner — it
        # only contributes its truncated test runs to the wall-clock.
        if not abandoned and (t < best_time or wins_tie):
            best_time = t
            best_cfg = cfg

    return TuneResult(
        kernel=kernel,
        best_config=best_cfg,
        best_time=best_time,
        configs_evaluated=len(space),
        configs_quit_early=quit_early,
        tuning_wall_time=wall,
        timings=timings,
    )


def apply_tune_result(result: TuneResult) -> KernelSchedule:
    """Commit a tuning outcome: fix the kernel's chosen configuration."""
    result.kernel.config = result.best_config
    return result.kernel


def tune_kernel(kernel: KernelSchedule,
                timing_fn: Callable[[KernelSchedule, ScheduleConfig], float],
                alpha: float = DEFAULT_ALPHA,
                warmup_runs: int = WARMUP_RUNS,
                measure_runs: int = MEASURE_RUNS,
                candidates: list[ScheduleConfig] | None = None,
                keep_timings: bool = True) -> TuneResult:
    """Search the kernel's config space and fix its best configuration."""
    result = evaluate_search_space(kernel, timing_fn, alpha=alpha,
                                   warmup_runs=warmup_runs,
                                   measure_runs=measure_runs,
                                   candidates=candidates,
                                   keep_timings=keep_timings)
    apply_tune_result(result)
    return result


def pick_best(results: list[TuneResult]) -> TuneResult:
    """Choose the fastest tuned candidate among scheduled variants.

    Exact ``best_time`` ties resolve by the stable config key (then the
    kernel name), never by list position: the parallel compilation merge
    and a TuneDB replay then pick identical winners regardless of the
    order tuning results arrive in.
    """
    if not results:
        raise ValueError("no tuning results to choose from")
    return min(results, key=lambda r: (r.best_time,
                                       config_sort_key(r.best_config),
                                       r.kernel.name))


class DefaultTuner:
    """The paper's tuning procedure as a pluggable policy object.

    :class:`~repro.core.compiler.SpaceFusionCompiler` routes every
    campaign through a tuner with this interface; the TuneDB-backed
    :class:`repro.tune.GuidedTuner` substitutes database hits and
    feature-guided candidate ordering while preserving the winner.
    """

    def tune(self, kernel: KernelSchedule,
             timing_fn: Callable[[KernelSchedule, ScheduleConfig], float],
             alpha: float = DEFAULT_ALPHA,
             keep_timings: bool = True) -> TuneResult:
        return tune_kernel(kernel, timing_fn, alpha=alpha,
                           keep_timings=keep_timings)
