"""Dataflow rewrites supporting temporal slicing (section 4.3).

The paper's *Broadcast Postposition* moves broadcasts below reductions so
that dependent All-to-One chains expose their true dependency structure
(Figure 8 a→c).  Two of those algebraic transformations change the graph
itself and are implemented here:

* ``lower_mean_reductions`` — a mean over the sliced dimension becomes a sum
  plus a final ``1/N`` scale, so tile-wise accumulation is a plain sum.
* ``variance_decomposition`` — ``mean((x - mean(x))^2)`` becomes
  ``mean(x^2) - mean(x)^2``, turning LayerNorm's dependent reduction pair
  into independent reductions amenable to Simple Aggregate.

Per the paper, "the modified dataflow is solely employed for UTA. The
original dataflow for the SMG block remains mostly unchanged" — callers
rewrite a *copy* of the graph used only for schedule execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import DataflowGraph
from ..ir.ops import Op, make_binary, make_reduce, make_scalar, make_unary


def copy_graph(graph: DataflowGraph, name: str | None = None) -> DataflowGraph:
    clone = DataflowGraph(name or graph.name, dims=graph.dims)
    clone.tensors = dict(graph.tensors)
    clone.ops = list(graph.ops)
    clone.declared_outputs = list(graph.output_tensors)
    return clone


def prune_dead_ops(graph: DataflowGraph) -> DataflowGraph:
    """Drop ops whose results cannot reach any graph output.

    A reverse sweep over the topological order marks the transitive
    producers of the output set; everything else is removed.
    """
    ops = graph.topological_ops()
    needed = set(graph.output_tensors)
    live_names: set[str] = set()
    for op in reversed(ops):
        if op.output in needed:
            live_names.add(op.name)
            needed.update(op.inputs)
    graph.ops = [op for op in ops if op.name in live_names]
    used: set[str] = set(graph.output_tensors)
    for op in graph.ops:
        used.update(op.inputs)
        used.add(op.output)
    graph.tensors = {k: v for k, v in graph.tensors.items() if k in used}
    return graph


def lower_mean_reductions(graph: DataflowGraph, dim: str) -> DataflowGraph:
    """Replace ``reduce_mean`` over ``dim`` with ``reduce_sum`` + scale.

    The inserted scale op keeps the original output tensor name, so all
    consumers are untouched; the sum writes a fresh ``<name>__rawsum``
    tensor.
    """
    new_ops: list[Op] = []
    for op in graph.ops:
        if op.kind == "reduce_mean" and dim in op.reduce_dims:
            n = graph.dims.size(dim)
            raw_name = f"{op.output}__rawsum"
            out_spec = graph.tensors[op.output]
            from ..ir.tensor import TensorSpec
            graph.tensors[raw_name] = TensorSpec(raw_name, out_spec.dims, out_spec.dtype)
            new_ops.append(make_reduce(
                f"{op.name}__sum", "sum", op.inputs[0], op.input_axes[0],
                raw_name, dim))
            new_ops.append(make_scalar(
                f"{op.name}__scale", "mul", raw_name, out_spec.dims,
                op.output, 1.0 / n))
        else:
            new_ops.append(op)
    graph.ops = new_ops
    graph.validate()
    return graph


@dataclass
class VariancePattern:
    """A matched ``mean((x - mean(x))^2)`` pattern over one dimension."""

    mean_op: Op       # mu = reduce_mean(x, dim)
    sub_op: Op        # c = x - mu
    square_op: Op     # s = c^2  (square or mul(c, c))
    var_op: Op        # var = reduce_mean(s, dim)


def find_variance_patterns(graph: DataflowGraph, dim: str) -> list[VariancePattern]:
    patterns = []
    for var_op in graph.ops:
        if var_op.kind != "reduce_mean" or dim not in var_op.reduce_dims:
            continue
        square_op = graph.producer_of(var_op.inputs[0])
        if square_op is None:
            continue
        if square_op.kind == "square":
            centered = square_op.inputs[0]
        elif square_op.kind == "mul" and square_op.inputs[0] == square_op.inputs[1]:
            centered = square_op.inputs[0]
        else:
            continue
        sub_op = graph.producer_of(centered)
        if sub_op is None or sub_op.kind != "sub":
            continue
        mean_op = graph.producer_of(sub_op.inputs[1])
        if (mean_op is None or mean_op.kind != "reduce_mean"
                or dim not in mean_op.reduce_dims
                or mean_op.inputs[0] != sub_op.inputs[0]):
            continue
        patterns.append(VariancePattern(mean_op, sub_op, square_op, var_op))
    return patterns


def variance_decomposition(graph: DataflowGraph, dim: str) -> bool:
    """Apply ``var = E[x^2] - E[x]^2`` wherever the pattern matches.

    Returns True when at least one rewrite fired.  The variance tensor keeps
    its name; the centering ``sub`` stays in place for downstream consumers
    (it is no longer an ancestor of any reduction, so it migrates to the
    epilogue pass).
    """
    from ..ir.tensor import TensorSpec

    patterns = find_variance_patterns(graph, dim)
    if not patterns:
        return False
    for pat in patterns:
        x = pat.mean_op.inputs[0]
        x_axes = pat.mean_op.input_axes[0]
        base = pat.var_op.name
        sq_name = f"{base}__xsq"
        m2_name = f"{base}__ex2"
        musq_name = f"{base}__musq"
        x_spec = graph.tensors[x]
        mu_spec = graph.tensors[pat.mean_op.output]
        graph.tensors[sq_name] = TensorSpec(sq_name, x_spec.dims, x_spec.dtype)
        graph.tensors[m2_name] = TensorSpec(m2_name, mu_spec.dims, mu_spec.dtype)
        graph.tensors[musq_name] = TensorSpec(musq_name, mu_spec.dims, mu_spec.dtype)

        replacement = [
            make_unary(f"{base}__sq", "square", x, x_axes, sq_name),
            make_reduce(f"{base}__mean2", "mean", sq_name, x_axes, m2_name, dim),
            make_unary(f"{base}__musq", "square", pat.mean_op.output,
                       mu_spec.dims, musq_name),
            make_binary(f"{base}__var", "sub", m2_name, mu_spec.dims,
                        musq_name, mu_spec.dims, pat.var_op.output,
                        mu_spec.dims),
        ]
        new_ops: list[Op] = []
        for op in graph.ops:
            if op.name == pat.var_op.name:
                new_ops.extend(replacement)
            else:
                new_ops.append(op)
        graph.ops = new_ops
        # The old square op may now be dead (if only the variance used it).
        prune_dead_ops(graph)
    graph.validate()
    return True


def prepare_for_temporal_slicing(graph: DataflowGraph, dim: str,
                                 ) -> tuple[DataflowGraph, bool]:
    """Produce the rewritten execution graph for slicing along ``dim``.

    Applies variance decomposition then mean lowering; returns the rewritten
    copy and whether any structural rewrite fired.
    """
    clone = copy_graph(graph)
    rewrote = variance_decomposition(clone, dim)
    lower_mean_reductions(clone, dim)
    clone.validate()
    return clone, rewrote
