"""Space mappings: the directed edges of a Space-Mapping Graph (section 4.1).

Three kinds of mapping relate computational spaces (section 2):

* **One-to-One (O2O)** — element-wise correspondence; no geometric direction.
* **One-to-All (O2A)** — one source element is required by every destination
  element along the mapping's direction dimensions (broadcast / reuse).
* **All-to-One (A2O)** — every source element along the direction dimensions
  contributes to one destination element (reduction), with a combiner.

Direction dimensions give mappings their geometry; Table 3's slicing
legality rules are phrased entirely in terms of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class MappingKind(Enum):
    ONE_TO_ONE = "O2O"
    ONE_TO_ALL = "O2A"
    ALL_TO_ONE = "A2O"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


O2O = MappingKind.ONE_TO_ONE
O2A = MappingKind.ONE_TO_ALL
A2O = MappingKind.ALL_TO_ONE


@dataclass(frozen=True)
class Mapping:
    """A directed edge ``src -> dst`` between two spaces of an SMG.

    Attributes:
        src: source space name.
        dst: destination space name.
        kind: O2O, O2A, or A2O.
        dims: geometric direction dimensions.  Empty exactly for O2O.
        reduce_kind: combiner for A2O mappings (``sum``/``max``/``min``/``mean``).
        input_index: for data->iteration edges, which operand slot this edge
            feeds (the executor needs operand order).
    """

    src: str
    dst: str
    kind: MappingKind
    dims: frozenset[str] = frozenset()
    reduce_kind: str | None = None
    input_index: int | None = None

    def __post_init__(self) -> None:
        if self.kind is O2O and self.dims:
            raise ValueError("One-to-One mappings carry no direction dims")
        if self.kind is not O2O and not self.dims:
            raise ValueError(f"{self.kind} mapping requires direction dims")
        if self.kind is A2O and self.reduce_kind is None:
            raise ValueError("All-to-One mapping requires a reduce_kind")
        if self.kind is not A2O and self.reduce_kind is not None:
            raise ValueError("only All-to-One mappings carry a reduce_kind")

    def along(self, dim: str) -> bool:
        """Whether this mapping's direction includes ``dim`` ("resides within
        the dimension" in the paper's Table 3 phrasing)."""
        return dim in self.dims

    def describe(self) -> str:
        if self.kind is O2O:
            return f"{self.src} -O2O-> {self.dst}"
        dims = ",".join(sorted(self.dims))
        extra = f":{self.reduce_kind}" if self.reduce_kind else ""
        return f"{self.src} -{self.kind.value}(dim={dims}){extra}-> {self.dst}"
