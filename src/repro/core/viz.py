"""Visualisation exports for Space-Mapping Graphs and schedules.

The paper communicates SMGs as geometric drawings (Figures 3(b)/5(b));
this module renders the same structure as Graphviz DOT — data spaces as
boxes, iteration spaces as ellipses, the three mapping kinds in the
paper's colours (One-to-One grey, One-to-All green, All-to-One red) — plus
a compact text rendering of whole program schedules.
"""

from __future__ import annotations

from .mappings import A2O, O2A, O2O
from .schedule import ProgramSchedule
from .smg import SMG
from .spaces import DataSpace, IterationSpace

_KIND_STYLE = {
    O2O: 'color="gray40"',
    O2A: 'color="forestgreen"',
    A2O: 'color="red3", penwidth=2',
}

_ROLE_FILL = {
    "input": "lightgoldenrod1",
    "output": "mediumpurple1",
    "intermediate": "lightsteelblue1",
}


def smg_to_dot(smg: SMG, title: str | None = None) -> str:
    """Render an SMG as a Graphviz DOT digraph string."""
    lines = [f'digraph "{title or smg.name}" {{',
             "  rankdir=TB;",
             '  node [fontname="Helvetica", fontsize=11];']
    for space in smg.spaces.values():
        label = space.render(smg.dims)
        if isinstance(space, IterationSpace):
            lines.append(
                f'  "{space.name}" [shape=ellipse, style=filled, '
                f'fillcolor=gray90, label="{label}\\n<{space.op_kind}>"];')
        elif isinstance(space, DataSpace):
            fill = _ROLE_FILL.get(space.role, "white")
            lines.append(
                f'  "{space.name}" [shape=box, style=filled, '
                f'fillcolor={fill}, label="{label}"];')
    for m in smg.mappings:
        style = _KIND_STYLE[m.kind]
        if m.kind is O2O:
            label = ""
        else:
            dims = ",".join(sorted(m.dims))
            tag = m.kind.value
            extra = f":{m.reduce_kind}" if m.reduce_kind else ""
            label = f', label="{tag}({dims}){extra}"'
        lines.append(f'  "{m.src}" -> "{m.dst}" [{style}{label}];')
    lines.append("}")
    return "\n".join(lines)


def schedule_to_text(schedule: ProgramSchedule, registry_hint: bool = True,
                     ) -> str:
    """Multi-line report of a program schedule: kernels, slicing modes,
    chosen configurations, memory-level assignments."""
    lines = [f"program {schedule.name}: {schedule.num_kernels} kernel(s)"]
    for i, kernel in enumerate(schedule.kernels):
        lines.append(f"[{i}] {kernel.describe()}")
        if kernel.plan is not None:
            for s in kernel.plan.stages:
                lines.append(f"      {s.update.describe()}")
        if kernel.memory_levels:
            by_level: dict[str, list[str]] = {}
            for tensor, level in sorted(kernel.memory_levels.items()):
                by_level.setdefault(level, []).append(tensor)
            for level in ("global", "shared", "register"):
                if level in by_level:
                    lines.append(
                        f"      {level:>8}: {', '.join(by_level[level])}")
    return "\n".join(lines)
