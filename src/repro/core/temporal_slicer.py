"""Temporal slicer: serialising an SMG block into intra-blocks (section 4.3).

A temporal slicer partitions an SMG block along one dimension into
serially-executed intra-blocks so that intermediate variables live only for
one intra-block, shrinking the on-chip footprint.  Reductions along the
sliced dimension must be aggregated across intra-blocks:

* **Simple Aggregate (SA)** for independent All-to-Ones;
* **Update-then-Aggregate (UTA)** for dependent chains, re-normalising old
  partials via generated update functions before aggregating.

The output of this module is an :class:`AggregationPlan`: the rewritten
execution graph, the ordered reduction stages with their update functions,
and the pass-1/pass-2 op partition the executor interprets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import DataflowGraph
from ..ir.ops import Op
from .builder import build_smg
from .rewrites import prepare_for_temporal_slicing
from .smg import SMG
from .update_functions import UpdateFunction, UTAError, synthesize_update_functions


@dataclass(frozen=True)
class ReductionStage:
    """One reduction aggregated across intra-blocks."""

    op_name: str
    output: str
    combiner: str  # "sum" | "max" | "min"
    update: UpdateFunction

    @property
    def uses_uta(self) -> bool:
        return not self.update.is_identity


@dataclass
class AggregationPlan:
    """Everything the executor needs to run a temporally sliced SMG block.

    Attributes:
        dim: the sliced (intra-block) dimension.
        graph: the rewritten execution graph — "solely employed for UTA;
            the original dataflow remains unchanged" (section 4.3).
        stages: reduction stages in dependency order.
        tile_op_names: pass-1 ops evaluated per intra-block (ancestors of
            the stage outputs, stages included).
        pass2_op_names: pass-2 ops evaluated per intra-block after the
            aggregation loop, with stage outputs treated as given; includes
            recomputation of tile-local ancestors they need.
        rewritten: whether a structural rewrite (variance decomposition)
            fired during broadcast postposition.
    """

    dim: str
    graph: DataflowGraph
    stages: list[ReductionStage]
    tile_op_names: list[str]
    pass2_op_names: list[str]
    rewritten: bool = False

    @property
    def stage_outputs(self) -> list[str]:
        return [s.output for s in self.stages]

    @property
    def uses_uta(self) -> bool:
        return any(s.uses_uta for s in self.stages)

    @property
    def has_pass2(self) -> bool:
        return bool(self.pass2_op_names)

    def describe(self) -> str:
        lines = [f"AggregationPlan(dim={self.dim!r}, "
                 f"{'UTA' if self.uses_uta else 'SA'}, "
                 f"{len(self.stages)} stages, pass2={self.has_pass2})"]
        for s in self.stages:
            lines.append(f"  stage {s.op_name} [{s.combiner}] -> {s.output}: "
                         f"{s.update.describe()}")
        return "\n".join(lines)


class TemporalSliceError(Exception):
    """Raised when a dimension cannot be temporally sliced."""


def temporal_dim_candidates(smg: SMG, excluded: set[str]) -> list[str]:
    """Dimensions eligible for temporal slicing, best-priority first.

    Priority follows Algorithm 1 line 9: the dimension along which the SMG
    block holds the largest data-space volume wins, because slicing it
    yields the greatest on-chip footprint reduction.  Only dimensions that
    actually carry mappings (there is something to slice) are returned.
    """
    candidates = []
    for dim in smg.dims:
        if dim in excluded:
            continue
        if not smg.mappings_along(dim):
            continue
        candidates.append(dim)
    candidates.sort(key=lambda d: smg.volume_along(d), reverse=True)
    return candidates


def _ancestor_ops(graph: DataflowGraph, targets: set[str]) -> list[Op]:
    """Ops needed to produce ``targets``, topologically ordered."""
    ops = graph.topological_ops()
    needed = set(targets)
    chosen: list[Op] = []
    for op in reversed(ops):
        if op.output in needed:
            chosen.append(op)
            needed.update(op.inputs)
    chosen.reverse()
    return chosen


def plan_temporal_slice(smg: SMG, dim: str) -> AggregationPlan:
    """Build the aggregation plan for slicing ``smg`` along ``dim``.

    Applies broadcast-postposition rewrites, derives each reduction stage's
    update function, and partitions ops into the pass-1 aggregation loop
    and the pass-2 epilogue.

    Raises:
        TemporalSliceError: if the graph is missing or the dimension carries
            a dependent All-to-One chain whose update functions cannot be
            synthesised (the paper's unschedulable case — the caller falls
            back to SMG partitioning).
    """
    if smg.graph is None:
        raise TemporalSliceError("SMG has no attached dataflow graph")
    if dim not in smg.dims:
        raise TemporalSliceError(f"unknown dimension {dim!r}")

    exec_graph, rewritten = prepare_for_temporal_slicing(smg.graph, dim)

    # Reduction stages: every op reducing over `dim` in the rewritten graph,
    # in topological order (which is also chain-dependency order).
    stage_ops = [op for op in exec_graph.topological_ops()
                 if dim in op.reduce_dims]

    try:
        updates = synthesize_update_functions(exec_graph, dim, stage_ops)
    except UTAError as exc:
        raise TemporalSliceError(
            f"cannot temporally slice {smg.name!r} along {dim!r}: {exc}"
        ) from exc

    stages = [
        ReductionStage(op.name, op.output, op.reduce_kind, upd)
        for op, upd in zip(stage_ops, updates)
    ]

    stage_outputs = {s.output for s in stages}
    tile_ops = _ancestor_ops(exec_graph, stage_outputs)
    tile_names = [op.name for op in tile_ops]

    # Pass 2 produces every non-aggregate kernel output; stage ops are not
    # re-executed (their outputs are the final aggregates).
    remaining_outputs = {t for t in exec_graph.output_tensors
                         if t not in stage_outputs}
    pass2_names: list[str] = []
    if remaining_outputs:
        needed = set(remaining_outputs)
        chosen: list[Op] = []
        for op in reversed(exec_graph.topological_ops()):
            if op.output in needed and op.output not in stage_outputs:
                chosen.append(op)
                needed.update(op.inputs)
        chosen.reverse()
        pass2_names = [op.name for op in chosen]

    return AggregationPlan(
        dim=dim,
        graph=exec_graph,
        stages=stages,
        tile_op_names=tile_names,
        pass2_op_names=pass2_names,
        rewritten=rewritten,
    )


def try_plan_best_temporal_slice(smg: SMG, excluded: set[str],
                                 ) -> AggregationPlan | None:
    """Attempt temporal slicing on candidate dims in priority order.

    Returns the first plan that synthesises, or None when no dimension is
    temporally sliceable (Algorithm 1 then reports the spatial-only
    schedule, or a failure if that also did not apply).
    """
    for dim in temporal_dim_candidates(smg, excluded):
        try:
            return plan_temporal_slice(smg, dim)
        except TemporalSliceError:
            continue
    return None
