"""Schedule auditor: static re-verification of compiled schedules.

Every layer of the pipeline (SMG build -> slicing/partitioning -> memory
planning -> tuning) can miscompile silently, and the executors faithfully
run whatever schedule they are handed.  The auditor re-checks each emitted
:class:`~repro.core.schedule.KernelSchedule` against the paper's own
invariants *independently of the compiler that produced it*:

* **resources** — Algorithm 1's checkRsrc, re-estimated against the target
  GPU's :class:`~repro.core.resources.ResourceConfig` (section 5.1);
* **memory** — memory-hierarchy placement legality per section 5.4
  (inputs/outputs in global, O2A sources and A2O sinks in shared,
  One-to-One intermediates and temporal aggregates in registers);
* **uta** — Update-then-Aggregate completeness per section 5.3: every
  reduction along the sliced dimension is a stage, stage order matches
  the dependency order, and each stage's update function equals an
  independently re-synthesised one;
* **spatial** — Table 3 slicing legality: no All-to-One and no
  intermediate-sourced One-to-All mapping resides within a spatially
  sliced dimension;
* **smg** — structural mapping-direction invariants
  (:meth:`repro.core.smg.SMG.validate`);
* **config** — the chosen configuration actually covers the schedule
  (a block size per spatial dim, a sane tile, temporal/spatial disjoint).

A seeded mutation self-test (:func:`run_selftest`) proves the auditor has
teeth: schedules doctored with a dropped update function, an over-budget
tile, an illegal memory placement, or an illegally sliced dimension must
each produce at least one finding.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from .builder import build_smg
from .memory_planner import check_memory_plan
from .resources import ResourceConfig, estimate_block_resources
from .schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from .smg import SMGError
from .update_functions import UTAError, synthesize_update_functions

#: The checks the auditor runs, in report order.
AUDIT_CHECKS = ("config", "smg", "spatial", "resources", "memory", "uta")


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation discovered in a compiled schedule."""

    check: str        # one of AUDIT_CHECKS
    kernel: str       # kernel name the finding is anchored to
    message: str
    severity: str = "error"   # "error" | "warning"

    def describe(self) -> str:
        return f"[{self.check}] {self.kernel}: {self.message}"


@dataclass
class AuditReport:
    """Outcome of auditing one :class:`ProgramSchedule`."""

    program: str
    target: str
    findings: list[AuditFinding] = field(default_factory=list)
    kernels_audited: int = 0
    kernels_skipped: int = 0   # barrier/data-movement kernels

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    @property
    def errors(self) -> list[AuditFinding]:
        return [f for f in self.findings if f.severity == "error"]

    def by_check(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.check] = counts.get(f.check, 0) + 1
        return counts

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.errors)} violation(s)"
        lines = [f"audit {self.program} on {self.target}: "
                 f"{self.kernels_audited} kernel(s) audited, "
                 f"{self.kernels_skipped} barrier kernel(s) skipped — {status}"]
        for f in self.findings:
            lines.append(f"  {f.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "target": self.target,
            "ok": self.ok,
            "kernels_audited": self.kernels_audited,
            "kernels_skipped": self.kernels_skipped,
            "findings": [
                {"check": f.check, "kernel": f.kernel, "severity": f.severity,
                 "message": f.message}
                for f in self.findings
            ],
        }


def _resolve_rc(target) -> tuple[ResourceConfig, str]:
    """Accept either a GPUSpec-like object or a raw ResourceConfig."""
    if isinstance(target, ResourceConfig):
        return target, "rc"
    rc = target.resource_config()
    return rc, getattr(target, "name", "gpu")


# ----------------------------------------------------------------------
# Per-kernel checks
# ----------------------------------------------------------------------


def _check_config(kernel: KernelSchedule) -> list[AuditFinding]:
    out: list[AuditFinding] = []

    def finding(msg: str, severity: str = "error") -> None:
        out.append(AuditFinding("config", kernel.name, msg, severity))

    try:
        cfg = kernel.effective_config()
    except ValueError as exc:
        finding(str(exc))
        return out

    for dim in kernel.spatial_dims:
        block = cfg.block_of(dim)
        if block is None:
            finding(f"no block size for spatial dim {dim!r}")
        elif block < 1:
            finding(f"non-positive block size {block} for dim {dim!r}")
        elif dim in kernel.smg.dims and block > kernel.smg.dim_size(dim):
            finding(f"block size {block} exceeds extent of dim {dim!r} "
                    f"({kernel.smg.dim_size(dim)})", severity="warning")
    for dim, _b in cfg.block:
        if dim not in kernel.spatial_dims:
            finding(f"config blocks dim {dim!r} which is not spatially sliced")

    if kernel.plan is not None:
        tdim = kernel.plan.dim
        if tdim in kernel.spatial_dims:
            finding(f"temporal dim {tdim!r} is also spatially sliced")
        if tdim not in kernel.smg.dims:
            finding(f"temporal dim {tdim!r} is not an SMG dimension")
        if cfg.tile is not None and cfg.tile < 1:
            finding(f"non-positive temporal tile {cfg.tile}")
    elif cfg.tile is not None:
        finding("config carries a temporal tile but the kernel has no "
                "aggregation plan", severity="warning")
    return out


def _check_spatial(kernel: KernelSchedule) -> list[AuditFinding]:
    """Table 3 legality for every spatially sliced dimension."""
    out: list[AuditFinding] = []
    smg = kernel.smg
    for dim in kernel.spatial_dims:
        if dim not in smg.dims:
            out.append(AuditFinding(
                "spatial", kernel.name,
                f"sliced dim {dim!r} is not an SMG dimension"))
            continue
        blocking = smg.blocking_mappings_for_spatial(dim)
        if blocking:
            descr = "; ".join(m.describe() for m in blocking[:3])
            out.append(AuditFinding(
                "spatial", kernel.name,
                f"dim {dim!r} is spatially sliced but carries blocking "
                f"mapping(s): {descr}"))
        missing = [it.name for it in smg.iteration_spaces()
                   if not it.has_dim(dim)]
        if missing:
            out.append(AuditFinding(
                "spatial", kernel.name,
                f"dim {dim!r} is sliced but iteration space(s) "
                f"{missing} do not extend along it (blocks would "
                f"re-execute their work)", severity="warning"))
    return out


def _check_resources(kernel: KernelSchedule,
                     rc: ResourceConfig) -> list[AuditFinding]:
    """Algorithm 1's checkRsrc, re-run on the *chosen* configuration."""
    try:
        cfg = kernel.effective_config()
    except ValueError:
        return []  # already reported by the config check
    try:
        res = estimate_block_resources(kernel, cfg, rc)
    except (KeyError, ValueError) as exc:
        return [AuditFinding("resources", kernel.name,
                             f"resource estimation failed: {exc}")]
    out: list[AuditFinding] = []
    if res.smem_bytes > rc.smem_per_block:
        out.append(AuditFinding(
            "resources", kernel.name,
            f"shared memory over budget under {cfg.describe()}: "
            f"{res.smem_bytes} > {rc.smem_per_block} bytes"))
    if res.reg_bytes > rc.regs_per_block:
        out.append(AuditFinding(
            "resources", kernel.name,
            f"register file over budget under {cfg.describe()}: "
            f"{res.reg_bytes} > {rc.regs_per_block} bytes"))
    return out


def _check_memory(kernel: KernelSchedule) -> list[AuditFinding]:
    return [AuditFinding("memory", kernel.name, msg)
            for msg in check_memory_plan(kernel)]


def _check_uta(kernel: KernelSchedule) -> list[AuditFinding]:
    """Section 5.3 completeness of the temporal aggregation plan."""
    plan = kernel.plan
    if plan is None:
        return []
    out: list[AuditFinding] = []

    def finding(msg: str) -> None:
        out.append(AuditFinding("uta", kernel.name, msg))

    graph = plan.graph
    try:
        topo = graph.topological_ops()
    except Exception as exc:  # malformed rewritten graph
        finding(f"execution graph is not a DAG: {exc}")
        return out

    expected_stage_ops = [op for op in topo if plan.dim in op.reduce_dims]
    expected_names = [op.name for op in expected_stage_ops]
    actual_names = [s.op_name for s in plan.stages]
    if expected_names != actual_names:
        missing = [n for n in expected_names if n not in actual_names]
        extra = [n for n in actual_names if n not in expected_names]
        if missing:
            finding(f"reduction op(s) {missing} reduce over sliced dim "
                    f"{plan.dim!r} but have no aggregation stage")
        if extra:
            finding(f"stage(s) {extra} do not correspond to a reduction "
                    f"over {plan.dim!r}")
        if not missing and not extra:
            finding(f"stage order {actual_names} does not match the "
                    f"dependency order {expected_names}")
        return out

    # Every stage may only re-normalise with aggregates of earlier stages.
    earlier: set[str] = set()
    for stage in plan.stages:
        illegal = set(stage.update.referenced_aggs()) - earlier
        if illegal:
            finding(f"stage {stage.op_name!r} update references aggregates "
                    f"{sorted(illegal)} that are not earlier in the chain")
        earlier.add(stage.output)

    # Re-synthesise the update functions independently and compare: a
    # dropped or doctored update function is exactly what the executors
    # cannot detect at runtime (the paper's section 4.3 derivation).
    try:
        expected_updates = synthesize_update_functions(
            graph, plan.dim, expected_stage_ops)
    except UTAError as exc:
        finding(f"chain along {plan.dim!r} is not UTA-synthesisable, yet "
                f"the kernel was temporally sliced: {exc}")
        return out
    for stage, expected in zip(plan.stages, expected_updates):
        if stage.update != expected:
            finding(f"stage {stage.op_name!r} update function "
                    f"{stage.update.describe()!r} differs from the "
                    f"re-derived {expected.describe()!r}")

    # Pass-1/pass-2 partition must cover every kernel output.
    tile_set = set(plan.tile_op_names)
    stage_outputs = set(plan.stage_outputs)
    producers = {op.output: op.name for op in graph.ops}
    for t in graph.output_tensors:
        if t in stage_outputs:
            continue
        prod = producers.get(t)
        if prod is None:
            finding(f"output tensor {t!r} has no producing op")
        elif prod not in plan.pass2_op_names:
            finding(f"output tensor {t!r} is neither an aggregate nor "
                    f"produced by a pass-2 op")
    # Pass 1 must contain every ancestor of the stage outputs.
    needed = set(stage_outputs)
    for op in reversed(topo):
        if op.output in needed:
            if op.name not in tile_set:
                finding(f"op {op.name!r} feeds an aggregation stage but is "
                        f"missing from the pass-1 tile loop")
            needed.update(op.inputs)
    for name in list(plan.tile_op_names) + list(plan.pass2_op_names):
        try:
            graph.op(name)
        except KeyError:
            finding(f"plan references unknown op {name!r}")
    return out


def _check_smg(kernel: KernelSchedule) -> list[AuditFinding]:
    out: list[AuditFinding] = []
    try:
        kernel.smg.validate()
    except SMGError as exc:
        out.append(AuditFinding("smg", kernel.name, str(exc)))
    # The execution graph (post-rewrite when UTA applies) must itself lift
    # to a structurally valid SMG — the rewrites may not corrupt it.
    if kernel.plan is not None:
        try:
            build_smg(kernel.plan.graph, name=f"{kernel.name}@audit").validate()
        except Exception as exc:
            out.append(AuditFinding(
                "smg", kernel.name,
                f"rewritten execution graph fails SMG validation: {exc}"))
    return out


def audit_kernel(kernel: KernelSchedule,
                 rc: ResourceConfig) -> list[AuditFinding]:
    """Run every auditor check on one kernel schedule."""
    if kernel.meta.get("barrier"):
        # Pure data movement: no on-chip residency, no plan, no placement.
        return []
    findings: list[AuditFinding] = []
    findings.extend(_check_config(kernel))
    findings.extend(_check_smg(kernel))
    findings.extend(_check_spatial(kernel))
    findings.extend(_check_resources(kernel, rc))
    findings.extend(_check_memory(kernel))
    findings.extend(_check_uta(kernel))
    return findings


def audit_program(program: ProgramSchedule, target,
                  name: str | None = None) -> AuditReport:
    """Audit every kernel of a compiled program schedule.

    Args:
        program: the schedule to audit.
        target: a :class:`~repro.hw.specs.GPUSpec` or a raw
            :class:`~repro.core.resources.ResourceConfig`.
    """
    rc, target_name = _resolve_rc(target)
    report = AuditReport(program=name or program.name, target=target_name)
    for kernel in program.kernels:
        if kernel.meta.get("barrier"):
            report.kernels_skipped += 1
            continue
        report.kernels_audited += 1
        report.findings.extend(audit_kernel(kernel, rc))
    return report


def audit_model(model, target) -> AuditReport:
    """Audit a :class:`~repro.core.compiler.CompiledModel` (every unique
    subprogram schedule; occurrences do not change the static audit)."""
    rc, target_name = _resolve_rc(target)
    report = AuditReport(program=model.name, target=target_name)
    for sub in model.subprograms:
        sub_report = audit_program(sub.schedule, rc,
                                   name=sub.schedule.name)
        report.findings.extend(sub_report.findings)
        report.kernels_audited += sub_report.kernels_audited
        report.kernels_skipped += sub_report.kernels_skipped
    return report


# ----------------------------------------------------------------------
# Seeded mutation self-test: prove the auditor fires
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SelftestResult:
    mutation: str
    applied: bool          # a mutation site existed in the program
    flagged: bool          # the auditor produced an error finding
    checks_fired: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return (not self.applied) or self.flagged


def _mutate_drop_update_function(program: ProgramSchedule) -> bool:
    """Replace the first non-identity update function with the identity —
    the classic silent UTA miscompile (stale partials never re-normalised)."""
    from .update_functions import UpdateFunction
    from .temporal_slicer import ReductionStage

    for kernel in program.kernels:
        if kernel.plan is None:
            continue
        for i, stage in enumerate(kernel.plan.stages):
            if not stage.update.is_identity:
                kernel.plan.stages[i] = ReductionStage(
                    stage.op_name, stage.output, stage.combiner,
                    UpdateFunction(stage.output, (), ()))
                return True
    return False


def _mutate_drop_stage(program: ProgramSchedule) -> bool:
    """Remove the last aggregation stage: its reduction silently returns
    only the final tile's partial."""
    for kernel in program.kernels:
        if kernel.plan is not None and kernel.plan.stages:
            kernel.plan.stages.pop()
            return True
    return False


def _mutate_inflate_config(program: ProgramSchedule) -> bool:
    """Blow the chosen configuration up to whole-extent blocks and tiles,
    exactly the schedules checkRsrc exists to reject."""
    for kernel in program.kernels:
        if kernel.meta.get("barrier") or not kernel.spatial_dims:
            continue
        block = tuple((d, kernel.smg.dim_size(d))
                      for d in kernel.spatial_dims)
        tile = (kernel.smg.dim_size(kernel.plan.dim)
                if kernel.plan is not None else None)
        kernel.config = ScheduleConfig(block=block, tile=tile)
        return True
    return False


def _mutate_misplace_input(program: ProgramSchedule) -> bool:
    """Claim a global input lives in shared memory (illegal per 5.4)."""
    for kernel in program.kernels:
        if kernel.meta.get("barrier") or not kernel.memory_levels:
            continue
        for t in kernel.exec_graph.input_tensors:
            if t in kernel.memory_levels:
                kernel.memory_levels[t] = "shared"
                return True
    return False


def _mutate_slice_blocked_dim(program: ProgramSchedule) -> bool:
    """Spatially slice the temporal (reduction-carrying) dimension —
    forbidden by Table 3; blocks would race on the aggregation."""
    for kernel in program.kernels:
        if kernel.plan is None:
            continue
        tdim = kernel.plan.dim
        kernel.spatial_dims = tuple(kernel.spatial_dims) + (tdim,)
        if kernel.config is not None:
            kernel.config = ScheduleConfig(
                block=tuple(kernel.config.block) + ((tdim, 1),),
                tile=kernel.config.tile)
        return True
    return False


#: Name -> mutator; each mutator edits the program in place and returns
#: whether a mutation site existed.
SEEDED_MUTATIONS = {
    "drop-update-function": _mutate_drop_update_function,
    "drop-reduction-stage": _mutate_drop_stage,
    "inflate-config-past-budget": _mutate_inflate_config,
    "misplace-input-to-shared": _mutate_misplace_input,
    "slice-blocked-dimension": _mutate_slice_blocked_dim,
}


def run_selftest(program: ProgramSchedule, target) -> list[SelftestResult]:
    """Apply each seeded mutation to a deep copy of ``program`` and check
    the auditor flags it.  The unmutated program must audit clean for the
    self-test to be meaningful — callers should assert that separately."""
    rc, _ = _resolve_rc(target)
    results: list[SelftestResult] = []
    for name, mutate in SEEDED_MUTATIONS.items():
        mutated = copy.deepcopy(program)
        applied = mutate(mutated)
        if not applied:
            results.append(SelftestResult(name, applied=False, flagged=False))
            continue
        report = audit_program(mutated, rc, name=f"{program.name}+{name}")
        fired = tuple(sorted({f.check for f in report.errors}))
        results.append(SelftestResult(name, applied=True,
                                      flagged=not report.ok,
                                      checks_fired=fired))
    return results
