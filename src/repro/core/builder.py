"""Construction of Space-Mapping Graphs from dataflow graphs (section 4.1).

Per-operator SMGs follow Figure 3: each input tensor becomes a data space,
the loop nest becomes an iteration space, and mappings are derived from the
operator's access form.  The fused SMG for a multi-operator subgraph follows
Figure 4: producer-output and consumer-input data spaces of the same tensor
are connected with One-to-One mappings and fused into a single intermediate
data space via dimension alignment — here realised directly by giving each
tensor exactly one data-space node.
"""

from __future__ import annotations

from ..ir.graph import DataflowGraph
from ..ir.ops import Op
from .mappings import A2O, O2A, O2O, Mapping
from .smg import SMG, SMGError
from .spaces import DataSpace, IterationSpace


def _global_dims(graph: DataflowGraph) -> tuple[str, ...]:
    """Ordered union of all operator iteration dimensions."""
    dims: list[str] = []
    for op in graph.ops:
        for d in op.iter_dims:
            if d not in dims:
                dims.append(d)
    return tuple(dims)


def _iteration_space_name(op: Op, taken: set[str]) -> str:
    name = op.name
    while name in taken:
        name = f"{name}@it"
    return name


def build_smg(graph: DataflowGraph, name: str | None = None) -> SMG:
    """Lift a barrier-free dataflow graph into its fused SMG.

    Raises :class:`SMGError` when the graph contains shape/layout barrier
    operators — those must be cut away by program partitioning first.
    """
    graph.validate()
    for op in graph.ops:
        if op.is_barrier:
            raise SMGError(
                f"op {op.name!r} is a layout barrier; partition the program "
                "before building SMGs"
            )

    smg = SMG(
        name=name or graph.name,
        dims=_global_dims(graph),
        registry=graph.dims,
        graph=graph,
    )

    inputs = set(graph.input_tensors)
    outputs = set(graph.output_tensors)

    # One data space per tensor: producer-output / consumer-input pairs are
    # fused upfront (the paper's step 4 in Figure 4).
    for tname, spec in graph.tensors.items():
        if not any(tname in op.inputs or op.output == tname for op in graph.ops):
            continue
        role = "input" if tname in inputs else "output" if tname in outputs else "intermediate"
        smg.add_space(DataSpace(
            name=tname,
            dims=spec.dims,
            dtype=spec.dtype,
            role=role,
            is_weight=spec.is_weight,
        ))

    # One iteration space per operator, with mappings derived from the
    # access form (Figure 3's GEMM example generalised).
    for op in graph.ops:
        it_name = _iteration_space_name(op, set(smg.spaces))
        smg.add_space(IterationSpace(
            name=it_name,
            dims=op.iter_dims,
            op_name=op.name,
            op_kind=op.kind,
        ))
        for idx, (tname, _axes) in enumerate(zip(op.inputs, op.input_axes)):
            bcast = op.broadcast_dims_of_input(idx)
            if bcast:
                smg.add_mapping(Mapping(
                    src=tname, dst=it_name, kind=O2A,
                    dims=frozenset(bcast), input_index=idx,
                ))
            else:
                smg.add_mapping(Mapping(
                    src=tname, dst=it_name, kind=O2O, input_index=idx,
                ))
        if op.reduce_dims:
            smg.add_mapping(Mapping(
                src=it_name, dst=op.output, kind=A2O,
                dims=frozenset(op.reduce_dims), reduce_kind=op.reduce_kind,
            ))
        else:
            smg.add_mapping(Mapping(src=it_name, dst=op.output, kind=O2O))

    smg.validate()
    return smg


def build_op_smg(graph: DataflowGraph, op_name: str) -> SMG:
    """SMG of a single operator inside ``graph`` (Figure 3).

    Tensors touched only by this op keep their graph-level roles relaxed to
    input/output of the one-op kernel.
    """
    op = graph.op(op_name)
    sub = DataflowGraph(f"{graph.name}.{op_name}", dims=graph.dims)
    for t in (*op.inputs, op.output):
        sub.tensors.setdefault(t, graph.tensors[t])
    sub.ops.append(op)
    return build_smg(sub)


def iteration_space_of(smg: SMG, op_name: str) -> str:
    """Name of the iteration-space node abstracting operator ``op_name``."""
    for s in smg.iteration_spaces():
        if s.op_name == op_name:
            return s.name
    raise SMGError(f"SMG {smg.name!r} has no iteration space for op {op_name!r}")


def op_of_iteration_space(smg: SMG, space_name: str) -> Op:
    """The IR operator behind an iteration-space node."""
    space = smg.space(space_name)
    if not isinstance(space, IterationSpace):
        raise SMGError(f"{space_name!r} is not an iteration space")
    if smg.graph is None:
        raise SMGError("SMG has no attached dataflow graph")
    return smg.graph.op(space.op_name)
