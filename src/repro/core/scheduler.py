"""Resource-aware slicing: Algorithm 1 of the paper (section 5.1).

Given an SMG and a hardware resource configuration, the algorithm:

1. finds all spatially sliceable dimensions and slices them (lines 3-4);
   no feasible dimension means the fused space cannot be parallelised and
   the SMG must be partitioned;
2. checks resources and enumerates schedule configurations for the
   spatial-only schedule (lines 5-8);
3. attempts temporal slicing on the highest-priority remaining dimension
   (lines 9-14) — tried even when the spatial schedule already fits,
   because serialisation both fixes over-budget schedules and exposes
   extra locality;
4. returns every scheduled variant with its search space, or failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import timed_phase
from .memory_planner import apply_memory_plan
from .resources import ResourceConfig, enumerate_configs
from .schedule import KernelSchedule, ScheduleConfig
from .smg import SMG
from .spatial_slicer import slice_spatial
from .temporal_slicer import (
    AggregationPlan,
    TemporalSliceError,
    plan_temporal_slice,
    temporal_dim_candidates,
)


@dataclass
class SlicingOptions:
    """Feature switches for ablations and capability-limited baselines.

    * ``enable_temporal`` — turn the temporal slicer off entirely
      (the Base(SS) ablation variant of Figure 16a);
    * ``enable_uta`` — allow Update-then-Aggregate; when off, dependent
      All-to-One chains are unschedulable (what a tile-graph system like
      Welder faces, section 6.6);
    * ``max_configs`` — cap on the enumerated search space.
    """

    enable_temporal: bool = True
    enable_uta: bool = True
    max_configs: int = 24


@dataclass
class SlicingResult:
    """Outcome of Algorithm 1: scheduled SMGs plus their search spaces.

    ``phase_times`` records the wall-clock of each analysis phase; the
    compilation-time breakdown of Table 4 is assembled from these.
    """

    candidates: list[KernelSchedule] = field(default_factory=list)
    phase_times: dict[str, float] = field(default_factory=dict)

    @property
    def scheduled(self) -> bool:
        return bool(self.candidates)

    def add_time(self, phase: str, seconds: float) -> None:
        self.phase_times[phase] = self.phase_times.get(phase, 0.0) + seconds


def resource_aware_slicing(smg: SMG, rc: ResourceConfig,
                           options: SlicingOptions | None = None,
                           name: str | None = None,
                           trace: bool = True) -> SlicingResult:
    """Run Algorithm 1 on one SMG.

    Returns a :class:`SlicingResult`; ``scheduled`` is False exactly when
    the paper's algorithm returns False (line 16) and the caller must
    switch to the partitioning state (section 5.2).
    """
    options = options or SlicingOptions()
    result = SlicingResult()
    kernel_name = name or smg.name

    with timed_phase("spatial_slice", result.add_time, category="compile",
                     enabled=trace, smg=smg.name):
        spatial = slice_spatial(smg)
    if spatial.empty:
        return result  # not parallelisable -> partition state

    # Spatial-only schedule (lines 4-8).
    ss_kernel = KernelSchedule(
        name=f"{kernel_name}", smg=smg, spatial_dims=spatial.dims,
        meta={"slicing": "spatial"},
    )
    with timed_phase("enum_cfg", result.add_time, category="compile",
                     enabled=trace, smg=smg.name):
        ss_cfgs = enumerate_configs(ss_kernel, rc, options.max_configs)
    if ss_cfgs:
        ss_kernel.search_space = ss_cfgs
        with timed_phase("memory_plan", result.add_time,
                         category="compile", enabled=trace, smg=smg.name):
            apply_memory_plan(ss_kernel)
        result.candidates.append(ss_kernel)

    # Temporal slicing on the highest-priority remaining dimension
    # (lines 9-14) — attempted whether or not spatial slicing fit.
    if options.enable_temporal:
        excluded = set(spatial.dims)
        plan: AggregationPlan | None = None
        with timed_phase("temporal_slice", result.add_time,
                         category="compile", enabled=trace, smg=smg.name):
            for dim in temporal_dim_candidates(smg, excluded):
                try:
                    plan = plan_temporal_slice(smg, dim)
                except TemporalSliceError:
                    continue
                if plan.uses_uta and not options.enable_uta:
                    plan = None
                    continue
                break  # only the highest-priority feasible dim is sliced
        if plan is not None:
            ts_kernel = KernelSchedule(
                name=f"{kernel_name}", smg=smg, spatial_dims=spatial.dims,
                plan=plan, meta={"slicing": "spatial+temporal"},
            )
            with timed_phase("enum_cfg", result.add_time,
                             category="compile", enabled=trace, smg=smg.name):
                ts_cfgs = enumerate_configs(ts_kernel, rc,
                                            options.max_configs)
            if ts_cfgs:
                ts_kernel.search_space = ts_cfgs
                with timed_phase("memory_plan", result.add_time,
                                 category="compile", enabled=trace, smg=smg.name):
                    apply_memory_plan(ts_kernel)
                result.candidates.append(ts_kernel)

    return result
