"""The SpaceFusion compiler: the full pipeline of Figure 9 (section 5).

``SpaceFusionCompiler.compile_graph`` drives the two-phase design:

* **Program preprocessing** — the input graph is assumed barrier-free (use
  :func:`repro.ir.program.partition_at_barriers` for whole models); the
  fused SMG is constructed via dimension alignment.
* **Auto-scheduling** — alternates between the *slicing* state
  (resource-aware slicing, Algorithm 1) and the *partitioning* state
  (Algorithm 2 + section 5.3 candidate exploration) until every SMG has an
  efficient schedule, then auto-tunes block configurations against the
  injected timing function (the device cost model in this reproduction;
  real kernel timings in the paper).

The timing function is injected rather than imported so the core stays
independent of the hardware substrate; see :mod:`repro.pipeline` for the
pre-wired convenience entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir.graph import DataflowGraph
from ..obs import get_tracer, timed_phase
from ..ir.program import Subprogram, TensorProgram, partition_at_barriers
from .autotuner import DEFAULT_ALPHA, DefaultTuner, TuneResult, pick_best
from .builder import build_smg
from .memory_planner import apply_memory_plan
from .partition import PartitionCandidate, partition_round
from .resources import ResourceConfig, enumerate_configs
from .schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from .scheduler import SlicingOptions, SlicingResult, resource_aware_slicing
from .smg import SMGError


class CompileError(Exception):
    """Raised when a graph cannot be compiled at all."""


@dataclass
class FusionOptions:
    """Compiler feature switches.

    The defaults are full SpaceFusion.  The ablation variants of Figure 16a
    and the capability-limited baseline compilers of section 6.6 are all
    expressed as restrictions:

    * Base(SS):    ``enable_temporal=False, auto_tune=False``
    * Base+AS:     ``enable_temporal=False``
    * Base+TS:     ``auto_tune=False``
    * AStitch-like: ``fuse_compute_intensive=False``
    * Welder-like: ``enable_uta=False``
    """

    enable_temporal: bool = True
    enable_uta: bool = True
    fuse_compute_intensive: bool = True
    auto_tune: bool = True
    explore_partition_candidates: bool = True
    alpha: float = DEFAULT_ALPHA
    max_configs: int = 24
    #: Retain the per-config (config, time) campaign trace on every
    #: TuneResult.  The serve path turns this off to cut compile-path
    #: memory on large search spaces; the Table 4/5 benchmarks keep it.
    #: Excluded from repr() on purpose: it does not affect the compiled
    #: schedule, so it must not perturb disk-cache keys.
    keep_timings: bool = field(default=True, repr=False)

    def slicing_options(self) -> SlicingOptions:
        return SlicingOptions(
            enable_temporal=self.enable_temporal,
            enable_uta=self.enable_uta,
            max_configs=self.max_configs,
        )


@dataclass
class CompileStats:
    """Accounting for the compilation-time analysis (Tables 4/5)."""

    phase_times: dict[str, float] = field(default_factory=dict)
    #: Simulated auto-tuning campaign wall-clock (test runs on the device).
    tuning_wall_time: float = 0.0
    configs_evaluated: int = 0
    configs_quit_early: int = 0
    kernels: int = 0
    partition_rounds: int = 0

    def add_phase(self, name: str, seconds: float) -> None:
        self.phase_times[name] = self.phase_times.get(name, 0.0) + seconds

    def merge(self, other: "CompileStats") -> None:
        for k, v in other.phase_times.items():
            self.add_phase(k, v)
        self.tuning_wall_time += other.tuning_wall_time
        self.configs_evaluated += other.configs_evaluated
        self.configs_quit_early += other.configs_quit_early
        self.kernels += other.kernels
        self.partition_rounds += other.partition_rounds

    @property
    def total_time(self) -> float:
        return sum(self.phase_times.values()) + self.tuning_wall_time


@dataclass
class CompiledSubprogram:
    schedule: ProgramSchedule
    stats: CompileStats
    occurrences: int = 1


@dataclass
class CompiledModel:
    """A compiled tensor program: one schedule per unique subprogram."""

    name: str
    subprograms: list[CompiledSubprogram]
    stats: CompileStats

    def expanded_schedule(self) -> ProgramSchedule:
        """Full execution order with repeated subprograms unrolled."""
        full = ProgramSchedule(self.name)
        for sub in self.subprograms:
            for _ in range(sub.occurrences):
                full.kernels.extend(sub.schedule.kernels)
        outs = sorted({t for sub in self.subprograms
                       for t in str(sub.schedule.meta.get("outputs", "")
                                    ).split(",") if t})
        if outs:
            full.meta["outputs"] = ",".join(outs)
        return full


TimingFn = Callable[[KernelSchedule, ScheduleConfig], float]


def schedule_single_op_kernels(graph: DataflowGraph, rc: ResourceConfig,
                               timing_fn: TimingFn | None = None,
                               efficiency: float = 1.0,
                               options: FusionOptions | None = None,
                               tuner: DefaultTuner | None = None,
                               ) -> list[KernelSchedule]:
    """Schedule every operator of ``graph`` as its own kernel.

    This is both the compiler's last-resort fallback and the building block
    of the unfused baselines.  Reduction-free dims parallelise spatially;
    kernels whose SMG has no spatially sliceable dimension degrade to a
    single-block launch.
    """
    from .partition import subgraph_from_ops

    options = options or FusionOptions()
    tuner = tuner or DefaultTuner()
    kernels: list[KernelSchedule] = []
    outputs = set(graph.output_tensors)
    for op in graph.topological_ops():
        downstream = {
            t for other in graph.ops for t in other.inputs if other is not op
        } | outputs
        sub = subgraph_from_ops(graph, [op], f"{graph.name}.{op.name}",
                                downstream_needs=downstream)
        smg = build_smg(sub)
        result = resource_aware_slicing(
            smg, rc, SlicingOptions(enable_temporal=options.enable_temporal,
                                    enable_uta=options.enable_uta,
                                    max_configs=options.max_configs))
        if result.candidates:
            kernel = result.candidates[0]
        else:
            kernel = KernelSchedule(
                name=sub.name, smg=smg, spatial_dims=(),
                search_space=enumerate_configs(
                    KernelSchedule(sub.name, smg, ()), rc) or
                [ScheduleConfig(block=())],
                meta={"slicing": "single-block"})
            apply_memory_plan(kernel)
        kernel.meta["efficiency"] = efficiency
        if timing_fn is not None and len(kernel.search_space) > 1:
            with get_tracer().span("tuning", category="compile",
                                   kernel=kernel.name) as sp:
                res = tuner.tune(kernel, timing_fn,
                                 keep_timings=options.keep_timings)
                sp.note(modeled_wall_s=res.tuning_wall_time,
                        configs=res.configs_evaluated,
                        quit_early=res.configs_quit_early)
        else:
            kernel.config = kernel.search_space[0] if kernel.search_space \
                else ScheduleConfig(block=())
        kernels.append(kernel)
    return kernels


class SpaceFusionCompiler:
    """End-to-end SpaceFusion auto-scheduler."""

    def __init__(self, rc: ResourceConfig, timing_fn: TimingFn,
                 options: FusionOptions | None = None,
                 tuner: DefaultTuner | None = None) -> None:
        self.rc = rc
        self.timing_fn = timing_fn
        self.options = options or FusionOptions()
        #: Tuning policy every campaign routes through.  The default is
        #: the paper's enumeration-with-early-quit; a TuneDB-backed
        #: :class:`repro.tune.GuidedTuner` reuses and reorders campaigns
        #: while choosing bitwise-identical winners.
        self.tuner = tuner or DefaultTuner()
        #: Census of distinct fusion patterns discovered (Table 6).
        self.fusion_patterns: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def compile_graph(self, graph: DataflowGraph,
                      name: str | None = None,
                      ) -> tuple[ProgramSchedule, CompileStats]:
        """Compile one barrier-free graph into a kernel sequence."""
        stats = CompileStats()
        schedule = ProgramSchedule(name or graph.name)
        # Comma-joined string (not a tuple) so it survives the scalar-only
        # meta filter in serialize.schedule_to_json; the fused lowering
        # reads it to decide which tensors must escape the arena.
        schedule.meta["outputs"] = ",".join(sorted(graph.output_tensors))
        with get_tracer().span("compile", category="compile",
                               workload=schedule.name):
            self._compile_region(graph, schedule, stats)
        stats.kernels = len(schedule.kernels)
        for kernel in schedule.kernels:
            self._record_pattern(kernel.exec_graph, kernel)
        return schedule, stats

    def compile_subprogram(self, sub: Subprogram) -> CompiledSubprogram:
        """Compile one (possibly barrier) subprogram of a model program.

        This is the unit of work :meth:`compile_model` performs per unique
        subprogram; the parallel compilation path
        (:func:`repro.serve.parallel.compile_model_parallel`) fans these
        across a worker pool and merges the results deterministically.
        """
        if any(op.is_barrier for op in sub.graph.ops):
            sched = self._barrier_schedule(sub.graph)
            stats = CompileStats()
        else:
            sched, stats = self.compile_graph(sub.graph)
        return CompiledSubprogram(sched, stats, sub.occurrences)

    def compile_model(self, program: TensorProgram) -> CompiledModel:
        """Compile a model program; repeated subprograms compile once."""
        total = CompileStats()
        compiled: list[CompiledSubprogram] = []
        for sub in program.unique_subprograms():
            compiled.append(self.compile_subprogram(sub))
            total.merge(compiled[-1].stats)
        return CompiledModel(program.name, compiled, total)

    # ------------------------------------------------------------------
    # Auto-scheduling: slicing <-> partitioning states
    # ------------------------------------------------------------------

    def _compile_region(self, graph: DataflowGraph,
                        schedule: ProgramSchedule, stats: CompileStats,
                        explore_alternatives: bool = True) -> float:
        """Compile ``graph`` appending kernels to ``schedule``.

        Returns the modelled execution time of the appended kernels so
        partition candidates can be compared.
        """
        if not graph.ops:
            return 0.0
        if not self.options.fuse_compute_intensive:
            graph_parts = self._split_at_compute_intensive(graph)
            if len(graph_parts) > 1:
                return sum(self._compile_region(g, schedule, stats)
                           for g in graph_parts)

        result = self._try_slice(graph, stats)
        if result.scheduled:
            best = self._tune_candidates(result.candidates, stats)
            fused_time = best.best_time
            # Candidate exploration (section 5.3 generalised): an overly
            # aggressive fusion of several compute-intensive operators can
            # lose to a less-fused schedule (e.g. wide-weight GEMM chains
            # whose weights every block would re-stream).  Compare against
            # the contraction-granular alternative and keep the winner —
            # this is the mechanism behind the paper fusing MLP stacks only
            # for N,K <= 256.
            n_contractions = sum(op.is_contraction for op in graph.ops)
            if (explore_alternatives
                    and self.options.explore_partition_candidates
                    and n_contractions >= 1
                    and len(graph.ops) > n_contractions):
                trial = ProgramSchedule(schedule.name)
                trial_stats = CompileStats()
                alt_time = sum(
                    self._compile_region(part, trial, trial_stats,
                                         explore_alternatives=False)
                    for part in self._contraction_segments(graph))
                stats.merge(trial_stats)
                if alt_time < fused_time:
                    schedule.kernels.extend(trial.kernels)
                    return alt_time
            schedule.add(best.kernel)
            return fused_time

        # Partition state (section 5.2).
        stats.partition_rounds += 1
        with timed_phase("partitioning", stats.add_phase,
                         category="compile", graph=graph.name):
            candidates = partition_round(
                graph, self._is_schedulable,
                explore_candidates=self.options.explore_partition_candidates)

        if not candidates:
            kernels = schedule_single_op_kernels(
                graph, self.rc, self.timing_fn, options=self.options,
                tuner=self.tuner)
            for k in kernels:
                schedule.add(k)
            return sum(self.timing_fn(k, k.effective_config())
                       for k in kernels)

        best_time = float("inf")
        best_kernels: list[KernelSchedule] | None = None
        for cand in candidates:
            trial = ProgramSchedule(schedule.name)
            trial_stats = CompileStats()
            t = self._compile_region(cand.former, trial, trial_stats)
            if cand.latter is not None:
                t += self._compile_region(cand.latter, trial, trial_stats)
            stats.merge(trial_stats)
            if t < best_time:
                best_time = t
                best_kernels = trial.kernels
        assert best_kernels is not None
        schedule.kernels.extend(best_kernels)
        return best_time

    def _try_slice(self, graph: DataflowGraph, stats: CompileStats,
                   trace: bool = True) -> SlicingResult:
        try:
            with timed_phase("smg_build", stats.add_phase,
                             category="compile", enabled=trace,
                             graph=graph.name):
                smg = build_smg(graph)
        except SMGError as exc:
            raise CompileError(str(exc)) from exc
        result = resource_aware_slicing(smg, self.rc,
                                        self.options.slicing_options(),
                                        trace=trace)
        for phase, seconds in result.phase_times.items():
            stats.add_phase(phase, seconds)
        return result

    def _is_schedulable(self, graph: DataflowGraph) -> bool:
        # A probe, not a phase: its wall time lands in the enclosing
        # ``partitioning`` accounting, so it must not emit its own spans.
        throwaway = CompileStats()
        return self._try_slice(graph, throwaway, trace=False).scheduled

    def _tune_candidates(self, candidates: list[KernelSchedule],
                         stats: CompileStats) -> TuneResult:
        results = []
        for kernel in candidates:
            if self.options.auto_tune:
                with get_tracer().span("tuning", category="compile",
                                       kernel=kernel.name) as sp:
                    res = self.tuner.tune(
                        kernel, self.timing_fn, alpha=self.options.alpha,
                        keep_timings=self.options.keep_timings)
                    sp.note(modeled_wall_s=res.tuning_wall_time,
                            configs=res.configs_evaluated,
                            quit_early=res.configs_quit_early)
                stats.tuning_wall_time += res.tuning_wall_time
                stats.configs_evaluated += res.configs_evaluated
                stats.configs_quit_early += res.configs_quit_early
            else:
                # Ablation: fixed expert configuration (mid-space heuristic).
                cfg = kernel.search_space[len(kernel.search_space) // 2]
                kernel.config = cfg
                res = TuneResult(kernel, cfg,
                                 self.timing_fn(kernel, cfg), 1, 0, 0.0)
            results.append(res)
        return pick_best(results)

    # ------------------------------------------------------------------
    # Capability restrictions and bookkeeping
    # ------------------------------------------------------------------

    def _contraction_segments(self, graph: DataflowGraph,
                              ) -> list[DataflowGraph]:
        """Split into contraction-headed epilogue runs and MI segments.

        Each contraction starts a segment absorbing its element-wise
        epilogue; a non-contraction *reduction* closes the epilogue and
        starts a memory-intensive segment (a GEMM fused with a trailing
        normalisation would forfeit the GEMM's output-dimension
        parallelism, which is exactly what this alternative avoids).
        """
        from .partition import subgraph_from_ops

        groups: list[list] = []
        run: list = []
        run_has_contraction = False
        for op in graph.topological_ops():
            if op.is_contraction:
                if run:
                    groups.append(run)
                run = [op]
                run_has_contraction = True
            elif op.is_reduction and run_has_contraction:
                groups.append(run)
                run = [op]
                run_has_contraction = False
            else:
                run.append(op)
        if run:
            groups.append(run)
        outs = set(graph.output_tensors)
        parts = []
        for i, ops in enumerate(groups):
            later_reads = {
                t for g in groups[i + 1:] for o in g for t in o.inputs
            }
            parts.append(subgraph_from_ops(
                graph, ops, f"{graph.name}.c{i}",
                downstream_needs=later_reads | outs))
        return parts

    def _split_at_compute_intensive(self, graph: DataflowGraph,
                                    ) -> list[DataflowGraph]:
        """AStitch-style restriction: CI operators are fusion barriers."""
        from ..ir.traits import is_compute_intensive
        from .partition import subgraph_from_ops

        groups: list[list] = []
        run: list = []
        for op in graph.topological_ops():
            if is_compute_intensive(op, graph.dims):
                if run:
                    groups.append(run)
                    run = []
                groups.append([op])
            else:
                run.append(op)
        if run:
            groups.append(run)
        if len(groups) <= 1:
            return [graph]
        outs = set(graph.output_tensors)
        parts = []
        for i, ops in enumerate(groups):
            later_reads = {
                t for g in groups[i + 1:] for o in g for t in o.inputs
            }
            parts.append(subgraph_from_ops(
                graph, ops, f"{graph.name}.g{i}",
                downstream_needs=later_reads | outs))
        return parts

    def _record_pattern(self, graph: DataflowGraph,
                        kernel: KernelSchedule) -> None:
        """Census entry for the fusion-pattern analysis (Table 6)."""
        from ..ir.traits import count_all_to_ones, graph_intensity

        kinds = tuple(sorted({op.kind for op in graph.ops}))
        topo = tuple(op.kind for op in graph.topological_ops())
        key = f"{kinds}|{topo}"
        if key not in self.fusion_patterns:
            self.fusion_patterns[key] = {
                "ops": len(graph.ops),
                "a2o_mappings": count_all_to_ones(graph),
                "intensity": graph_intensity(graph),
            }

    def _barrier_schedule(self, graph: DataflowGraph) -> ProgramSchedule:
        """Layout/shape subprograms run as standalone data-movement kernels."""
        sched = ProgramSchedule(graph.name)
        sched.meta["outputs"] = ",".join(sorted(graph.output_tensors))
        for op in graph.ops:
            sub = DataflowGraph(f"{graph.name}.{op.name}", dims=graph.dims)
            for t in (*op.inputs, op.output):
                sub.tensors.setdefault(t, graph.tensors[t])
            sub.ops.append(op)
            smg_like = build_barrier_kernel(sub)
            sched.add(smg_like)
        return sched


def build_barrier_kernel(graph: DataflowGraph) -> KernelSchedule:
    """A pass-through kernel for one layout op (pure data movement)."""
    from .smg import SMG
    from .spaces import DataSpace

    op = graph.ops[0]
    dims = tuple(dict.fromkeys(
        d for t in graph.tensors.values() for d in t.dims))
    smg = SMG(name=graph.name, dims=dims, registry=graph.dims, graph=graph)
    for tname, spec in graph.tensors.items():
        role = "output" if tname == op.output else "input"
        smg.spaces[tname] = DataSpace(tname, spec.dims, spec.dtype, role)
    out_dims = graph.tensors[op.output].dims
    kernel = KernelSchedule(
        name=graph.name, smg=smg,
        spatial_dims=(),
        config=ScheduleConfig(block=()),
        meta={"slicing": "barrier", "barrier": True},
    )
    return kernel
