"""Spatial slicer: parallelising an SMG into independent blocks (section 4.2).

A spatial slicer cuts an SMG along chosen dimensions into SMG blocks, each
destined for one GPU thread block.  Table 3's legality rule: a dimension is
spatially sliceable iff every mapping residing within it is either absent or
an *input* One-to-All — slicing an input O2A creates no inter-block
dataflow because the source lives in global memory, visible to all blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .mappings import Mapping
from .smg import SMG


@dataclass(frozen=True)
class SpatialSlicing:
    """The result of spatial slicing: which dims were cut.

    ``dims`` is ordered; block sizes are chosen later by the resource-aware
    scheduler (section 5.1), so this object carries legality, not sizes.
    """

    dims: tuple[str, ...]
    #: For reporting: the input O2A mappings that were (legally) sliced.
    sliced_input_o2a: tuple[Mapping, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.dims


def spatial_sliceable_dims(smg: SMG) -> list[str]:
    """Dimensions eligible for spatial slicing, in SMG dim order.

    A dimension qualifies when (a) it has no blocking mappings (Table 3:
    no All-to-One and no intermediate-sourced One-to-All resides in it),
    and (b) every iteration space extends along it — a block owning one
    slice of the dimension must have a slice of *every* operator's work,
    otherwise operators lacking the dimension would be redundantly
    re-executed by each block.
    """
    eligible = []
    iter_spaces = smg.iteration_spaces()
    for dim in smg.dims:
        if smg.blocking_mappings_for_spatial(dim):
            continue
        if not all(it.has_dim(dim) for it in iter_spaces):
            continue
        eligible.append(dim)
    return eligible


def slice_spatial(smg: SMG) -> SpatialSlicing:
    """Apply the spatial slicer (Algorithm 1, lines 3-4).

    Returns the slicing along *all* feasible dimensions; an empty slicing
    means the fused space cannot be scheduled for parallelisation and the
    caller must partition the SMG (section 5.2).
    """
    dims = spatial_sliceable_dims(smg)
    sliced = tuple(
        m for d in dims for m in smg.input_o2a_along(d)
    )
    return SpatialSlicing(dims=tuple(dims), sliced_input_o2a=sliced)
