"""Schedule serialization: save and restore compiled kernel schedules.

The paper's program preprocessing compiles each repetitive subprogram once
per *process*; persisting schedules extends that across processes — a
compile cache keyed by (graph signature, GPU, compiler options), the same
role Triton's on-disk kernel cache plays for the real system.

Everything needed to re-execute a schedule is serialised: the dataflow
graph, the slicing decision, the chosen configuration, the aggregation
plan with its update functions, and the memory-level assignment.  The SMG
is rebuilt from the graph on load (it is derived state).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile

from ..ir.graph import DataflowGraph
from ..ir.ops import Op
from ..ir.tensor import DimRegistry, TensorSpec
from .builder import build_smg
from .schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from .temporal_slicer import AggregationPlan, ReductionStage
from .update_functions import AddOffset, NormFactor, UpdateFunction

FORMAT_VERSION = 1


class SerializeError(Exception):
    """Raised on malformed or incompatible serialised schedules."""


# ----------------------------------------------------------------------
# Graph <-> dict
# ----------------------------------------------------------------------


def graph_to_dict(graph: DataflowGraph) -> dict:
    return {
        "name": graph.name,
        "dims": dict(graph.dims.items()),
        "tensors": [
            {"name": t.name, "dims": list(t.dims), "dtype": t.dtype,
             "is_weight": t.is_weight}
            for t in graph.tensors.values()
        ],
        "ops": [
            {
                "name": op.name, "kind": op.kind,
                "inputs": list(op.inputs), "output": op.output,
                "input_axes": [list(a) for a in op.input_axes],
                "output_axes": list(op.output_axes),
                "iter_dims": list(op.iter_dims),
                "reduce_dims": list(op.reduce_dims),
                "reduce_kind": op.reduce_kind,
                "attrs": {k: v for k, v in op.attrs.items()
                          if isinstance(v, (int, float, str, bool, list,
                                            tuple)) or v is None},
            }
            for op in graph.ops
        ],
        "declared_outputs": graph.declared_outputs,
    }


def graph_from_dict(data: dict) -> DataflowGraph:
    registry = DimRegistry()
    for name, size in data["dims"].items():
        registry.define(name, size)
    graph = DataflowGraph(data["name"], dims=registry)
    for t in data["tensors"]:
        graph.tensors[t["name"]] = TensorSpec(
            t["name"], tuple(t["dims"]), t["dtype"], t["is_weight"])
    for o in data["ops"]:
        attrs = dict(o["attrs"])
        if "perm" in attrs:
            attrs["perm"] = tuple(attrs["perm"])
        graph.ops.append(Op(
            name=o["name"], kind=o["kind"], inputs=tuple(o["inputs"]),
            output=o["output"],
            input_axes=tuple(tuple(a) for a in o["input_axes"]),
            output_axes=tuple(o["output_axes"]),
            iter_dims=tuple(o["iter_dims"]),
            reduce_dims=tuple(o["reduce_dims"]),
            reduce_kind=o["reduce_kind"], attrs=attrs))
    graph.declared_outputs = data.get("declared_outputs")
    graph.validate()
    return graph


# ----------------------------------------------------------------------
# Schedule <-> dict
# ----------------------------------------------------------------------


def _config_to_dict(cfg: ScheduleConfig | None) -> dict | None:
    if cfg is None:
        return None
    return {"block": [list(pair) for pair in cfg.block], "tile": cfg.tile}


def _config_from_dict(data: dict | None) -> ScheduleConfig | None:
    if data is None:
        return None
    return ScheduleConfig(
        block=tuple((d, b) for d, b in data["block"]), tile=data["tile"])


def _plan_to_dict(plan: AggregationPlan | None) -> dict | None:
    if plan is None:
        return None
    return {
        "dim": plan.dim,
        "graph": graph_to_dict(plan.graph),
        "stages": [
            {
                "op_name": s.op_name, "output": s.output,
                "combiner": s.combiner,
                "factors": [[f.agg, f.func, f.power]
                            for f in s.update.factors],
                "offsets": [[o.agg, o.coeff] for o in s.update.offsets],
            }
            for s in plan.stages
        ],
        "tile_op_names": list(plan.tile_op_names),
        "pass2_op_names": list(plan.pass2_op_names),
        "rewritten": plan.rewritten,
    }


def _plan_from_dict(data: dict | None) -> AggregationPlan | None:
    if data is None:
        return None
    graph = graph_from_dict(data["graph"])
    stages = [
        ReductionStage(
            s["op_name"], s["output"], s["combiner"],
            UpdateFunction(
                s["output"],
                tuple(NormFactor(a, f, p) for a, f, p in s["factors"]),
                tuple(AddOffset(a, c) for a, c in s["offsets"])))
        for s in data["stages"]
    ]
    return AggregationPlan(
        dim=data["dim"], graph=graph, stages=stages,
        tile_op_names=list(data["tile_op_names"]),
        pass2_op_names=list(data["pass2_op_names"]),
        rewritten=data["rewritten"])


def kernel_to_dict(kernel: KernelSchedule) -> dict:
    assert kernel.smg.graph is not None
    return {
        "name": kernel.name,
        "graph": graph_to_dict(kernel.smg.graph),
        "spatial_dims": list(kernel.spatial_dims),
        "plan": _plan_to_dict(kernel.plan),
        "config": _config_to_dict(kernel.config),
        "search_space": [_config_to_dict(c) for c in kernel.search_space],
        "memory_levels": dict(kernel.memory_levels),
        "meta": {k: v for k, v in kernel.meta.items()
                 if isinstance(v, (int, float, str, bool)) or v is None},
    }


def kernel_from_dict(data: dict) -> KernelSchedule:
    graph = graph_from_dict(data["graph"])
    if data["meta"].get("barrier"):
        from .compiler import build_barrier_kernel
        kernel = build_barrier_kernel(graph)
        kernel.meta.update(data["meta"])
        return kernel
    smg = build_smg(graph, name=data["name"])
    return KernelSchedule(
        name=data["name"], smg=smg,
        spatial_dims=tuple(data["spatial_dims"]),
        plan=_plan_from_dict(data["plan"]),
        config=_config_from_dict(data["config"]),
        search_space=[_config_from_dict(c) for c in data["search_space"]],
        memory_levels=dict(data["memory_levels"]),
        meta=dict(data["meta"]))


def schedule_to_json(schedule: ProgramSchedule) -> str:
    payload = {
        "version": FORMAT_VERSION,
        "name": schedule.name,
        "meta": {k: v for k, v in schedule.meta.items()
                 if isinstance(v, (int, float, str, bool)) or v is None},
        "kernels": [kernel_to_dict(k) for k in schedule.kernels],
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def schedule_from_json(text: str) -> ProgramSchedule:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializeError(f"malformed schedule JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializeError(
            f"schedule payload must be an object, got {type(payload).__name__}")
    if payload.get("version") != FORMAT_VERSION:
        raise SerializeError(
            f"unsupported schedule format version {payload.get('version')} "
            f"(expected {FORMAT_VERSION})")
    try:
        sched = ProgramSchedule(payload["name"], meta=dict(payload["meta"]))
        for kdata in payload["kernels"]:
            sched.add(kernel_from_dict(kdata))
    except SerializeError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SerializeError(f"truncated or corrupt schedule: {exc!r}") from exc
    return sched


# ----------------------------------------------------------------------
# On-disk compile cache
# ----------------------------------------------------------------------


def cache_key(graph: DataflowGraph, gpu_name: str,
              options_repr: str = "") -> str:
    """Content hash identifying one (graph, GPU, options) compile."""
    h = hashlib.sha256()
    h.update(json.dumps(graph_to_dict(graph), sort_keys=True).encode())
    h.update(gpu_name.encode())
    h.update(options_repr.encode())
    return h.hexdigest()[:24]


class ScheduleCache:
    """Persistent compile cache keyed by (graph, GPU, options) signature."""

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _key(self, graph: DataflowGraph, gpu_name: str,
             options_repr: str) -> str:
        return cache_key(graph, gpu_name, options_repr)

    def lock_path(self, key: str) -> pathlib.Path:
        """Advisory-lock file for one cache key (cross-process
        single-flight; see :mod:`repro.serve.filelock`).  Lives next to
        the entry so it shares the entry's filesystem and permissions."""
        return self.directory / f"{key}.lock"

    def get(self, graph: DataflowGraph, gpu_name: str,
            options_repr: str = "") -> ProgramSchedule | None:
        """Load a cached schedule, or None on a miss.

        An unreadable, corrupt, or version-incompatible entry counts as a
        miss (and is dropped) rather than poisoning every boot that hashes
        onto it — :func:`compile_cached` then recompiles and overwrites it.
        """
        path = self.directory / f"{self._key(graph, gpu_name, options_repr)}.json"
        if not path.exists():
            self.misses += 1
            return None
        try:
            schedule = schedule_from_json(path.read_text())
        except (SerializeError, OSError):
            self.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.hits += 1
        return schedule

    def put(self, graph: DataflowGraph, gpu_name: str,
            schedule: ProgramSchedule, options_repr: str = "") -> None:
        """Store atomically: write a temp file in the same directory and
        ``os.replace`` it over the entry, so a crash mid-write can never
        leave a truncated JSON file for a later boot to trip on."""
        path = self.directory / f"{self._key(graph, gpu_name, options_repr)}.json"
        fd, tmp_name = tempfile.mkstemp(dir=self.directory,
                                        prefix=path.stem + ".",
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(schedule_to_json(schedule))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def compile_cached(graph: DataflowGraph, gpu, cache: ScheduleCache,
                   options=None):
    """Compile through the cache: load on hit, compile+store on miss."""
    from ..pipeline import compile_for

    options_repr = repr(options) if options is not None else ""
    cached = cache.get(graph, gpu.name, options_repr)
    if cached is not None:
        return cached, None
    schedule, stats = compile_for(graph, gpu, options)
    cache.put(graph, gpu.name, schedule, options_repr)
    return schedule, stats
