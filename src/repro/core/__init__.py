"""SpaceFusion core: the SMG abstraction, slicers, and auto-scheduler."""

from .autotuner import TuneResult, tune_kernel
from .builder import build_op_smg, build_smg
from .compiler import (
    CompiledModel,
    CompileError,
    CompileStats,
    FusionOptions,
    SpaceFusionCompiler,
)
from .mappings import A2O, O2A, O2O, Mapping, MappingKind
from .memory_planner import apply_memory_plan, plan_memory_levels
from .partition import partition_round, reorganize_sub_smgs, subgraph_from_ops
from .resources import (
    BlockResources,
    ResourceConfig,
    check_resources,
    enumerate_configs,
    estimate_block_resources,
)
from .schedule import KernelSchedule, ProgramSchedule, ScheduleConfig
from .scheduler import SlicingOptions, SlicingResult, resource_aware_slicing
from .smg import SMG, SMGError
from .spaces import DataSpace, IterationSpace, SlicedExtent, Space
from .spatial_slicer import SpatialSlicing, slice_spatial, spatial_sliceable_dims
from .temporal_slicer import (
    AggregationPlan,
    ReductionStage,
    TemporalSliceError,
    plan_temporal_slice,
    temporal_dim_candidates,
)
from .update_functions import NormFactor, UpdateFunction, UTAError

__all__ = [
    "A2O", "AggregationPlan", "BlockResources", "CompileError",
    "CompileStats", "CompiledModel", "DataSpace", "FusionOptions",
    "IterationSpace", "KernelSchedule", "Mapping", "MappingKind",
    "NormFactor", "O2A", "O2O", "ProgramSchedule", "ReductionStage",
    "ResourceConfig", "SMG", "SMGError", "ScheduleConfig", "SlicedExtent",
    "SlicingOptions", "SlicingResult", "Space", "SpaceFusionCompiler",
    "SpatialSlicing", "TemporalSliceError", "TuneResult", "UTAError",
    "UpdateFunction", "apply_memory_plan", "build_op_smg", "build_smg",
    "check_resources", "enumerate_configs", "estimate_block_resources",
    "partition_round", "plan_memory_levels", "plan_temporal_slice",
    "reorganize_sub_smgs", "resource_aware_slicing", "slice_spatial",
    "spatial_sliceable_dims", "subgraph_from_ops", "temporal_dim_candidates",
    "tune_kernel",
]
