"""Schedule data model: what the auto-scheduler produces (sections 4-5).

A :class:`KernelSchedule` captures one fused GPU kernel: the SMG it covers,
the spatially sliced dimensions (block grid), the optional temporal
aggregation plan (intra-block loop), the memory-level assignment of every
tensor, and the block-size search space handed to the auto-tuner.

A :class:`ProgramSchedule` strings kernels together; tensors crossing
kernel boundaries live in global memory (section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import DataflowGraph
from ..ir.ops import ceil_div
from .smg import SMG
from .temporal_slicer import AggregationPlan


@dataclass(frozen=True)
class ScheduleConfig:
    """One point in a kernel's tuning space.

    Attributes:
        block: block size per spatially sliced dimension.
        tile: intra-block tile size along the temporal dimension (None when
            the kernel is not temporally sliced).
    """

    block: tuple[tuple[str, int], ...]
    tile: int | None = None

    def block_of(self, dim: str) -> int | None:
        for d, b in self.block:
            if d == dim:
                return b
        return None

    def as_dict(self) -> dict[str, int]:
        return dict(self.block)

    def describe(self) -> str:
        blocks = ",".join(f"{d}={b}" for d, b in self.block)
        tile = f",tile={self.tile}" if self.tile is not None else ""
        return f"cfg({blocks}{tile})"


@dataclass
class KernelSchedule:
    """A fused kernel: one SMG scheduled onto the GPU execution model."""

    name: str
    smg: SMG
    spatial_dims: tuple[str, ...]
    plan: AggregationPlan | None = None
    config: ScheduleConfig | None = None
    search_space: list[ScheduleConfig] = field(default_factory=list)
    memory_levels: dict[str, str] = field(default_factory=dict)
    #: Free-form annotations (origin: "spacefusion", "flashattention", ...)
    meta: dict = field(default_factory=dict)

    @property
    def exec_graph(self) -> DataflowGraph:
        """The graph the executor interprets (rewritten when UTA applies)."""
        if self.plan is not None:
            return self.plan.graph
        assert self.smg.graph is not None
        return self.smg.graph

    @property
    def temporal_dim(self) -> str | None:
        return self.plan.dim if self.plan is not None else None

    def effective_config(self) -> ScheduleConfig:
        if self.config is not None:
            return self.config
        if self.search_space:
            return self.search_space[0]
        raise ValueError(f"kernel {self.name!r} has no configuration")

    def grid_size(self, config: ScheduleConfig | None = None) -> int:
        """Number of SMG blocks (thread blocks) the kernel launches."""
        cfg = config or self.effective_config()
        grid = 1
        for dim in self.spatial_dims:
            block = cfg.block_of(dim)
            if block is None:
                raise ValueError(f"config lacks block size for dim {dim!r}")
            grid *= ceil_div(self.smg.dim_size(dim), block)
        return grid

    def num_intra_blocks(self, config: ScheduleConfig | None = None) -> int:
        cfg = config or self.effective_config()
        if self.plan is None or cfg.tile is None:
            return 1
        return ceil_div(self.smg.dim_size(self.plan.dim), cfg.tile)

    def sliced_extent(self, dim: str, config: ScheduleConfig | None = None) -> int:
        """Per-block extent of ``dim`` under the (chosen) config."""
        cfg = config or self.effective_config()
        block = cfg.block_of(dim)
        if block is not None:
            return min(block, self.smg.dim_size(dim))
        if self.plan is not None and dim == self.plan.dim and cfg.tile is not None:
            return min(cfg.tile, self.smg.dim_size(dim))
        return self.smg.dim_size(dim)

    def tensor_block_elems(self, tensor: str,
                           config: ScheduleConfig | None = None) -> int:
        """Elements of ``tensor`` visible to a single SMG block/intra-block."""
        spec = self.exec_graph.tensors[tensor]
        n = 1
        for d in spec.dims:
            n *= self.sliced_extent(d, config)
        return n

    def describe(self) -> str:
        parts = [f"kernel {self.name}: spatial={list(self.spatial_dims)}"]
        if self.plan is not None:
            mode = "UTA" if self.plan.uses_uta else "SA"
            parts.append(f"temporal={self.plan.dim}({mode})")
        if self.config is not None:
            parts.append(self.config.describe())
        parts.append(f"{len(self.search_space)} cfgs")
        return " ".join(parts)


@dataclass
class ProgramSchedule:
    """An ordered sequence of kernels implementing one tensor program."""

    name: str
    kernels: list[KernelSchedule] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, kernel: KernelSchedule) -> KernelSchedule:
        self.kernels.append(kernel)
        return kernel

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    def fused_op_counts(self) -> list[int]:
        """Ops per kernel — a quick fusion-quality fingerprint."""
        return [len(k.exec_graph.ops) for k in self.kernels]

    def describe(self) -> str:
        lines = [f"program {self.name}: {self.num_kernels} kernels"]
        lines.extend("  " + k.describe() for k in self.kernels)
        return "\n".join(lines)
