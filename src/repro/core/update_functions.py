"""Update-function generation for Update-then-Aggregate (section 4.3, Fig. 8).

Temporal slicing of *dependent* All-to-One chains needs every stored partial
reduction to be re-normalisable when an earlier aggregate in the chain
changes.  The paper derives the re-normalisation ("Update Functions") by
Broadcast Postposition followed by back-tracing Update Paths.  We realise
the same derivation as a symbolic *factor analysis* over the dataflow graph:

Every tile-extending tensor ``x`` is represented as::

    value(x) = base(x) * prod_i f_i(agg_i)^{p_i}   +   sum_j q_j * agg_j

where ``base`` is a pure function of tile-local data, the multiplicative
factors ``(agg, f, p)`` have ``f in {exp, id}``, and the additive offsets
``(agg, q)`` arise from broadcast add/sub of earlier aggregates.  The
postposition rules of the paper are exactly the propagation rules of this
representation (e.g. ``exp(x - m) = exp(x) / exp(m)`` turns an additive
offset of ``m`` into a multiplicative ``exp(m)^-1`` factor).

A reduction stage whose input carries representation ``base * F`` stores
``raw * F`` tile-by-tile; when the referenced aggregates advance from
``old`` to ``new`` values the stored partial is updated by
``old_value * prod f(new)/f(old)^{p}`` — the generated update function.
For the attention chain this reproduces the paper's
``updateSum = Sum_old * exp(Max_old)/exp(Max)`` and
``updateOut = Out_old * Sum_old/Sum * exp(Max_old)/exp(Max)`` verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import DataflowGraph
from ..ir.ops import Op


class UTAError(Exception):
    """Raised when no update function can be derived for a dependent chain.

    This mirrors the paper's observation that "not all the All-to-One chains
    end up with simplification results": the caller (the auto-scheduler)
    falls back to SMG partitioning.
    """


@dataclass(frozen=True)
class NormFactor:
    """One multiplicative normaliser of a stored partial reduction.

    ``stored = raw * f(agg)^power`` with ``f`` being ``exp`` or the
    identity.  Powers are rational in general: ``exp(0.5 * (x - m))``
    carries an ``exp(m)^-0.5`` factor.
    """

    agg: str
    func: str  # "exp" | "id"
    power: float

    def describe(self) -> str:
        body = f"exp({self.agg})" if self.func == "exp" else self.agg
        return body if self.power == 1 else f"{body}^{self.power:g}"


@dataclass(frozen=True)
class AddOffset:
    """One additive normaliser: ``stored = raw + coeff * agg``."""

    agg: str
    coeff: float


@dataclass
class Representation:
    """Symbolic value representation during factor analysis."""

    mult: dict[tuple[str, str], float] = field(default_factory=dict)  # (agg,f)->power
    add: dict[str, float] = field(default_factory=dict)               # agg -> coeff
    opaque: bool = False

    @classmethod
    def pure(cls) -> "Representation":
        return cls()

    @classmethod
    def opaque_value(cls) -> "Representation":
        return cls(opaque=True)

    def is_pure(self) -> bool:
        return not self.opaque and not self.mult and not self.add

    def copy(self) -> "Representation":
        return Representation(dict(self.mult), dict(self.add), self.opaque)

    def with_mult(self, agg: str, func: str, power: float) -> "Representation":
        rep = self.copy()
        key = (agg, func)
        rep.mult[key] = rep.mult.get(key, 0) + power
        if rep.mult[key] == 0:
            del rep.mult[key]
        return rep

    def with_add(self, agg: str, coeff: float) -> "Representation":
        rep = self.copy()
        rep.add[agg] = rep.add.get(agg, 0) + coeff
        if rep.add[agg] == 0:
            del rep.add[agg]
        return rep

    def referenced_aggs(self) -> set[str]:
        return {a for a, _f in self.mult} | set(self.add)


@dataclass(frozen=True)
class UpdateFunction:
    """The executable re-normalisation for one reduction stage.

    ``apply`` maps the stored old partial plus the old/new values of the
    referenced aggregates to the re-normalised partial, evaluated in the
    numerically stable form (``exp`` ratios computed as ``exp(a - b)``).
    An empty function (no factors/offsets) is the identity — the stage only
    needs Simple Aggregate.
    """

    stage_output: str
    factors: tuple[NormFactor, ...]
    offsets: tuple[AddOffset, ...]

    @property
    def is_identity(self) -> bool:
        return not self.factors and not self.offsets

    def referenced_aggs(self) -> tuple[str, ...]:
        seen: list[str] = []
        for f in self.factors:
            if f.agg not in seen:
                seen.append(f.agg)
        for o in self.offsets:
            if o.agg not in seen:
                seen.append(o.agg)
        return tuple(seen)

    def apply(self, old_value: np.ndarray,
              old_aggs: dict[str, np.ndarray],
              new_aggs: dict[str, np.ndarray]) -> np.ndarray:
        result = np.asarray(old_value, dtype=np.float64).copy()
        for f in self.factors:
            old_a = np.asarray(old_aggs[f.agg], dtype=np.float64)
            new_a = np.asarray(new_aggs[f.agg], dtype=np.float64)
            if f.func == "exp":
                # stored = raw*exp(agg)^p  =>  scale by exp(new-old)^p,
                # computed in the log domain for stability.
                result = result * np.exp(f.power * (new_a - old_a))
            else:
                ratio = np.divide(new_a, old_a,
                                  out=np.ones_like(new_a),
                                  where=old_a != 0)
                result = result * ratio ** f.power
        for o in self.offsets:
            result = result + o.coeff * (
                np.asarray(new_aggs[o.agg], dtype=np.float64)
                - np.asarray(old_aggs[o.agg], dtype=np.float64))
        return result

    def describe(self) -> str:
        """Human-readable form, e.g. the paper's updateOut:
        ``Out_old * id(Sum)^-1... `` rendered as ratios of old/new."""
        if self.is_identity:
            return f"update{self.stage_output}(old) = old"
        parts = ["old"]
        for f in self.factors:
            num, den = ("old", "new") if f.power < 0 else ("new", "old")
            body = f"exp({f.agg}_{{{num}}})/exp({f.agg}_{{{den}}})" if f.func == "exp" \
                else f"{f.agg}_{{{num}}}/{f.agg}_{{{den}}}"
            mag = abs(f.power)
            if mag == int(mag):
                parts.extend([body] * int(mag))
            else:
                parts.append(f"({body})^{mag:g}")
        expr = " * ".join(parts)
        for o in self.offsets:
            sign = "+" if o.coeff > 0 else "-"
            expr += f" {sign} {abs(o.coeff)}*({o.agg}_new - {o.agg}_old)"
        return f"update{self.stage_output}(old) = {expr}"


# ----------------------------------------------------------------------
# Factor analysis (Broadcast Postposition as representation propagation)
# ----------------------------------------------------------------------

_LINEAR_UNARIES = {"identity", "cast", "neg"}


class FactorAnalysis:
    """Propagate value representations through the tile subgraph.

    Args:
        graph: the (possibly rewritten) dataflow graph.
        dim: the temporal slicing dimension.
        stage_outputs: outputs of the chain's reduction stages, in stage
            order.  References to these tensors inside tile ops are the
            aggregates the representations may depend on.
    """

    def __init__(self, graph: DataflowGraph, dim: str,
                 stage_outputs: list[str]) -> None:
        self.graph = graph
        self.dim = dim
        self.stage_outputs = list(stage_outputs)
        self.reprs: dict[str, Representation] = {}

    def _extends(self, tensor: str) -> bool:
        return self.dim in self.graph.tensors[tensor].dims

    def _depends_on_stage(self, tensor: str) -> bool:
        """Whether ``tensor`` transitively derives from a chain aggregate."""
        cache = getattr(self, "_dep_cache", None)
        if cache is None:
            cache = self._dep_cache = {}
        if tensor in cache:
            return cache[tensor]
        cache[tensor] = False  # break cycles defensively
        if tensor in self.stage_outputs:
            cache[tensor] = True
            return True
        producer = self.graph.producer_of(tensor)
        result = producer is not None and any(
            self._depends_on_stage(t) for t in producer.inputs)
        cache[tensor] = result
        return result

    def repr_of(self, tensor: str) -> Representation:
        if tensor in self.reprs:
            return self.reprs[tensor]
        if not self._extends(tensor):
            # Constant with respect to the tile loop — unless it derives
            # from a chain aggregate, in which case only the direct
            # broadcast forms handled by ``_operand_repr`` are analysable.
            rep = (Representation.opaque_value()
                   if self._depends_on_stage(tensor) else Representation.pure())
            self.reprs[tensor] = rep
            return rep
        producer = self.graph.producer_of(tensor)
        if producer is None:
            rep = Representation.pure()  # kernel input: tile-local data
        else:
            rep = self._derive(producer)
        self.reprs[tensor] = rep
        return rep

    # -- per-op propagation rules (the postposition rules of Fig. 8) -----

    def _derive(self, op: Op) -> Representation:
        kind = op.kind
        if kind.startswith("reduce_") and self.dim in op.reduce_dims:
            # A chain stage; its *stored* value representation equals its
            # input's multiplicative factors (handled by stage synthesis).
            return Representation.pure()  # referencing an agg is intercepted below

        if kind in _LINEAR_UNARIES or kind.startswith("scalar_"):
            base = self.repr_of(op.inputs[0])
            if base.opaque:
                return Representation.opaque_value()
            if kind in ("identity", "cast"):
                return base.copy()
            if kind == "neg":
                # -(base + q·agg) = (-base) + (-q)·agg; factors untouched.
                rep = base.copy()
                rep.add = {agg: -q for agg, q in rep.add.items()}
                return rep
            if kind in ("scalar_mul", "scalar_div"):
                # c·(base + q·agg) = (c·base) + (c·q)·agg.
                c = float(op.attrs["scalar"])
                if kind == "scalar_div":
                    if c == 0.0:
                        return Representation.opaque_value()
                    c = 1.0 / c
                rep = base.copy()
                rep.add = {agg: c * q for agg, q in rep.add.items()}
                return rep
            if kind in ("scalar_add", "scalar_sub"):
                if base.mult:
                    # (x*F) + c is not factorable.
                    return Representation.opaque_value()
                return base.copy()
            if kind == "scalar_rsub":
                if base.mult:
                    return Representation.opaque_value()
                rep = base.copy()
                rep.add = {agg: -q for agg, q in rep.add.items()}
                return rep
            if kind == "scalar_rdiv":
                if base.add:
                    return Representation.opaque_value()
                rep = base.copy()
                rep.mult = {k: -p for k, p in rep.mult.items()}
                return rep
            return base.copy() if base.is_pure() else Representation.opaque_value()

        if kind == "exp":
            base = self.repr_of(op.inputs[0])
            if base.opaque or base.mult:
                # exp of a multiplicatively-normalised value does not factor.
                return (Representation.pure() if base.is_pure()
                        else Representation.opaque_value())
            rep = Representation.pure()
            for agg, coeff in base.add.items():
                rep = rep.with_mult(agg, "exp", coeff)
            return rep

        if kind in {"sqrt", "rsqrt", "square", "abs", "log", "relu", "gelu",
                    "tanh", "sigmoid", "silu", "erf", "reciprocal"}:
            base = self.repr_of(op.inputs[0])
            if base.is_pure():
                return Representation.pure()
            if kind == "square" and not base.add and not base.opaque:
                rep = Representation.pure()
                for (agg, f), p in base.mult.items():
                    rep = rep.with_mult(agg, f, 2 * p)
                return rep
            if kind == "reciprocal" and not base.add and not base.opaque:
                rep = Representation.pure()
                for (agg, f), p in base.mult.items():
                    rep = rep.with_mult(agg, f, -p)
                return rep
            return Representation.opaque_value()

        if kind in {"add", "sub", "mul", "div", "maximum", "minimum",
                    "where_mask", "pow"}:
            return self._derive_binary(op)

        if kind == "matmul":
            return self._derive_matmul(op)

        if kind.startswith("reduce_"):
            # Reduction over a non-temporal dim: linear reductions pass
            # factors through; max/min pass them through under positivity.
            base = self.repr_of(op.inputs[0])
            if base.opaque or base.add:
                return (Representation.pure() if base.is_pure()
                        else Representation.opaque_value())
            return base.copy()

        return Representation.opaque_value()

    def _operand_repr(self, op: Op, idx: int) -> tuple[Representation, bool]:
        """Representation of operand ``idx`` plus whether it is an aggregate
        (a stage output, or any tensor not extending along the temporal dim)
        broadcast into the tile."""
        tensor = op.inputs[idx]
        if tensor in self.stage_outputs:
            return Representation.pure(), True
        return self.repr_of(tensor), False

    def _derive_binary(self, op: Op) -> Representation:
        lhs_rep, lhs_is_agg = self._operand_repr(op, 0)
        rhs_rep, rhs_is_agg = self._operand_repr(op, 1)
        kind = op.kind

        # Broadcast of a chain aggregate into the tile: the postposition
        # rules turn it into a factor / offset on the tile-extending side.
        if rhs_is_agg and not lhs_is_agg:
            agg = op.inputs[1]
            if lhs_rep.opaque:
                return Representation.opaque_value()
            if kind == "sub":
                return lhs_rep.with_add(agg, -1) if not lhs_rep.mult \
                    else Representation.opaque_value()
            if kind == "add":
                return lhs_rep.with_add(agg, +1) if not lhs_rep.mult \
                    else Representation.opaque_value()
            if kind == "mul":
                return lhs_rep.with_mult(agg, "id", +1) if not lhs_rep.add \
                    else Representation.opaque_value()
            if kind == "div":
                return lhs_rep.with_mult(agg, "id", -1) if not lhs_rep.add \
                    else Representation.opaque_value()
            return Representation.opaque_value()
        if lhs_is_agg and not rhs_is_agg:
            agg = op.inputs[0]
            if rhs_rep.opaque:
                return Representation.opaque_value()
            if kind == "add":
                return rhs_rep.with_add(agg, +1) if not rhs_rep.mult \
                    else Representation.opaque_value()
            if kind == "mul":
                return rhs_rep.with_mult(agg, "id", +1) if not rhs_rep.add \
                    else Representation.opaque_value()
            return Representation.opaque_value()

        # Two tile-side operands.
        if lhs_rep.opaque or rhs_rep.opaque:
            return Representation.opaque_value()
        if kind in ("mul", "div"):
            if lhs_rep.add or rhs_rep.add:
                return Representation.opaque_value()
            rep = lhs_rep.copy()
            sign = 1 if kind == "mul" else -1
            for (agg, f), p in rhs_rep.mult.items():
                rep = rep.with_mult(agg, f, sign * p)
            return rep
        if kind in ("add", "sub", "maximum", "minimum", "where_mask"):
            if lhs_rep.mult == rhs_rep.mult and lhs_rep.add == rhs_rep.add:
                return lhs_rep.copy()
            if lhs_rep.is_pure() and rhs_rep.is_pure():
                return Representation.pure()
            return Representation.opaque_value()
        return Representation.opaque_value()

    def _derive_matmul(self, op: Op) -> Representation:
        lhs, lhs_is_agg = self._operand_repr(op, 0)
        rhs, rhs_is_agg = self._operand_repr(op, 1)
        if lhs_is_agg or rhs_is_agg:
            return Representation.opaque_value()
        if lhs.opaque or rhs.opaque or lhs.add or rhs.add:
            return Representation.opaque_value()
        rep = lhs.copy()
        for (agg, f), p in rhs.mult.items():
            rep = rep.with_mult(agg, f, p)
        return rep


def synthesize_update_functions(graph: DataflowGraph, dim: str,
                                stage_ops: list[Op]) -> list[UpdateFunction]:
    """Derive the update function of every chain stage (Figure 8 (d)/(e)).

    Args:
        graph: the rewritten execution graph.
        dim: temporal slicing dimension.
        stage_ops: the chain's reduction ops, in dependency order.

    Raises:
        UTAError: when a stage's input representation is opaque, references
            a *later* stage's aggregate, or carries normalisers a combiner of
            that type cannot aggregate under.
    """
    stage_outputs = [op.output for op in stage_ops]
    analysis = FactorAnalysis(graph, dim, stage_outputs)
    updates: list[UpdateFunction] = []
    for i, op in enumerate(stage_ops):
        rep = analysis.repr_of(op.inputs[0])
        if rep.opaque:
            raise UTAError(
                f"stage {op.name!r}: broadcast postposition failed — input "
                "value is not representable as base*factors"
            )
        earlier = set(stage_outputs[:i])
        illegal = rep.referenced_aggs() - earlier
        if illegal:
            raise UTAError(
                f"stage {op.name!r} depends on aggregates {sorted(illegal)} "
                "that are not earlier in the chain"
            )
        combiner = op.reduce_kind
        factors = tuple(NormFactor(agg, f, p)
                        for (agg, f), p in sorted(rep.mult.items()))
        offsets = tuple(AddOffset(agg, c) for agg, c in sorted(rep.add.items()))
        if combiner in ("sum", "mean") and offsets:
            raise UTAError(
                f"stage {op.name!r}: additive offsets do not aggregate "
                "through a sum without element counts"
            )
        if combiner in ("max", "min") and factors:
            # max(x * c) == max(x) * c only for c > 0; exp-factors and sums
            # of exponentials are positive, so allow exp/id factors whose
            # source combiner is positive.  We accept them (the attention
            # family keeps max first, so this path is rare).
            pass
        updates.append(UpdateFunction(op.output, factors, offsets))
    return updates
