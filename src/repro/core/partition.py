"""SMG partitioning: Algorithm 2 and candidate schedules (sections 5.2/5.3).

When resource-aware slicing fails — the fused space defines an overly
aggressive schedule — SpaceFusion reorganises the SMG into sub-SMGs:

* an **All-to-One sub-SMG**: one iteration space carrying an All-to-One
  mapping plus its neighbouring data spaces (here: one reducing operator);
* a **non-All-to-One sub-SMG**: a maximal run of operators without any
  All-to-One mapping (element-wise / broadcast chains).

A partition round peels sub-SMGs off the back of the graph into the latter
SMG ``Gl`` until the former ``Gf`` is schedulable; the intermediate data
space at the cut is duplicated so both sides own complete inputs/outputs
(realised here by declaring the crossing tensors as ``Gf`` outputs).

Section 5.3 deepens the exploration by one level: once a schedulable
``Gf`` is found, one more trailing non-All-to-One sub-SMG is speculatively
moved to ``Gl``, producing a second candidate partition whose merits the
auto-tuner arbitrates (memory-intensive sub-SMGs perform differently
depending on which compute-intensive neighbour they fuse with).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import DataflowGraph
from ..ir.ops import Op


@dataclass(frozen=True)
class SubSMG:
    """One reorganised segment: either an A2O segment or a non-A2O run."""

    kind: str  # "A2O" | "nonA2O"
    ops: tuple[Op, ...]


def reorganize_sub_smgs(graph: DataflowGraph) -> list[SubSMG]:
    """Split a graph's topological op sequence into sub-SMG segments."""
    segments: list[SubSMG] = []
    run: list[Op] = []
    for op in graph.topological_ops():
        if op.is_reduction:
            if run:
                segments.append(SubSMG("nonA2O", tuple(run)))
                run = []
            segments.append(SubSMG("A2O", (op,)))
        else:
            run.append(op)
    if run:
        segments.append(SubSMG("nonA2O", tuple(run)))
    return segments


def subgraph_from_ops(graph: DataflowGraph, ops: list[Op], name: str,
                      downstream_needs: set[str]) -> DataflowGraph:
    """Materialise a sub-SMG group as a standalone dataflow graph.

    ``downstream_needs`` lists tensors the remainder of the program (or the
    model output) still requires; produced tensors in that set become the
    subgraph's declared outputs — the paper's duplicated intermediate data
    spaces at the partition boundary.
    """
    sub = DataflowGraph(name, dims=graph.dims)
    used: set[str] = set()
    produced: set[str] = set()
    for op in ops:
        used.update(op.inputs)
        used.add(op.output)
        produced.add(op.output)
    for t in used:
        sub.tensors[t] = graph.tensors[t]
    sub.ops = list(ops)
    consumed_inside = {t for op in ops for t in op.inputs}
    sub.declared_outputs = [
        t for t in produced
        if t in downstream_needs or t not in consumed_inside
    ]
    sub.validate()
    return sub


@dataclass
class PartitionCandidate:
    """One (Gf, Gl) split produced by a partition round."""

    former: DataflowGraph
    latter: DataflowGraph | None  # None when Gl would be empty


def _split(graph: DataflowGraph, segments: list[SubSMG], cut: int,
           global_needs: set[str]) -> PartitionCandidate:
    former_ops = [op for seg in segments[:cut] for op in seg.ops]
    latter_ops = [op for seg in segments[cut:] for op in seg.ops]
    latter_reads = {t for op in latter_ops for t in op.inputs}
    former = subgraph_from_ops(
        graph, former_ops, f"{graph.name}.f",
        downstream_needs=latter_reads | global_needs)
    latter = None
    if latter_ops:
        latter = subgraph_from_ops(
            graph, latter_ops, f"{graph.name}.l",
            downstream_needs=global_needs)
    return PartitionCandidate(former, latter)


def partition_round(graph: DataflowGraph, is_schedulable,
                    explore_candidates: bool = True,
                    ) -> list[PartitionCandidate]:
    """One round of Algorithm 2 (+ the section-5.3 exploration).

    Args:
        graph: the unschedulable SMG's dataflow graph.
        is_schedulable: predicate ``DataflowGraph -> bool`` wrapping
            ``tryResourceAwareSlicing``.
        explore_candidates: also emit the one-level-deeper candidate.

    Returns:
        One or two :class:`PartitionCandidate` splits whose ``former`` side
        is schedulable.  Empty list when even a single leading sub-SMG is
        unschedulable (the caller then falls back to per-operator kernels).
    """
    segments = reorganize_sub_smgs(graph)
    global_needs = set(graph.output_tensors)
    candidates: list[PartitionCandidate] = []

    for cut in range(len(segments), 0, -1):
        cand = _split(graph, segments, cut, global_needs)
        if is_schedulable(cand.former):
            candidates.append(cand)
            # Section 5.3: speculatively peel one more trailing non-A2O
            # sub-SMG from the schedulable former side.
            if explore_candidates and cut > 1 and segments[cut - 1].kind == "nonA2O":
                extra = _split(graph, segments, cut - 1, global_needs)
                if is_schedulable(extra.former):
                    candidates.append(extra)
            break
    return candidates
