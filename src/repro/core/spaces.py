"""Computational spaces: the nodes of a Space-Mapping Graph (section 4.1).

The paper conceptualises two kinds of spaces:

* **Data spaces** abstract tensors (inputs, outputs, intermediates, weights).
* **Iteration spaces** model the nested-loop structure of an operator's
  computation.

Every space is a geometric object: it *extends* along a subset of the fused
space's dimensions and is a point ("-" placeholder in the paper's notation)
along the rest.  That geometry is what the slicers cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.tensor import DTYPE_BYTES, DimRegistry


@dataclass(frozen=True)
class Space:
    """Base class for computational spaces.

    Attributes:
        name: unique node name inside its SMG.
        dims: ordered dimensions along which this space extends.
    """

    name: str
    dims: tuple[str, ...]

    def has_dim(self, dim: str) -> bool:
        return dim in self.dims

    def volume(self, registry: DimRegistry) -> int:
        v = 1
        for d in self.dims:
            v *= registry.size(d)
        return v

    def render(self, all_dims: tuple[str, ...]) -> str:
        """Paper-style rendering with '-' placeholders, e.g. ``Query(M,-,K)``."""
        slots = [d if d in self.dims else "-" for d in all_dims]
        return f"{self.name}({','.join(slots)})"


@dataclass(frozen=True)
class DataSpace(Space):
    """A tensor viewed as a geometric space.

    ``role`` distinguishes how the memory planner (section 5.4) treats it:
    ``"input"`` and ``"output"`` spaces live in global memory; intermediates
    are candidates for on-chip placement.
    """

    dtype: str = "fp16"
    role: str = "intermediate"  # "input" | "output" | "intermediate"
    is_weight: bool = False

    def nbytes(self, registry: DimRegistry) -> int:
        return self.volume(registry) * DTYPE_BYTES[self.dtype]

    @property
    def is_graph_input(self) -> bool:
        return self.role == "input"

    @property
    def is_graph_output(self) -> bool:
        return self.role == "output"


@dataclass(frozen=True)
class IterationSpace(Space):
    """An operator's loop nest viewed as a geometric space.

    ``op_name`` links back to the IR operator whose computation this space
    models; the executor uses that link to evaluate the space numerically.
    """

    op_name: str = ""
    op_kind: str = ""


@dataclass
class SlicedExtent:
    """A dimension after slicing: the original extent cut into blocks.

    ``block`` elements per slice along ``dim``; the final slice may be
    ragged when ``block`` does not divide ``size``.
    """

    dim: str
    size: int
    block: int

    def __post_init__(self) -> None:
        if not (1 <= self.block <= self.size):
            raise ValueError(
                f"block {self.block} out of range for dim {self.dim!r} of size {self.size}"
            )

    @property
    def num_slices(self) -> int:
        return -(-self.size // self.block)

    def slice_bounds(self, index: int) -> tuple[int, int]:
        if not (0 <= index < self.num_slices):
            raise IndexError(f"slice index {index} out of range")
        lo = index * self.block
        return lo, min(lo + self.block, self.size)
