"""Memory-hierarchy scheduling (section 5.4).

SpaceFusion assigns memory levels directly from SMG structure:

* data spaces connected with One-to-One mappings inside a block, and
  iteration-space accumulators, map to **registers**;
* the source of a One-to-All and the sink of an All-to-One map to **shared
  memory** (repeated read/write access, potential inter-thread exchange);
* SMG input/output data spaces, and intermediates between two SMGs, map to
  **global memory**.

Temporal-stage aggregates (the running max/sum/output of UTA) are the one
refinement: they are per-row accumulators carried across intra-blocks, so
they live in registers like FlashAttention's running statistics.
"""

from __future__ import annotations

from .builder import build_smg
from .mappings import A2O, O2A
from .schedule import KernelSchedule
from .smg import SMG

REGISTER = "register"
SHARED = "shared"
GLOBAL = "global"


def plan_memory_levels(kernel: KernelSchedule) -> dict[str, str]:
    """Assign a memory level to every tensor of a kernel's execution graph."""
    graph = kernel.exec_graph
    smg = build_smg(graph, name=f"{kernel.name}@memplan")
    plan = kernel.plan
    stage_outputs = set(plan.stage_outputs) if plan is not None else set()

    levels: dict[str, str] = {}
    inputs = set(graph.input_tensors)
    outputs = set(graph.output_tensors)

    for tensor in graph.tensors:
        if tensor in inputs or tensor in outputs:
            levels[tensor] = GLOBAL
            continue
        if tensor in stage_outputs:
            levels[tensor] = REGISTER
            continue
        is_o2a_source = any(
            m.kind is O2A for m in smg.out_edges(tensor)
        )
        is_a2o_sink = any(
            m.kind is A2O for m in smg.in_edges(tensor)
        )
        levels[tensor] = SHARED if (is_o2a_source or is_a2o_sink) else REGISTER
    return levels


def apply_memory_plan(kernel: KernelSchedule) -> KernelSchedule:
    kernel.memory_levels = plan_memory_levels(kernel)
    return kernel


def check_memory_plan(kernel: KernelSchedule) -> list[str]:
    """Re-check a kernel's memory-level assignment against section 5.4.

    Unlike :func:`plan_memory_levels` this does not *produce* a plan — it
    re-derives what each tensor's level must be from SMG structure and
    reports every divergence, so a doctored or stale ``memory_levels`` map
    is caught even though the executors never consult it for correctness.
    Returns a list of human-readable violations (empty when legal).
    """
    problems: list[str] = []
    graph = kernel.exec_graph
    levels = kernel.memory_levels
    if not levels:
        return [f"kernel {kernel.name!r} has no memory plan"]

    smg = build_smg(graph, name=f"{kernel.name}@memcheck")
    plan = kernel.plan
    stage_outputs = set(plan.stage_outputs) if plan is not None else set()
    inputs = set(graph.input_tensors)
    outputs = set(graph.output_tensors)
    valid = {REGISTER, SHARED, GLOBAL}

    for tensor in graph.tensors:
        level = levels.get(tensor)
        if level is None:
            problems.append(f"tensor {tensor!r} has no memory level")
            continue
        if level not in valid:
            problems.append(f"tensor {tensor!r} has unknown level {level!r}")
            continue
        if tensor in inputs or tensor in outputs:
            if level != GLOBAL:
                problems.append(
                    f"kernel-boundary tensor {tensor!r} must be global, "
                    f"planned {level!r}")
            continue
        if tensor in stage_outputs:
            if level != REGISTER:
                problems.append(
                    f"aggregate {tensor!r} is a per-row accumulator carried "
                    f"across intra-blocks and must be register, planned "
                    f"{level!r}")
            continue
        is_o2a_source = any(m.kind is O2A for m in smg.out_edges(tensor))
        is_a2o_sink = any(m.kind is A2O for m in smg.in_edges(tensor))
        expected = SHARED if (is_o2a_source or is_a2o_sink) else REGISTER
        if level != expected:
            reason = ("feeds a One-to-All / sinks an All-to-One"
                      if expected == SHARED
                      else "participates only in One-to-One mappings")
            problems.append(
                f"intermediate {tensor!r} {reason} and must be {expected}, "
                f"planned {level!r}")
    for tensor in levels:
        if tensor not in graph.tensors:
            problems.append(
                f"memory plan names unknown tensor {tensor!r}")
    return problems


def shared_tensors(kernel: KernelSchedule) -> list[str]:
    return [t for t, lvl in kernel.memory_levels.items() if lvl == SHARED]


def register_tensors(kernel: KernelSchedule) -> list[str]:
    return [t for t, lvl in kernel.memory_levels.items() if lvl == REGISTER]
