"""The Space-Mapping Graph (SMG): the paper's core abstraction (section 4.1).

An SMG is a directed graph whose nodes are computational spaces
(:class:`~repro.core.spaces.DataSpace`, :class:`~repro.core.spaces.IterationSpace`)
and whose edges are :class:`~repro.core.mappings.Mapping` objects carrying
geometric direction dimensions.  Compared to a dataflow graph it adds
exactly the three ingredients the paper names: dimensional node geometry,
explicit iteration spaces, and categorised dependency mappings.

The queries on this class are what the slicers (sections 4.2/4.3) and the
auto-scheduler (section 5) consume: which mappings reside within a given
dimension, which All-to-One mappings form dependency chains, and how much
data-space volume extends along each dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import DataflowGraph
from ..ir.tensor import DimRegistry
from .mappings import A2O, O2A, O2O, Mapping, MappingKind
from .spaces import DataSpace, IterationSpace, Space


class SMGError(Exception):
    """Raised for structurally invalid Space-Mapping Graphs."""


@dataclass
class SMG:
    """A Space-Mapping Graph over a barrier-free dataflow subgraph."""

    name: str
    dims: tuple[str, ...]
    registry: DimRegistry
    spaces: dict[str, Space] = field(default_factory=dict)
    mappings: list[Mapping] = field(default_factory=list)
    #: The dataflow graph this SMG abstracts; the executor and the UTA
    #: machinery consult it for operator semantics.
    graph: DataflowGraph | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def add_space(self, space: Space) -> Space:
        if space.name in self.spaces:
            raise SMGError(f"space {space.name!r} already present")
        unknown = [d for d in space.dims if d not in self.dims]
        if unknown:
            raise SMGError(f"space {space.name!r} uses unknown dims {unknown}")
        self.spaces[space.name] = space
        return space

    def add_mapping(self, mapping: Mapping) -> Mapping:
        for end in (mapping.src, mapping.dst):
            if end not in self.spaces:
                raise SMGError(f"mapping endpoint {end!r} is not a space")
        self.mappings.append(mapping)
        return mapping

    # ------------------------------------------------------------------
    # Node queries
    # ------------------------------------------------------------------

    def data_spaces(self) -> list[DataSpace]:
        return [s for s in self.spaces.values() if isinstance(s, DataSpace)]

    def iteration_spaces(self) -> list[IterationSpace]:
        return [s for s in self.spaces.values() if isinstance(s, IterationSpace)]

    def input_spaces(self) -> list[DataSpace]:
        return [s for s in self.data_spaces() if s.is_graph_input]

    def output_spaces(self) -> list[DataSpace]:
        return [s for s in self.data_spaces() if s.is_graph_output]

    def intermediate_spaces(self) -> list[DataSpace]:
        return [s for s in self.data_spaces() if s.role == "intermediate"]

    def space(self, name: str) -> Space:
        try:
            return self.spaces[name]
        except KeyError:
            raise SMGError(f"no space named {name!r}") from None

    # ------------------------------------------------------------------
    # Edge queries
    # ------------------------------------------------------------------

    def out_edges(self, space: str) -> list[Mapping]:
        return [m for m in self.mappings if m.src == space]

    def in_edges(self, space: str) -> list[Mapping]:
        return [m for m in self.mappings if m.dst == space]

    def mappings_along(self, dim: str) -> list[Mapping]:
        """All mappings whose geometric direction includes ``dim`` — the
        mappings "residing within the dimension" of Table 3."""
        return [m for m in self.mappings if m.along(dim)]

    def input_o2a_along(self, dim: str) -> list[Mapping]:
        """O2A mappings along ``dim`` sourced from kernel-input data spaces.

        These are the only mappings the spatial slicer may cut (section 4.2):
        their source lives in global memory, visible to every thread block,
        so slicing them creates no inter-block dataflow.
        """
        out = []
        for m in self.mappings_along(dim):
            if m.kind is O2A:
                src = self.spaces[m.src]
                if isinstance(src, DataSpace) and src.is_graph_input:
                    out.append(m)
        return out

    def blocking_mappings_for_spatial(self, dim: str) -> list[Mapping]:
        """Mappings along ``dim`` that forbid spatial slicing (Table 3)."""
        blocked = []
        for m in self.mappings_along(dim):
            if m.kind is A2O:
                blocked.append(m)
            elif m.kind is O2A:
                src = self.spaces[m.src]
                if not (isinstance(src, DataSpace) and src.is_graph_input):
                    blocked.append(m)
        return blocked

    def a2o_along(self, dim: str) -> list[Mapping]:
        return [m for m in self.mappings_along(dim) if m.kind is A2O]

    # ------------------------------------------------------------------
    # Reachability and A2O dependency structure (for the temporal slicer)
    # ------------------------------------------------------------------

    def _successors(self, space: str) -> list[str]:
        return [m.dst for m in self.out_edges(space)]

    def reaches(self, src: str, dst: str) -> bool:
        """Directed reachability between spaces."""
        seen = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            for nxt in self._successors(node):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def a2o_dependency_chains(self, dim: str) -> list[list[Mapping]]:
        """Group the A2O mappings along ``dim`` into dependency chains.

        Two A2Os are dependent when the result (destination data space) of
        one reaches the iteration space of the other.  Returns a list of
        groups, each topologically ordered; singleton groups are the
        *independent All-to-One(s)* of Table 3, longer groups are
        *dependent All-to-Ones* requiring Update-then-Aggregate.
        """
        a2os = self.a2o_along(dim)
        n = len(a2os)
        depends = [[False] * n for _ in range(n)]
        for i, mi in enumerate(a2os):
            for j, mj in enumerate(a2os):
                if i != j and self.reaches(mi.dst, mj.src):
                    depends[j][i] = True  # j depends on i

        # Union-find over the dependency relation to form groups.
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i in range(n):
            for j in range(n):
                if depends[i][j]:
                    parent[find(i)] = find(j)

        groups: dict[int, list[int]] = {}
        for i in range(n):
            groups.setdefault(find(i), []).append(i)

        ordered_groups: list[list[Mapping]] = []
        for members in groups.values():
            # topological order inside the group: fewer dependencies first
            members.sort(key=lambda i: sum(depends[i]))
            ordered_groups.append([a2os[i] for i in members])
        ordered_groups.sort(key=lambda g: self.mappings.index(g[0]))
        return ordered_groups

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def volume_along(self, dim: str) -> int:
        """Total data-space volume extending along ``dim``.

        The temporal slicer prefers the dimension with the largest volume:
        slicing it yields the biggest on-chip footprint reduction
        (Algorithm 1, line 9).
        """
        return sum(
            s.volume(self.registry) for s in self.data_spaces() if s.has_dim(dim)
        )

    def dim_size(self, dim: str) -> int:
        return self.registry.size(dim)

    def render(self) -> str:
        """Paper-style multi-line rendering of the SMG (Figures 3(c)/5(c))."""
        lines = [f"SMG {self.name} dims=({','.join(self.dims)})"]
        for s in self.spaces.values():
            tag = "iter" if isinstance(s, IterationSpace) else getattr(s, "role", "?")
            lines.append(f"  [{tag}] {s.render(self.dims)}")
        for m in self.mappings:
            lines.append(f"  {m.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Aligned view (dimension alignment of section 4.1)
    # ------------------------------------------------------------------

    def aligned_dim_groups(self) -> list[tuple[str, ...]]:
        """Greedy dimension alignment: merge equal-extent dimensions that
        never co-occur in any space into shared slots.

        This reproduces the paper's compact fused spaces (e.g. MHA's Query
        feature dim and Value feature dim sharing Dim0 in Figure 5) without
        changing scheduling semantics — alignment is a geometric view.
        """
        conflict: dict[str, set[str]] = {d: set() for d in self.dims}
        for s in self.spaces.values():
            for a in s.dims:
                for b in s.dims:
                    if a != b:
                        conflict[a].add(b)
        groups: list[list[str]] = []
        for d in self.dims:
            placed = False
            for g in groups:
                if (self.registry.size(g[0]) == self.registry.size(d)
                        and all(d not in conflict[other] for other in g)):
                    g.append(d)
                    placed = True
                    break
            if not placed:
                groups.append([d])
        return [tuple(g) for g in groups]

    #: Reduce kinds an A2O mapping may carry (the executor's REDUCE_INIT
    #: table and the UTA combiner rules both assume one of these).
    VALID_REDUCE_KINDS = frozenset({"sum", "max", "min", "mean"})

    def validate(self) -> None:
        """Structural checks re-stating the paper's mapping-direction
        invariants (section 4.1): every iteration space has exactly one
        outgoing mapping (to its output data space); every mapping connects
        registered spaces through registered direction dims; One-to-One
        mappings are direction-free and connect equi-dimensional spaces;
        a One-to-All's direction dims are exactly the dims the destination
        gains; an All-to-One's are exactly the dims the source loses; and
        every All-to-One carries a known reduce kind."""
        for it in self.iteration_spaces():
            outs = self.out_edges(it.name)
            if len(outs) != 1:
                raise SMGError(
                    f"iteration space {it.name!r} must have exactly one output "
                    f"mapping, found {len(outs)}"
                )
        for m in self.mappings:
            for end in (m.src, m.dst):
                if end not in self.spaces:
                    raise SMGError(
                        f"mapping {m.describe()}: endpoint {end!r} is not a "
                        f"space of this SMG")
            src, dst = self.spaces[m.src], self.spaces[m.dst]
            unknown = [d for d in m.dims if d not in self.dims]
            if unknown:
                raise SMGError(
                    f"mapping {m.describe()}: unregistered direction dims "
                    f"{unknown}")
            if m.kind is O2O:
                if m.dims:
                    raise SMGError(
                        f"O2O {m.describe()}: One-to-One mappings are "
                        f"direction-free, found dims {list(m.dims)}")
                if set(src.dims) != set(dst.dims):
                    raise SMGError(
                        f"O2O {m.describe()}: endpoints must extend along "
                        f"the same dims, got {list(src.dims)} vs "
                        f"{list(dst.dims)}")
            elif m.kind is O2A:
                bad = [d for d in m.dims if src.has_dim(d) or not dst.has_dim(d)]
                if bad:
                    raise SMGError(f"O2A {m.describe()}: bad direction dims {bad}")
                missing = set(dst.dims) - set(src.dims) - set(m.dims)
                if missing:
                    raise SMGError(
                        f"O2A {m.describe()}: destination gains dims "
                        f"{sorted(missing)} not covered by the direction")
            elif m.kind is A2O:
                bad = [d for d in m.dims if not src.has_dim(d) or dst.has_dim(d)]
                if bad:
                    raise SMGError(f"A2O {m.describe()}: bad direction dims {bad}")
                missing = set(src.dims) - set(dst.dims) - set(m.dims)
                if missing:
                    raise SMGError(
                        f"A2O {m.describe()}: source loses dims "
                        f"{sorted(missing)} not covered by the direction")
                if m.reduce_kind not in self.VALID_REDUCE_KINDS:
                    raise SMGError(
                        f"A2O {m.describe()}: unknown reduce kind "
                        f"{m.reduce_kind!r}")
