"""Consistent-hash sharding of workloads across cluster workers.

Workloads (and their compiled sessions) are pinned to workers with a
classic consistent-hash ring: each worker contributes ``vnodes`` virtual
points on a 2^64 ring (SHA-256 of ``"worker:vnode"``), and a workload is
owned by the first worker point clockwise of the workload's own hash.

Properties the supervisor relies on:

* **determinism** — ownership is a pure function of (worker set, key):
  every process with the same member list computes the same placement,
  so routing needs no coordination;
* **stability** — adding or removing one worker moves only ~1/N of the
  keys (the segment the member owned), so a crash-restart does not
  reshuffle the fleet's warm plan caches;
* **spread** — ``owners(key, n)`` returns ``n`` *distinct* workers for
  replicated serving: the primary plus fallbacks used when a worker's
  restart breaker is open.
"""

from __future__ import annotations

import bisect
import hashlib


def _hash(token: str) -> int:
    """Stable 64-bit ring position (process-seed independent, unlike
    builtin ``hash``)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over named members.

    ``vnodes`` controls placement smoothness: more virtual nodes even
    out the per-member key share at the cost of a larger sorted ring
    (lookup stays O(log(members * vnodes))).
    """

    def __init__(self, members: list[str] | None = None,
                 vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []        # sorted ring positions
        self._owner_at: dict[int, str] = {}  # ring position -> member
        self._members: set[str] = set()
        for m in members or ():
            self.add(m)

    # -- membership -----------------------------------------------------

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for v in range(self.vnodes):
            point = _hash(f"{member}:{v}")
            if point in self._owner_at:      # astronomically unlikely
                continue
            bisect.insort(self._points, point)
            self._owner_at[point] = member

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [p for p in self._points if self._owner_at[p] != member]
        for p in self._points:
            if self._owner_at[p] == member:
                del self._owner_at[p]
        self._points = keep

    @property
    def members(self) -> frozenset[str]:
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    # -- lookup ---------------------------------------------------------

    def owner(self, key: str) -> str:
        """The member owning ``key`` (raises when the ring is empty)."""
        return self.owners(key, 1)[0]

    def owners(self, key: str, n: int = 1) -> list[str]:
        """The first ``n`` distinct members clockwise of ``key``'s hash.

        Element 0 is the primary owner; the rest are the deterministic
        fallback order used when earlier owners are down.
        """
        if not self._points:
            raise KeyError("hash ring has no members")
        n = min(n, len(self._members))
        start = bisect.bisect_right(self._points, _hash(key))
        found: list[str] = []
        for i in range(len(self._points)):
            point = self._points[(start + i) % len(self._points)]
            member = self._owner_at[point]
            if member not in found:
                found.append(member)
                if len(found) == n:
                    break
        return found

    def assignment(self, keys: list[str]) -> dict[str, list[str]]:
        """Map each member to the (sorted) keys it owns — the supervisor
        uses this to decide which sessions each worker must host."""
        placed: dict[str, list[str]] = {m: [] for m in self._members}
        for key in keys:
            placed[self.owner(key)].append(key)
        return {m: sorted(ks) for m, ks in placed.items()}
