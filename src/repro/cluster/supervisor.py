"""ClusterSupervisor: sharded multi-process serving with self-healing.

The supervisor scales :class:`~repro.serve.server.FusionServer` past one
process: it forks ``N`` worker processes (each hosting inference
sessions behind its own in-process server, see
:mod:`repro.cluster.worker`), shards workloads across them with a
consistent-hash ring, admits requests under a priority/tenant-aware
policy *before* they cross the process boundary, health-checks the fleet
with heartbeats, and restarts crashed workers behind a per-worker
circuit breaker.

Delivery guarantees:

* every accepted (admitted) request is answered **exactly once** — with
  outputs, a typed rejection, or :class:`~repro.serve.batching.WorkerCrashed`
  when its worker died mid-flight; nothing ever hangs a submitter past
  its timeout;
* a key is **compiled once fleet-wide**: workers share one disk schedule
  cache directory, and the per-key advisory file lock in
  :class:`~repro.serve.cache.TieredScheduleCache` extends single-flight
  across processes;
* ``stop(drain=True)`` is a **graceful drain**: workers stop accepting,
  finish their queues, and report their final metrics, which the
  supervisor aggregates into the cluster report.

The degradation ladder under overload, from the outside in: tenant
fair-share shed → priority-class shed → capacity shed (all supervisor
side, cheap) → worker-queue shed (:class:`~repro.serve.batching.Overloaded`
over the wire) → per-session compiled→reference fallback inside the
worker (never an error).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import DataflowGraph
from ..obs import event as obs_event
from ..resilience.retry import CircuitBreaker
from ..serve import (
    Overloaded,
    Request,
    ServeMetrics,
    SessionReply,
    WorkerCrashed,
    validate_feeds,
)
from .admission import (
    PRIORITY_NORMAL,
    SHED_WORKER_DOWN,
    AdmissionController,
    AdmissionPolicy,
)
from .sharding import HashRing
from .worker import (
    ERR_CRASHED,
    ERR_DRAINING,
    ERR_INVALID,
    ERR_OVERLOADED,
    ERR_TIMEOUT,
    WorkerConfig,
    worker_main,
)


class ClusterError(Exception):
    """Invalid cluster usage (unknown workload, stopped cluster)."""


class ClusterShed(Overloaded):
    """Typed supervisor-side load shed; ``reason`` names the policy rung
    (``capacity`` / ``priority`` / ``tenant`` / ``worker_down``)."""

    def __init__(self, reason: str, worker: str | None = None) -> None:
        RuntimeError.__init__(
            self, f"cluster shed ({reason})"
            + (f" routing to worker {worker!r}" if worker else ""))
        self.reason = reason
        self.worker = worker
        self.depth = -1
        self.bound = -1


#: Wire error kind → exception factory (message carried verbatim).
def _rebuild_error(kind: str, msg: str, worker: str) -> Exception:
    if kind == ERR_OVERLOADED or kind == ERR_DRAINING:
        exc: Exception = ClusterShed("worker_queue", worker)
        exc.args = (msg,)
        return exc
    if kind == ERR_CRASHED:
        return WorkerCrashed(worker, msg)
    if kind == ERR_TIMEOUT:
        return TimeoutError(msg)
    if kind == ERR_INVALID:
        from ..serve import InvalidRequestError

        return InvalidRequestError(msg)
    return ClusterError(f"worker {worker}: {msg}")


@dataclass
class ClusterConfig:
    """Knobs for the whole cluster tier (worker knobs included)."""

    workers: int = 2
    gpu: str = "ampere"
    engine: str = "compiled"
    #: Shared disk schedule-cache directory (None = no cross-process
    #: cache — each worker compiles privately; set it in production).
    cache_dir: str | None = None
    #: Shared tuning-database directory (None = per-process tuning only;
    #: point the fleet at one directory so each kernel's campaign runs
    #: once cluster-wide — see :mod:`repro.tune`).
    tune_db_dir: str | None = None
    #: How many distinct workers host each workload (primary + warm
    #: fallbacks for routing around a down worker).
    replication: int = 2
    vnodes: int = 64
    max_batch: int = 8
    max_wait_ms: float = 1.0
    threads_per_worker: int = 2
    worker_queue_depth: int | None = 64
    lock_timeout_s: float = 30.0
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    health_interval_s: float = 0.25
    heartbeat_timeout_s: float = 5.0
    #: Consecutive-crash breaker per worker: after ``threshold`` crashes
    #: the worker stays down until ``reset`` elapses, then one restart
    #: probe is allowed (half-open).
    restart_breaker_threshold: int = 3
    restart_breaker_reset_s: float = 2.0
    start_timeout_s: float = 30.0
    drain_timeout_s: float = 60.0
    #: Failpoint plan armed inside every worker at boot (chaos/tests).
    fault_plan: dict[str, str] = field(default_factory=dict)


class _Worker:
    """One worker generation: process, pipe, receiver, in-flight book."""

    def __init__(self, name: str, proc, conn, generation: int) -> None:
        self.name = name
        self.proc = proc
        self.conn = conn
        self.generation = generation
        self.send_lock = threading.Lock()
        self.inflight: dict[int, tuple[Request, str]] = {}
        self.inflight_lock = threading.Lock()
        self.up = True
        self.draining = False
        self.ready = threading.Event()
        self.armed = threading.Event()
        self.drained = threading.Event()
        self.stopped = threading.Event()
        self.last_pong = time.monotonic()
        self.health: dict = {}
        self.final_stats: dict = {}
        self.stats_replies: dict[int, dict] = {}
        self.stats_event = threading.Event()
        self.receiver: threading.Thread | None = None

    def send(self, msg: tuple) -> None:
        with self.send_lock:
            self.conn.send(msg)

    def take_inflight(self, req_id: int) -> tuple[Request, str] | None:
        with self.inflight_lock:
            return self.inflight.pop(req_id, None)

    def drain_inflight(self) -> list[tuple[Request, str]]:
        with self.inflight_lock:
            items = list(self.inflight.values())
            self.inflight.clear()
            return items


class ClusterSupervisor:
    """Front door for a sharded multi-worker serving fleet."""

    def __init__(self, workloads: dict[str, DataflowGraph],
                 config: ClusterConfig | None = None,
                 metrics: ServeMetrics | None = None) -> None:
        if not workloads:
            raise ClusterError("cluster needs at least one workload")
        self.config = config or ClusterConfig()
        if self.config.workers < 1:
            raise ClusterError("cluster needs at least one worker")
        self.graphs = dict(workloads)
        self.metrics = metrics or ServeMetrics()
        self._packed = WorkerConfig.pack_workloads(self.graphs)
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.admission = AdmissionController(self.config.admission)
        self._workers: dict[str, _Worker] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._restarts: dict[str, int] = {}
        self._worker_stats: dict[str, dict] = {}
        self._req_ids = itertools.count(1)
        self._generations = itertools.count(1)
        self._lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._health_thread: threading.Thread | None = None
        self._ping_seq = itertools.count(1)
        self._stats_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _worker_names(self) -> list[str]:
        return [f"w{i}" for i in range(self.config.workers)]

    def _hosted_by(self, worker: str) -> dict[str, dict]:
        """Serialized graphs for every workload ``worker`` must host:
        the ones it owns plus the ones it backs up (replication)."""
        r = min(self.config.workers, max(1, self.config.replication))
        return {name: self._packed[name] for name in self.graphs
                if worker in self.ring.owners(name, r)}

    def owners_for(self, workload: str) -> list[str]:
        r = min(self.config.workers, max(1, self.config.replication))
        return self.ring.owners(workload, r)

    def placement(self) -> dict[str, list[str]]:
        """workload → ordered candidate workers (primary first)."""
        return {name: self.owners_for(name) for name in sorted(self.graphs)}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        if self._started:
            return self
        self._started = True
        for name in self._worker_names():
            self.ring.add(name)
            self._breakers[name] = CircuitBreaker(
                failure_threshold=self.config.restart_breaker_threshold,
                reset_timeout_s=self.config.restart_breaker_reset_s)
            self._restarts[name] = 0
        for name in self._worker_names():
            self._spawn(name)
        deadline = time.monotonic() + self.config.start_timeout_s
        for w in list(self._workers.values()):
            if not w.ready.wait(max(0.0, deadline - time.monotonic())):
                raise ClusterError(
                    f"worker {w.name} failed to become ready within "
                    f"{self.config.start_timeout_s:.0f}s")
        self._health_thread = threading.Thread(
            target=self._health_loop, name="cluster-health", daemon=True)
        self._health_thread.start()
        return self

    def _spawn(self, name: str) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        wconfig = WorkerConfig(
            name=name, workloads=self._hosted_by(name),
            gpu=self.config.gpu, engine=self.config.engine,
            cache_dir=self.config.cache_dir,
            tune_db_dir=self.config.tune_db_dir,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            threads=self.config.threads_per_worker,
            max_queue_depth=self.config.worker_queue_depth,
            lock_timeout_s=self.config.lock_timeout_s,
            fault_plan=dict(self.config.fault_plan))
        proc = self._ctx.Process(target=worker_main,
                                 args=(child_conn, wconfig),
                                 name=f"cluster-{name}", daemon=True)
        proc.start()
        child_conn.close()
        worker = _Worker(name, proc, parent_conn,
                         next(self._generations))
        worker.receiver = threading.Thread(
            target=self._receive_loop, args=(worker,),
            name=f"recv-{name}", daemon=True)
        with self._lock:
            self._workers[name] = worker
        worker.receiver.start()
        return worker

    def stop(self, drain: bool = True) -> None:
        """Shut the fleet down; with ``drain`` every queued request is
        answered first and each worker's final metrics are collected."""
        if self._stopping:
            return
        self._stopping = True
        if self._health_thread is not None:
            self._health_thread.join(
                timeout=self.config.health_interval_s * 4 + 1.0)
        workers = list(self._workers.values())
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout_s
            for w in workers:
                if w.up:
                    w.draining = True
                    self._try_send(w, ("drain",))
            for w in workers:
                if w.up:
                    w.drained.wait(max(0.1, deadline - time.monotonic()))
                    if w.final_stats:
                        self._worker_stats[w.name] = w.final_stats
        for w in workers:
            if w.up:
                self._try_send(w, ("stop",))
        for w in workers:
            w.stopped.wait(timeout=5.0)
            if w.final_stats:
                self._worker_stats[w.name] = w.final_stats
            w.proc.join(timeout=5.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=5.0)
            # Anything still in flight after a full drain+stop cycle is
            # dead — never strand the submitter.
            for request, tenant in w.drain_inflight():
                self.admission.release(w.name, tenant)
                request.fail(WorkerCrashed(
                    w.name, "cluster stopped with request in flight"))
                self.metrics.inc("requests.worker_crashed")
            try:
                w.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _try_send(self, worker: _Worker, msg: tuple) -> bool:
        try:
            worker.send(msg)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def submit(self, workload: str, feeds: dict[str, np.ndarray],
               timeout: float | None = None,
               tenant: str = "default",
               priority: int = PRIORITY_NORMAL,
               on_done=None) -> Request:
        """Route one request to its shard; returns a future-like handle.

        Raises :class:`ClusterShed` (a typed
        :class:`~repro.serve.batching.Overloaded`) when admission policy
        or fleet health rejects the request *before* dispatch.
        """
        if self._stopping or not self._started:
            raise ClusterError("cluster is not serving"
                               if not self._started else
                               "cluster is stopping")
        graph = self.graphs.get(workload)
        if graph is None:
            raise ClusterError(
                f"unknown workload {workload!r}; registered: "
                f"{sorted(self.graphs)}")
        self.metrics.inc("requests.submitted")
        validate_feeds(feeds, required=graph.input_tensors)
        worker = self._route(workload)
        if worker is None:
            self._shed(SHED_WORKER_DOWN, workload)
        reason = self.admission.admit(worker.name, tenant, priority)
        if reason is not None:
            self._shed(reason, workload, worker.name)
        req_id = next(self._req_ids)
        request = Request(workload=workload, feeds=feeds,
                          timeout_s=timeout, on_done=on_done)
        with worker.inflight_lock:
            worker.inflight[req_id] = (request, tenant)
        try:
            worker.send(("req", req_id, workload, feeds, timeout))
        except (OSError, ValueError, BrokenPipeError):
            # The worker died between routing and send: fail typed, give
            # the slot back, and let the health loop handle the corpse.
            if worker.take_inflight(req_id) is not None:
                self.admission.release(worker.name, tenant)
                self.metrics.inc("requests.worker_crashed")
                request.fail(WorkerCrashed(worker.name,
                                           "pipe broke at dispatch"))
        return request

    def infer(self, workload: str, feeds: dict[str, np.ndarray],
              timeout: float | None = None, tenant: str = "default",
              priority: int = PRIORITY_NORMAL) -> SessionReply:
        """Synchronous convenience: submit and wait."""
        return self.submit(workload, feeds, timeout=timeout, tenant=tenant,
                           priority=priority).result(timeout=timeout)

    def _shed(self, reason: str, workload: str,
              worker: str | None = None) -> None:
        self.metrics.inc("requests.shed")
        self.metrics.inc(f"shed.{reason}")
        obs_event("cluster_shed", category="cluster", workload=workload,
                  reason=reason)
        raise ClusterShed(reason, worker)

    def _route(self, workload: str) -> _Worker | None:
        """Primary owner, else the first live replica in owner order."""
        with self._lock:
            for name in self.owners_for(workload):
                w = self._workers.get(name)
                if w is not None and w.up and not w.draining:
                    return w
        return None

    # ------------------------------------------------------------------
    # Receive / health / crash handling
    # ------------------------------------------------------------------

    def _receive_loop(self, worker: _Worker) -> None:
        while True:
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "reply":
                entry = worker.take_inflight(msg[1])
                if entry is None:
                    continue  # already failed (crash race); count dupes
                request, tenant = entry
                self.admission.release(worker.name, tenant)
                payload = msg[2]
                self.metrics.observe_request(payload["latency_s"])
                if payload["degraded"]:
                    self.metrics.record_fallback(payload["reason"]
                                                 or "unknown")
                request.resolve(SessionReply(**payload))
            elif kind == "error":
                entry = worker.take_inflight(msg[1])
                if entry is None:
                    continue
                request, tenant = entry
                self.admission.release(worker.name, tenant)
                self.metrics.inc("requests.remote_errors")
                request.fail(_rebuild_error(msg[2], msg[3], worker.name))
            elif kind == "pong":
                worker.last_pong = time.monotonic()
                worker.health = msg[2]
            elif kind == "ready":
                worker.ready.set()
            elif kind == "armed":
                worker.armed.set()
            elif kind == "stats_reply":
                worker.stats_replies[msg[1]] = msg[2]
                worker.stats_event.set()
            elif kind == "drained":
                worker.final_stats = msg[1]
                worker.drained.set()
            elif kind == "stopped":
                worker.final_stats = msg[1]
                worker.stopped.set()
        # Pipe gone.  During shutdown that is expected; otherwise the
        # worker crashed and the receiver is the first to know.
        if not self._stopping and worker.proc is not None:
            self._handle_crash(worker)

    def _handle_crash(self, worker: _Worker) -> None:
        """Fail the dead worker's in-flight, then breaker-gate a restart."""
        with self._lock:
            current = self._workers.get(worker.name)
            if current is not worker or not worker.up:
                return  # an older generation, or already handled
            worker.up = False
        self.metrics.inc("workers.crashed")
        obs_event("worker_crash", category="cluster", worker=worker.name,
                  generation=worker.generation)
        for request, tenant in worker.drain_inflight():
            self.admission.release(worker.name, tenant)
            self.metrics.inc("requests.worker_crashed")
            request.fail(WorkerCrashed(worker.name,
                                       "process died mid-flight"))
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        breaker = self._breakers[worker.name]
        breaker.record_failure()
        if self._stopping:
            return
        if breaker.allow():
            self._restart(worker.name)
        else:
            obs_event("worker_restart_suppressed", category="cluster",
                      worker=worker.name, breaker=breaker.state)

    def _restart(self, name: str) -> None:
        self.metrics.inc("workers.restarts")
        self._restarts[name] += 1
        obs_event("worker_restart", category="cluster", worker=name,
                  restarts=self._restarts[name])
        fresh = self._spawn(name)
        if fresh.ready.wait(self.config.start_timeout_s):
            # A full ready cycle is the restart breaker's "success": a
            # crash-looping worker keeps the failure streak instead.
            self._breakers[name].record_success()
        else:
            self._handle_crash(fresh)

    def _health_loop(self) -> None:
        interval = self.config.health_interval_s
        while not self._stopping:
            time.sleep(interval)
            with self._lock:
                workers = list(self._workers.values())
            for w in workers:
                if self._stopping:
                    return
                if w.up:
                    if not w.proc.is_alive():
                        self._handle_crash(w)
                        continue
                    if not self._try_send(w, ("ping", next(self._ping_seq))):
                        self._handle_crash(w)
                        continue
                    if (time.monotonic() - w.last_pong
                            > self.config.heartbeat_timeout_s):
                        # Hung, not dead: a worker that cannot answer a
                        # ping cannot answer requests either.
                        obs_event("worker_hung", category="cluster",
                                  worker=w.name)
                        w.proc.terminate()
                        self._handle_crash(w)
                else:
                    # Down with the restart breaker open: probe once the
                    # reset timeout elapses (half-open semantics).
                    breaker = self._breakers[w.name]
                    if breaker.allow():
                        self._restart(w.name)

    # ------------------------------------------------------------------
    # Test / chaos hooks
    # ------------------------------------------------------------------

    def kill_worker(self, name: str, code: int = 1) -> None:
        """Hard-kill one worker (crash testing); the health/receiver
        machinery must detect it and recover."""
        with self._lock:
            w = self._workers.get(name)
        if w is None:
            raise ClusterError(f"unknown worker {name!r}")
        if not self._try_send(w, ("kill", code)) and w.proc.is_alive():
            w.proc.terminate()

    def arm_faults(self, name: str, plan: dict[str, str],
                   timeout: float = 5.0) -> bool:
        with self._lock:
            w = self._workers.get(name)
        if w is None:
            raise ClusterError(f"unknown worker {name!r}")
        w.armed.clear()
        if not self._try_send(w, ("arm", dict(plan))):
            return False
        return w.armed.wait(timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def worker_names(self) -> list[str]:
        return self._worker_names()

    def restarts(self) -> dict[str, int]:
        return dict(self._restarts)

    def request_stats(self, name: str, timeout: float = 5.0) -> dict | None:
        """Live metrics snapshot from one worker (None on timeout)."""
        with self._lock:
            w = self._workers.get(name)
        if w is None or not w.up:
            return self._worker_stats.get(name)
        seq = next(self._stats_seq)
        w.stats_event.clear()
        if not self._try_send(w, ("stats", seq)):
            return None
        deadline = time.monotonic() + timeout
        while seq not in w.stats_replies:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not w.stats_event.wait(remaining):
                return None
            w.stats_event.clear()
        return w.stats_replies.pop(seq)

    def worker_stats(self) -> dict[str, dict]:
        """Final per-worker metrics snapshots (populated by drain/stop;
        live workers are polled on demand)."""
        out = dict(self._worker_stats)
        if not self._stopping:
            for name in self._worker_names():
                snap = self.request_stats(name)
                if snap is not None:
                    out[name] = snap
        return out

    #: Counter families aggregated fleet-wide in :meth:`aggregate`.
    _AGG_PREFIXES = ("cache.", "breaker.", "fallbacks", "requests",
                     "plans.", "faults.", "workers.", "lower.",
                     "compile_failures", "batches_dispatched",
                     "request_errors")

    def aggregate(self) -> dict:
        """Cluster-wide report: supervisor counters plus the sum of every
        worker's serving counters (cache tiers, breaker trips, fallbacks)."""
        totals: dict[str, float] = {}
        per_worker = self.worker_stats()
        for snap in per_worker.values():
            for key, value in snap.items():
                if (isinstance(value, (int, float))
                        and key.startswith(self._AGG_PREFIXES)):
                    totals[key] = totals.get(key, 0) + value
        return {
            "supervisor": self.metrics.snapshot(),
            "workers": per_worker,
            "worker_totals": totals,
            "restarts": self.restarts(),
            "placement": self.placement(),
        }

    def health(self) -> dict:
        """Fleet health: ``healthy`` (all up) / ``degraded`` (some
        workers down) / ``unhealthy`` (stopped or nothing up)."""
        with self._lock:
            states = {
                name: {
                    "up": w.up,
                    "draining": w.draining,
                    "generation": w.generation,
                    "restarts": self._restarts.get(name, 0),
                    "breaker": self._breakers[name].state,
                    "last_health": dict(w.health),
                }
                for name, w in self._workers.items()
            }
        up = sum(1 for s in states.values() if s["up"])
        if self._stopping or up == 0:
            status = "unhealthy"
        elif up < len(states):
            status = "degraded"
        else:
            status = "healthy"
        return {"status": status, "workers": states,
                "shed": self.metrics.get("requests.shed"),
                "crashes": self.metrics.get("workers.crashed")}
