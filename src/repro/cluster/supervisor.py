"""ClusterSupervisor: sharded multi-process serving with self-healing.

The supervisor scales :class:`~repro.serve.server.FusionServer` past one
process: it forks ``N`` worker processes (each hosting inference
sessions behind its own in-process server, see
:mod:`repro.cluster.worker`), shards workloads across them with a
consistent-hash ring, admits requests under a priority/tenant-aware
policy *before* they cross the process boundary, health-checks the fleet
with heartbeats, and restarts crashed workers behind a per-worker
circuit breaker.

Delivery guarantees:

* every accepted (admitted) request is answered **exactly once** — with
  outputs, a typed rejection, or :class:`~repro.serve.batching.WorkerCrashed`
  when its worker died mid-flight; nothing ever hangs a submitter past
  its timeout;
* a key is **compiled once fleet-wide**: workers share one disk schedule
  cache directory, and the per-key advisory file lock in
  :class:`~repro.serve.cache.TieredScheduleCache` extends single-flight
  across processes;
* ``stop(drain=True)`` is a **graceful drain**: workers stop accepting,
  finish their queues, and report their final metrics, which the
  supervisor aggregates into the cluster report.

The degradation ladder under overload, from the outside in: tenant
fair-share shed → priority-class shed → capacity shed (all supervisor
side, cheap) → worker-queue shed (:class:`~repro.serve.batching.Overloaded`
over the wire) → per-session compiled→reference fallback inside the
worker (never an error).
"""

from __future__ import annotations

import heapq
import itertools
import math
import multiprocessing as mp
import signal as _signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..ir.graph import DataflowGraph
from ..obs import event as obs_event
from ..resilience import faults as _faults
from ..resilience.retry import CircuitBreaker
from ..serve import (
    Overloaded,
    Request,
    ServeMetrics,
    SessionReply,
    WorkerCrashed,
    validate_feeds,
)
from .admission import (
    PRIORITY_NORMAL,
    SHED_WORKER_DOWN,
    AdmissionController,
    AdmissionPolicy,
)
from .sharding import HashRing
from .worker import (
    ERR_CRASHED,
    ERR_DRAINING,
    ERR_INVALID,
    ERR_OVERLOADED,
    ERR_TIMEOUT,
    WorkerConfig,
    worker_main,
)


#: Failpoint on the supervisor's dispatch path (between ingress and the
#: wire send).  A ``delay(ms)`` here simulates slow routing/queueing so
#: tests can prove supervisor-side elapsed time is deducted from the
#: request's end-to-end budget before the worker sees it.
FP_DISPATCH = _faults.register("cluster.dispatch")


class ClusterError(Exception):
    """Invalid cluster usage (unknown workload, stopped cluster)."""


class ClusterShed(Overloaded):
    """Typed supervisor-side load shed; ``reason`` names the policy rung
    (``capacity`` / ``priority`` / ``tenant`` / ``worker_down``)."""

    def __init__(self, reason: str, worker: str | None = None) -> None:
        RuntimeError.__init__(
            self, f"cluster shed ({reason})"
            + (f" routing to worker {worker!r}" if worker else ""))
        self.reason = reason
        self.worker = worker
        self.depth = -1
        self.bound = -1


#: Wire error kind → exception factory (message carried verbatim).
def _rebuild_error(kind: str, msg: str, worker: str) -> Exception:
    if kind == ERR_OVERLOADED or kind == ERR_DRAINING:
        exc: Exception = ClusterShed("worker_queue", worker)
        exc.args = (msg,)
        return exc
    if kind == ERR_CRASHED:
        return WorkerCrashed(worker, msg)
    if kind == ERR_TIMEOUT:
        return TimeoutError(msg)
    if kind == ERR_INVALID:
        from ..serve import InvalidRequestError

        return InvalidRequestError(msg)
    return ClusterError(f"worker {worker}: {msg}")


@dataclass
class ClusterConfig:
    """Knobs for the whole cluster tier (worker knobs included)."""

    workers: int = 2
    gpu: str = "ampere"
    engine: str = "compiled"
    #: Shared disk schedule-cache directory (None = no cross-process
    #: cache — each worker compiles privately; set it in production).
    cache_dir: str | None = None
    #: Shared tuning-database directory (None = per-process tuning only;
    #: point the fleet at one directory so each kernel's campaign runs
    #: once cluster-wide — see :mod:`repro.tune`).
    tune_db_dir: str | None = None
    #: How many distinct workers host each workload (primary + warm
    #: fallbacks for routing around a down worker).
    replication: int = 2
    vnodes: int = 64
    max_batch: int = 8
    max_wait_ms: float = 1.0
    threads_per_worker: int = 2
    worker_queue_depth: int | None = 64
    lock_timeout_s: float = 30.0
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    health_interval_s: float = 0.25
    heartbeat_timeout_s: float = 5.0
    #: Consecutive-crash breaker per worker: after ``threshold`` crashes
    #: the worker stays down until ``reset`` elapses, then one restart
    #: probe is allowed (half-open).
    restart_breaker_threshold: int = 3
    restart_breaker_reset_s: float = 2.0
    start_timeout_s: float = 30.0
    drain_timeout_s: float = 60.0
    #: Failpoint plan armed inside every worker at boot (chaos/tests).
    fault_plan: dict[str, str] = field(default_factory=dict)
    #: Hedged replica requests: when the routed worker has not answered
    #: within the hedge delay, re-issue to the next live replica; first
    #: response wins, the loser is cancelled.
    hedge: bool = True
    #: Fixed hedge delay in seconds; ``None`` adapts online to each
    #: workload's observed p95 reply latency (no hedging until
    #: ``hedge_min_samples`` replies have been seen — cold workloads
    #: include compile time and must not be double-compiled by hedges).
    hedge_delay_s: float | None = None
    hedge_min_delay_s: float = 0.01
    hedge_min_samples: int = 50
    #: Cap on concurrently outstanding hedges as a fraction of open
    #: requests (a brown-out must not double the fleet's load); at least
    #: one hedge is always allowed so light traffic can still hedge.
    hedge_max_fraction: float = 0.1
    #: Per-session compile budget inside workers: retry backoff never
    #: sleeps past it (``retry.deadline_capped`` counts when it bites).
    compile_deadline_s: float | None = None


class _Tracked:
    """Supervisor-side book entry for one *logical* client request.

    A request has one :class:`~repro.serve.batching.Request` the client
    holds and one or two *wire copies* (the routed original plus at most
    one hedge), each outstanding on some worker under its own wire id.
    All completion paths — replies, wire errors, crash drains, deadline
    expiry — converge on :meth:`ClusterSupervisor._finish_copy`, which
    uses ``done_handled`` under ``lock`` as the single exactly-once
    latch: whatever races, the client's Request resolves exactly once.
    """

    __slots__ = ("request", "workload", "tenant", "priority", "deadline",
                 "lock", "copies", "done_handled", "first_error",
                 "hedged", "hedge_req_id", "sent_at")

    def __init__(self, request: Request, workload: str, tenant: str,
                 priority: int, deadline: float | None) -> None:
        self.request = request
        self.workload = workload
        self.tenant = tenant
        self.priority = priority
        #: Absolute monotonic end-to-end deadline (None = unbounded).
        self.deadline = deadline
        self.lock = threading.Lock()
        #: Outstanding wire copies: wire req_id → worker name.
        self.copies: dict[int, str] = {}
        self.done_handled = False
        #: First copy error, held while another copy may still answer.
        self.first_error: Exception | None = None
        self.hedged = False
        self.hedge_req_id: int | None = None
        self.sent_at = time.monotonic()


class _Worker:
    """One worker generation: process, pipe, receiver, in-flight book."""

    def __init__(self, name: str, proc, conn, generation: int) -> None:
        self.name = name
        self.proc = proc
        self.conn = conn
        self.generation = generation
        self.send_lock = threading.Lock()
        self.inflight: dict[int, _Tracked] = {}
        self.inflight_lock = threading.Lock()
        self.up = True
        self.draining = False
        self.ready = threading.Event()
        self.armed = threading.Event()
        self.drained = threading.Event()
        self.stopped = threading.Event()
        self.last_pong = time.monotonic()
        self.health: dict = {}
        self.final_stats: dict = {}
        self.stats_replies: dict[int, dict] = {}
        self.stats_event = threading.Event()
        self.receiver: threading.Thread | None = None

    def send(self, msg: tuple) -> None:
        with self.send_lock:
            self.conn.send(msg)

    def take_inflight(self, req_id: int) -> _Tracked | None:
        with self.inflight_lock:
            return self.inflight.pop(req_id, None)

    def drain_inflight(self) -> list[tuple[int, _Tracked]]:
        with self.inflight_lock:
            items = list(self.inflight.items())
            self.inflight.clear()
            return items


class ClusterSupervisor:
    """Front door for a sharded multi-worker serving fleet."""

    def __init__(self, workloads: dict[str, DataflowGraph],
                 config: ClusterConfig | None = None,
                 metrics: ServeMetrics | None = None) -> None:
        if not workloads:
            raise ClusterError("cluster needs at least one workload")
        self.config = config or ClusterConfig()
        if self.config.workers < 1:
            raise ClusterError("cluster needs at least one worker")
        self.graphs = dict(workloads)
        self.metrics = metrics or ServeMetrics()
        self._packed = WorkerConfig.pack_workloads(self.graphs)
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.admission = AdmissionController(self.config.admission)
        self._workers: dict[str, _Worker] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._restarts: dict[str, int] = {}
        self._worker_stats: dict[str, dict] = {}
        self._req_ids = itertools.count(1)
        self._generations = itertools.count(1)
        self._lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._health_thread: threading.Thread | None = None
        self._ping_seq = itertools.count(1)
        self._stats_seq = itertools.count(1)
        # Hedge/deadline timer machinery: one heap of (at, seq, kind,
        # tracked) events drained by a single timer thread.
        self._timer_heap: list[tuple[float, int, str, _Tracked]] = []
        self._timer_cond = threading.Condition()
        self._timer_seq = itertools.count()
        self._timer_thread: threading.Thread | None = None
        self._hedge_lock = threading.Lock()
        self._hedges_out = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _worker_names(self) -> list[str]:
        return [f"w{i}" for i in range(self.config.workers)]

    def _hosted_by(self, worker: str) -> dict[str, dict]:
        """Serialized graphs for every workload ``worker`` must host:
        the ones it owns plus the ones it backs up (replication)."""
        r = min(self.config.workers, max(1, self.config.replication))
        return {name: self._packed[name] for name in self.graphs
                if worker in self.ring.owners(name, r)}

    def owners_for(self, workload: str) -> list[str]:
        r = min(self.config.workers, max(1, self.config.replication))
        return self.ring.owners(workload, r)

    def placement(self) -> dict[str, list[str]]:
        """workload → ordered candidate workers (primary first)."""
        return {name: self.owners_for(name) for name in sorted(self.graphs)}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        if self._started:
            return self
        self._started = True
        for name in self._worker_names():
            self.ring.add(name)
            self._breakers[name] = CircuitBreaker(
                failure_threshold=self.config.restart_breaker_threshold,
                reset_timeout_s=self.config.restart_breaker_reset_s)
            self._restarts[name] = 0
        for name in self._worker_names():
            self._spawn(name)
        deadline = time.monotonic() + self.config.start_timeout_s
        for w in list(self._workers.values()):
            if not w.ready.wait(max(0.0, deadline - time.monotonic())):
                raise ClusterError(
                    f"worker {w.name} failed to become ready within "
                    f"{self.config.start_timeout_s:.0f}s")
        self._health_thread = threading.Thread(
            target=self._health_loop, name="cluster-health", daemon=True)
        self._health_thread.start()
        self._timer_thread = threading.Thread(
            target=self._timer_loop, name="cluster-timer", daemon=True)
        self._timer_thread.start()
        return self

    def _spawn(self, name: str) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        wconfig = WorkerConfig(
            name=name, workloads=self._hosted_by(name),
            gpu=self.config.gpu, engine=self.config.engine,
            cache_dir=self.config.cache_dir,
            tune_db_dir=self.config.tune_db_dir,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            threads=self.config.threads_per_worker,
            max_queue_depth=self.config.worker_queue_depth,
            lock_timeout_s=self.config.lock_timeout_s,
            fault_plan=dict(self.config.fault_plan),
            compile_deadline_s=self.config.compile_deadline_s)
        proc = self._ctx.Process(target=worker_main,
                                 args=(child_conn, wconfig),
                                 name=f"cluster-{name}", daemon=True)
        proc.start()
        child_conn.close()
        worker = _Worker(name, proc, parent_conn,
                         next(self._generations))
        worker.receiver = threading.Thread(
            target=self._receive_loop, args=(worker,),
            name=f"recv-{name}", daemon=True)
        with self._lock:
            self._workers[name] = worker
        worker.receiver.start()
        return worker

    def stop(self, drain: bool = True) -> None:
        """Shut the fleet down; with ``drain`` every queued request is
        answered first and each worker's final metrics are collected."""
        if self._stopping:
            return
        self._stopping = True
        with self._timer_cond:
            self._timer_cond.notify_all()
        if self._health_thread is not None:
            self._health_thread.join(
                timeout=self.config.health_interval_s * 4 + 1.0)
        if self._timer_thread is not None:
            self._timer_thread.join(timeout=2.0)
        workers = list(self._workers.values())
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout_s
            for w in workers:
                if w.up:
                    w.draining = True
                    self._try_send(w, ("drain",))
            for w in workers:
                if w.up:
                    w.drained.wait(max(0.1, deadline - time.monotonic()))
                    if w.final_stats:
                        self._worker_stats[w.name] = w.final_stats
        for w in workers:
            if w.up:
                self._try_send(w, ("stop",))
        for w in workers:
            w.stopped.wait(timeout=5.0)
            if w.final_stats:
                self._worker_stats[w.name] = w.final_stats
            w.proc.join(timeout=5.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=5.0)
            # Anything still in flight after a full drain+stop cycle is
            # dead — never strand the submitter.
            for req_id, tracked in w.drain_inflight():
                self.metrics.inc("requests.worker_crashed")
                self._finish_copy(w, req_id, tracked,
                                  error=WorkerCrashed(
                                      w.name,
                                      "cluster stopped with request "
                                      "in flight"))
            try:
                w.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def install_signal_handlers(self) -> Callable[[], None]:
        """Drain the fleet on SIGTERM/SIGINT instead of orphaning
        children: Ctrl-C on ``repro loadtest``/``repro serve`` answers
        everything queued, collects worker stats, then re-raises
        (``KeyboardInterrupt`` for SIGINT, ``SystemExit(143)`` for
        SIGTERM).  Returns a callable restoring the previous handlers;
        a no-op off the main thread, where signals cannot be installed.
        """
        previous: dict[int, object] = {}

        def _handler(signum, frame):
            obs_event("signal_drain", category="cluster", signum=signum)
            self.stop(drain=True)
            if signum == _signal.SIGINT:
                raise KeyboardInterrupt
            raise SystemExit(143)

        try:
            for sig in (_signal.SIGTERM, _signal.SIGINT):
                previous[sig] = _signal.signal(sig, _handler)
        except ValueError:      # not the main thread
            return lambda: None

        def restore() -> None:
            for sig, old in previous.items():
                try:
                    _signal.signal(sig, old)
                except (ValueError, TypeError):
                    pass

        return restore

    def _try_send(self, worker: _Worker, msg: tuple) -> bool:
        try:
            worker.send(msg)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def submit(self, workload: str, feeds: dict[str, np.ndarray],
               timeout: float | None = None,
               tenant: str = "default",
               priority: int = PRIORITY_NORMAL,
               on_done=None) -> Request:
        """Route one request to its shard; returns a future-like handle.

        ``timeout`` is the request's whole end-to-end budget, anchored
        *here* at ingress: supervisor-side routing, queueing, and wire
        time are deducted before the worker sees the remaining budget,
        and the request is never answered past it.

        Raises :class:`ClusterShed` (a typed
        :class:`~repro.serve.batching.Overloaded`) when admission policy
        or fleet health rejects the request *before* dispatch.
        """
        if self._stopping or not self._started:
            raise ClusterError("cluster is not serving"
                               if not self._started else
                               "cluster is stopping")
        graph = self.graphs.get(workload)
        if graph is None:
            raise ClusterError(
                f"unknown workload {workload!r}; registered: "
                f"{sorted(self.graphs)}")
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        self.metrics.inc("requests.submitted")
        validate_feeds(feeds, required=graph.input_tensors)
        try:
            _faults.fire(FP_DISPATCH)
        except _faults.FaultInjected:
            self.metrics.inc("faults.dispatch")
        worker = self._route(workload)
        if worker is None:
            self._shed(SHED_WORKER_DOWN, workload)
        reason = self.admission.admit(worker.name, tenant, priority)
        if reason is not None:
            self._shed(reason, workload, worker.name)
        req_id = next(self._req_ids)
        request = Request(workload=workload, feeds=feeds,
                          timeout_s=timeout, on_done=on_done,
                          deadline_s=deadline)
        tracked = _Tracked(request, workload, tenant, priority, deadline)
        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # The budget died on the supervisor (routing/queue
                # time): never dispatch a dead deadline.
                self.admission.release(worker.name, tenant)
                self.metrics.inc("deadline.expired_dispatch")
                tracked.done_handled = True
                request.fail(TimeoutError(
                    f"request for {workload!r} spent its whole "
                    f"{timeout:.3g}s budget before dispatch"))
                return request
        with tracked.lock:
            tracked.copies[req_id] = worker.name
        with worker.inflight_lock:
            worker.inflight[req_id] = tracked
        try:
            worker.send(("req", req_id, workload, feeds, remaining))
        except (OSError, ValueError, BrokenPipeError):
            # The worker died between routing and send: fail typed, give
            # the slot back, and let the health loop handle the corpse.
            if worker.take_inflight(req_id) is not None:
                self.metrics.inc("requests.worker_crashed")
                self._finish_copy(worker, req_id, tracked,
                                  error=WorkerCrashed(
                                      worker.name,
                                      "pipe broke at dispatch"))
            return request
        if deadline is not None:
            self._schedule_at(deadline, "deadline", tracked)
        hedge_delay = self._hedge_delay(workload)
        if hedge_delay is not None:
            self._schedule_at(time.monotonic() + hedge_delay,
                              "hedge", tracked)
        return request

    def infer(self, workload: str, feeds: dict[str, np.ndarray],
              timeout: float | None = None, tenant: str = "default",
              priority: int = PRIORITY_NORMAL) -> SessionReply:
        """Synchronous convenience: submit and wait."""
        return self.submit(workload, feeds, timeout=timeout, tenant=tenant,
                           priority=priority).result(timeout=timeout)

    def _shed(self, reason: str, workload: str,
              worker: str | None = None) -> None:
        self.metrics.inc("requests.shed")
        self.metrics.inc(f"shed.{reason}")
        obs_event("cluster_shed", category="cluster", workload=workload,
                  reason=reason)
        raise ClusterShed(reason, worker)

    def _route(self, workload: str) -> _Worker | None:
        """Primary owner, else the first live replica in owner order."""
        with self._lock:
            for name in self.owners_for(workload):
                w = self._workers.get(name)
                if w is not None and w.up and not w.draining:
                    return w
        return None

    # ------------------------------------------------------------------
    # Completion (exactly-once) and hedging
    # ------------------------------------------------------------------

    def _finish_copy(self, worker: _Worker, req_id: int,
                     tracked: _Tracked, payload: dict | None = None,
                     error: Exception | None = None) -> None:
        """One wire copy finished (reply, wire error, or crash drain).

        Every copy passes through here exactly once — ``take_inflight``
        /``drain_inflight`` pop atomically — so the admission slot it
        held is released exactly once, and the ``done_handled`` latch
        resolves the client's Request exactly once no matter how the
        copies race.
        """
        self.admission.release(worker.name, tracked.tenant)
        now = time.monotonic()
        outcome = None
        with tracked.lock:
            tracked.copies.pop(req_id, None)
            copies_left = len(tracked.copies)
            was_done = tracked.done_handled
            is_hedge_copy = (req_id == tracked.hedge_req_id)
            was_hedged = tracked.hedged
            late = (tracked.deadline is not None
                    and now > tracked.deadline)
            if not was_done:
                if payload is not None:
                    tracked.done_handled = True
                    outcome = "late" if late else "resolve"
                elif error is not None:
                    if copies_left:
                        # Another copy may still answer: hold the error.
                        tracked.first_error = error
                    else:
                        tracked.done_handled = True
                        outcome = "fail"
        if is_hedge_copy:
            with self._hedge_lock:
                self._hedges_out -= 1
        if outcome == "resolve":
            self.metrics.observe_request(payload["latency_s"],
                                         workload=tracked.workload)
            if payload["degraded"]:
                self.metrics.record_fallback(payload["reason"]
                                             or "unknown")
            if is_hedge_copy:
                self.metrics.inc("hedge.won")
                obs_event("hedge_won", category="cluster",
                          workload=tracked.workload, worker=worker.name)
            tracked.request.resolve(SessionReply(**payload))
            self._cancel_copies(tracked)
        elif outcome == "late":
            # The answer exists but the budget is spent: a strict
            # deadline is never answered late, at any boundary.
            self.metrics.inc("deadline.expired_reply")
            tracked.request.fail(TimeoutError(
                f"request for {tracked.workload!r} answered past its "
                "end-to-end deadline; result withheld"))
            self._cancel_copies(tracked)
        elif outcome == "fail":
            tracked.request.fail(error)
        elif was_done and was_hedged:
            # The losing copy of a settled hedge pair came back.
            self.metrics.inc("hedge.wasted")

    def _cancel_copies(self, tracked: _Tracked) -> None:
        """Best-effort cancel of every still-outstanding wire copy."""
        with tracked.lock:
            copies = dict(tracked.copies)
        for rid, wname in copies.items():
            with self._lock:
                w = self._workers.get(wname)
            if w is not None and w.up:
                self._try_send(w, ("cancel", rid))

    def _hedge_delay(self, workload: str) -> float | None:
        """Seconds to wait before hedging, or None = don't hedge."""
        cfg = self.config
        if not cfg.hedge or cfg.workers < 2 or cfg.replication < 2:
            return None
        if cfg.hedge_delay_s is not None:
            return max(cfg.hedge_delay_s, cfg.hedge_min_delay_s)
        p95 = self.metrics.workload_latency_quantile(
            workload, 0.95, min_samples=cfg.hedge_min_samples)
        if p95 is None:
            return None
        return max(p95, cfg.hedge_min_delay_s)

    def _schedule_at(self, at: float, kind: str,
                     tracked: _Tracked) -> None:
        with self._timer_cond:
            heapq.heappush(self._timer_heap,
                           (at, next(self._timer_seq), kind, tracked))
            self._timer_cond.notify_all()

    def _timer_loop(self) -> None:
        while not self._stopping:
            with self._timer_cond:
                if not self._timer_heap:
                    self._timer_cond.wait(0.5)
                    continue
                at = self._timer_heap[0][0]
                delay = at - time.monotonic()
                if delay > 0:
                    self._timer_cond.wait(min(delay, 0.5))
                    continue
                _, _, kind, tracked = heapq.heappop(self._timer_heap)
            if kind == "deadline":
                self._expire_tracked(tracked)
            else:
                self._maybe_hedge(tracked)

    def _expire_tracked(self, tracked: _Tracked) -> None:
        """Deadline fired supervisor-side: fail now, cancel the copies."""
        with tracked.lock:
            if tracked.done_handled:
                return
            tracked.done_handled = True
        self.metrics.inc("deadline.expired_supervisor")
        obs_event("deadline_expired", category="cluster",
                  workload=tracked.workload)
        tracked.request.fail(TimeoutError(
            f"request for {tracked.workload!r} exceeded its "
            "end-to-end budget"))
        self._cancel_copies(tracked)

    def _maybe_hedge(self, tracked: _Tracked) -> None:
        """Hedge timer fired: re-issue to the next replica if warranted."""
        with tracked.lock:
            if (tracked.done_handled or tracked.hedged
                    or len(tracked.copies) != 1):
                return
            routed = next(iter(tracked.copies.values()))
        if (tracked.deadline is not None
                and time.monotonic() >= tracked.deadline):
            return
        # Next live replica in owner order that isn't the routed worker.
        target = None
        with self._lock:
            for name in self.owners_for(tracked.workload):
                w = self._workers.get(name)
                if (name != routed and w is not None and w.up
                        and not w.draining):
                    target = w
                    break
        if target is None:
            return
        # Budget cap: outstanding hedges never exceed the configured
        # fraction of open requests (but one is always allowed, or
        # light traffic could never hedge at all).
        open_total = max(1, self.admission.outstanding_total())
        cap = max(1, math.floor(
            self.config.hedge_max_fraction * open_total))
        with self._hedge_lock:
            if self._hedges_out >= cap:
                self.metrics.inc("hedge.suppressed")
                return
            self._hedges_out += 1
            peak = max(self.metrics.get_gauge("hedge.peak_outstanding"),
                       self._hedges_out)
        self.metrics.set_gauge("hedge.peak_outstanding", peak)
        self.metrics.set_gauge(
            "hedge.peak_open_requests",
            max(self.metrics.get_gauge("hedge.peak_open_requests"),
                open_total))
        reason = self.admission.admit(target.name, tracked.tenant,
                                      tracked.priority)
        if reason is not None:
            with self._hedge_lock:
                self._hedges_out -= 1
            self.metrics.inc("hedge.suppressed")
            return
        hedge_id = next(self._req_ids)
        with tracked.lock:
            if tracked.done_handled:        # settled while we admitted
                self.admission.release(target.name, tracked.tenant)
                with self._hedge_lock:
                    self._hedges_out -= 1
                return
            tracked.hedged = True
            tracked.hedge_req_id = hedge_id
            tracked.copies[hedge_id] = target.name
        with target.inflight_lock:
            target.inflight[hedge_id] = tracked
        remaining = (tracked.deadline - time.monotonic()
                     if tracked.deadline is not None else None)
        try:
            target.send(("req", hedge_id, tracked.workload,
                         tracked.request.feeds, remaining))
        except (OSError, ValueError, BrokenPipeError):
            if target.take_inflight(hedge_id) is not None:
                self.admission.release(target.name, tracked.tenant)
                with tracked.lock:
                    tracked.copies.pop(hedge_id, None)
                    tracked.hedge_req_id = None
                    tracked.hedged = False
                with self._hedge_lock:
                    self._hedges_out -= 1
            return
        self.metrics.inc("hedge.issued")
        obs_event("hedge_issued", category="cluster",
                  workload=tracked.workload, original=routed,
                  hedge=target.name)

    # ------------------------------------------------------------------
    # Receive / health / crash handling
    # ------------------------------------------------------------------

    def _receive_loop(self, worker: _Worker) -> None:
        while True:
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                break
            except (TypeError, ValueError):
                # conn.close() raced the blocking recv (crash handling
                # closes the pipe from another thread): same as EOF.
                break
            kind = msg[0]
            if kind == "reply":
                tracked = worker.take_inflight(msg[1])
                if tracked is None:
                    continue  # already failed (crash race); count dupes
                self._finish_copy(worker, msg[1], tracked, payload=msg[2])
            elif kind == "error":
                tracked = worker.take_inflight(msg[1])
                if tracked is None:
                    continue
                self.metrics.inc("requests.remote_errors")
                self._finish_copy(worker, msg[1], tracked,
                                  error=_rebuild_error(msg[2], msg[3],
                                                       worker.name))
            elif kind == "pong":
                worker.last_pong = time.monotonic()
                worker.health = msg[2]
            elif kind == "ready":
                worker.ready.set()
            elif kind == "armed":
                worker.armed.set()
            elif kind == "stats_reply":
                worker.stats_replies[msg[1]] = msg[2]
                worker.stats_event.set()
            elif kind == "drained":
                worker.final_stats = msg[1]
                worker.drained.set()
            elif kind == "stopped":
                worker.final_stats = msg[1]
                worker.stopped.set()
        # Pipe gone.  During shutdown that is expected; otherwise the
        # worker crashed and the receiver is the first to know.
        if not self._stopping and worker.proc is not None:
            self._handle_crash(worker)

    def _handle_crash(self, worker: _Worker) -> None:
        """Fail the dead worker's in-flight, then breaker-gate a restart."""
        with self._lock:
            current = self._workers.get(worker.name)
            if current is not worker or not worker.up:
                return  # an older generation, or already handled
            worker.up = False
        self.metrics.inc("workers.crashed")
        obs_event("worker_crash", category="cluster", worker=worker.name,
                  generation=worker.generation)
        for req_id, tracked in worker.drain_inflight():
            self.metrics.inc("requests.worker_crashed")
            # Through the same exactly-once funnel as replies: a request
            # that already resolved (hedge won, reply raced the crash)
            # is not failed again, and a hedged request with a live copy
            # elsewhere survives the crash entirely.
            self._finish_copy(worker, req_id, tracked,
                              error=WorkerCrashed(
                                  worker.name, "process died mid-flight"))
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        breaker = self._breakers[worker.name]
        breaker.record_failure()
        if self._stopping:
            return
        if breaker.allow():
            self._restart(worker.name)
        else:
            obs_event("worker_restart_suppressed", category="cluster",
                      worker=worker.name, breaker=breaker.state)

    def _restart(self, name: str) -> None:
        self.metrics.inc("workers.restarts")
        self._restarts[name] += 1
        obs_event("worker_restart", category="cluster", worker=name,
                  restarts=self._restarts[name])
        fresh = self._spawn(name)
        if fresh.ready.wait(self.config.start_timeout_s):
            # A full ready cycle is the restart breaker's "success": a
            # crash-looping worker keeps the failure streak instead.
            self._breakers[name].record_success()
        else:
            self._handle_crash(fresh)

    def _health_loop(self) -> None:
        interval = self.config.health_interval_s
        while not self._stopping:
            time.sleep(interval)
            with self._lock:
                workers = list(self._workers.values())
            for w in workers:
                if self._stopping:
                    return
                if w.up:
                    if not w.proc.is_alive():
                        self._handle_crash(w)
                        continue
                    if not self._try_send(w, ("ping", next(self._ping_seq))):
                        self._handle_crash(w)
                        continue
                    if (time.monotonic() - w.last_pong
                            > self.config.heartbeat_timeout_s):
                        # Hung, not dead: a worker that cannot answer a
                        # ping cannot answer requests either.
                        self.metrics.inc("workers.hung")
                        obs_event("worker_hung", category="cluster",
                                  worker=w.name)
                        w.proc.terminate()
                        self._handle_crash(w)
                else:
                    # Down with the restart breaker open: probe once the
                    # reset timeout elapses (half-open semantics).
                    breaker = self._breakers[w.name]
                    if breaker.allow():
                        self._restart(w.name)

    # ------------------------------------------------------------------
    # Test / chaos hooks
    # ------------------------------------------------------------------

    def kill_worker(self, name: str, code: int = 1) -> None:
        """Hard-kill one worker (crash testing); the health/receiver
        machinery must detect it and recover."""
        with self._lock:
            w = self._workers.get(name)
        if w is None:
            raise ClusterError(f"unknown worker {name!r}")
        if not self._try_send(w, ("kill", code)) and w.proc.is_alive():
            w.proc.terminate()

    def arm_faults(self, name: str, plan: dict[str, str],
                   timeout: float = 5.0) -> bool:
        with self._lock:
            w = self._workers.get(name)
        if w is None:
            raise ClusterError(f"unknown worker {name!r}")
        w.armed.clear()
        if not self._try_send(w, ("arm", dict(plan))):
            return False
        return w.armed.wait(timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def worker_names(self) -> list[str]:
        return self._worker_names()

    def restarts(self) -> dict[str, int]:
        return dict(self._restarts)

    def request_stats(self, name: str, timeout: float = 5.0) -> dict | None:
        """Live metrics snapshot from one worker (None on timeout)."""
        with self._lock:
            w = self._workers.get(name)
        if w is None or not w.up:
            return self._worker_stats.get(name)
        seq = next(self._stats_seq)
        w.stats_event.clear()
        if not self._try_send(w, ("stats", seq)):
            return None
        deadline = time.monotonic() + timeout
        while seq not in w.stats_replies:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not w.stats_event.wait(remaining):
                return None
            w.stats_event.clear()
        return w.stats_replies.pop(seq)

    def worker_stats(self) -> dict[str, dict]:
        """Final per-worker metrics snapshots (populated by drain/stop;
        live workers are polled on demand)."""
        out = dict(self._worker_stats)
        if not self._stopping:
            for name in self._worker_names():
                snap = self.request_stats(name)
                if snap is not None:
                    out[name] = snap
        return out

    #: Counter families aggregated fleet-wide in :meth:`aggregate`.
    _AGG_PREFIXES = ("cache.", "breaker.", "fallbacks", "requests",
                     "plans.", "faults.", "workers.", "lower.",
                     "compile_failures", "batches_dispatched",
                     "request_errors", "deadline.", "hedge.", "retry.",
                     "tunedb.")

    def aggregate(self) -> dict:
        """Cluster-wide report: supervisor counters plus the sum of every
        worker's serving counters (cache tiers, breaker trips, fallbacks)."""
        totals: dict[str, float] = {}
        per_worker = self.worker_stats()
        for snap in per_worker.values():
            for key, value in snap.items():
                if (isinstance(value, (int, float))
                        and key.startswith(self._AGG_PREFIXES)):
                    totals[key] = totals.get(key, 0) + value
        return {
            "supervisor": self.metrics.snapshot(),
            "workers": per_worker,
            "worker_totals": totals,
            "restarts": self.restarts(),
            "placement": self.placement(),
        }

    def health(self) -> dict:
        """Fleet health: ``healthy`` (all up) / ``degraded`` (some
        workers down) / ``unhealthy`` (stopped or nothing up)."""
        with self._lock:
            states = {
                name: {
                    "up": w.up,
                    "draining": w.draining,
                    "generation": w.generation,
                    "restarts": self._restarts.get(name, 0),
                    "breaker": self._breakers[name].state,
                    "last_health": dict(w.health),
                }
                for name, w in self._workers.items()
            }
        up = sum(1 for s in states.values() if s["up"])
        if self._stopping or up == 0:
            status = "unhealthy"
        elif up < len(states):
            status = "degraded"
        else:
            status = "healthy"
        return {"status": status, "workers": states,
                "shed": self.metrics.get("requests.shed"),
                "crashes": self.metrics.get("workers.crashed")}
