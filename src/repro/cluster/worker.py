"""The cluster worker process: one serving slice behind a duplex pipe.

Each worker a :class:`~repro.cluster.supervisor.ClusterSupervisor` forks
runs :func:`worker_main`: it rebuilds its assigned workload graphs from
their serialized form, hosts one :class:`~repro.serve.session.InferenceSession`
per workload behind an in-process :class:`~repro.serve.server.FusionServer`
(dynamic batching, bounded queue, breaker, compiled-engine plan cache),
and speaks a small tuple protocol with the supervisor:

========================  =====================================================
supervisor → worker        meaning
========================  =====================================================
``("req", id, wl, feeds,
timeout)``                 answer one inference request
``("ping", seq)``          heartbeat; worker answers ``("pong", seq, health)``
``("stats", seq)``         request a metrics snapshot
``("arm", plan)``          arm failpoints in *this* process (tests/chaos)
``("kill", code)``         hard ``os._exit`` — crash-test hook
``("drain",)``             stop accepting, finish in-flight, report stats
``("stop",)``              shut down and exit
========================  =====================================================

Replies flow back through one dedicated sender thread (``("reply", id,
payload)`` / ``("error", id, kind, msg)`` / control acks), so the pipe
is never written concurrently.  Request completions are pushed by the
:attr:`~repro.serve.batching.Request.on_done` hook — the worker never
polls or blocks a thread per request.

The schedule cache's disk tier points at the supervisor's shared
directory: together with the per-key advisory file lock in
:class:`~repro.serve.cache.TieredScheduleCache`, a given (graph, GPU)
key is compiled by exactly one process in the fleet and every other
worker loads it as a disk hit.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field

from ..core.serialize import ScheduleCache, graph_from_dict, graph_to_dict
from ..hw import get_gpu
from ..ir.graph import DataflowGraph
from ..resilience import faults
from ..serve import (
    FusionServer,
    InferenceSession,
    InvalidRequestError,
    Overloaded,
    ServeMetrics,
    SessionReply,
    TieredScheduleCache,
    WorkerCrashed,
)

#: Wire error kinds (worker → supervisor) and the exceptions they map to.
ERR_OVERLOADED = "overloaded"
ERR_INVALID = "invalid"
ERR_TIMEOUT = "timeout"
ERR_CRASHED = "crashed"
ERR_DRAINING = "draining"
ERR_SERVER = "server"


def error_kind(exc: BaseException) -> str:
    if isinstance(exc, Overloaded):
        return ERR_OVERLOADED
    if isinstance(exc, InvalidRequestError):
        return ERR_INVALID
    if isinstance(exc, WorkerCrashed):
        return ERR_CRASHED
    if isinstance(exc, TimeoutError):
        return ERR_TIMEOUT
    return ERR_SERVER


@dataclass
class WorkerConfig:
    """Everything a worker needs, in picklable (spawn-safe) form."""

    name: str
    #: workload name → serialized graph dict (``graph_to_dict``).
    workloads: dict[str, dict]
    gpu: str = "ampere"
    engine: str = "compiled"
    cache_dir: str | None = None
    max_batch: int = 8
    max_wait_ms: float = 1.0
    threads: int = 2
    max_queue_depth: int | None = 64
    lock_timeout_s: float = 30.0
    #: Shared tuning-database directory (see :mod:`repro.tune`).  With
    #: the whole fleet pointed at one directory, a kernel's tuning
    #: campaign runs in exactly one process — single-flighted by the
    #: DB's per-fingerprint file lock — and every other worker replays
    #: the stored winner.
    tune_db_dir: str | None = None
    #: Failpoint plan armed at boot (restart-on-crash tests re-arm this
    #: way because a fresh worker process starts with a clean registry).
    fault_plan: dict[str, str] = field(default_factory=dict)

    @staticmethod
    def pack_workloads(graphs: dict[str, DataflowGraph]) -> dict[str, dict]:
        return {name: graph_to_dict(g) for name, g in graphs.items()}


def build_server(config: WorkerConfig,
                 metrics: ServeMetrics) -> FusionServer:
    """Construct the in-worker serving stack from its config."""
    gpu = get_gpu(config.gpu)
    disk = ScheduleCache(config.cache_dir) if config.cache_dir else None
    cache = TieredScheduleCache(disk=disk, metrics=metrics,
                                lock_timeout_s=config.lock_timeout_s)
    tune_db = None
    if config.tune_db_dir:
        from ..tune import TuneDB
        tune_db = TuneDB(config.tune_db_dir)
    sessions = {
        name: InferenceSession(graph_from_dict(gdict), gpu, cache=cache,
                               metrics=metrics, engine=config.engine,
                               tune_db=tune_db)
        for name, gdict in sorted(config.workloads.items())
    }
    return FusionServer(sessions, max_batch=config.max_batch,
                        max_wait_ms=config.max_wait_ms,
                        workers=config.threads, metrics=metrics,
                        max_queue_depth=config.max_queue_depth)


def worker_main(conn, config: WorkerConfig) -> None:
    """Process entry point; returns only at clean shutdown."""
    # The forked child inherits the parent's failpoint registry — and,
    # worst case, a lock some parent thread held at fork time.  Start
    # from a clean, self-owned registry and re-arm from the config.
    registry = faults.reset_after_fork()
    for name, spec in config.fault_plan.items():
        registry.arm(name, spec)

    metrics = ServeMetrics()
    server = build_server(config, metrics)
    outbox: "queue.Queue" = queue.Queue()
    accepting = True

    def sender() -> None:
        while True:
            msg = outbox.get()
            if msg is None:
                return
            try:
                conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                return  # supervisor went away; nothing left to tell

    send_thread = threading.Thread(target=sender, name="worker-sender",
                                   daemon=True)
    send_thread.start()

    def on_done(request, req_id: int) -> None:
        if request.error is not None:
            outbox.put(("error", req_id, error_kind(request.error),
                        f"{type(request.error).__name__}: {request.error}"))
        else:
            reply: SessionReply = request.reply
            outbox.put(("reply", req_id, {
                "outputs": reply.outputs,
                "degraded": reply.degraded,
                "reason": reply.reason,
                "latency_s": reply.latency_s,
            }))

    def snapshot() -> dict:
        snap = metrics.snapshot()
        snap["worker"] = config.name
        snap["pid"] = os.getpid()
        return snap

    server.start()
    outbox.put(("ready", config.name, sorted(config.workloads)))

    stopping = False
    while not stopping:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # supervisor died; daemon worker just exits
        kind = msg[0]
        if kind == "req":
            _, req_id, workload, feeds, timeout = msg
            if not accepting:
                outbox.put(("error", req_id, ERR_DRAINING,
                            f"worker {config.name} is draining"))
                continue
            try:
                server.submit(
                    workload, feeds, timeout=timeout,
                    on_done=lambda r, rid=req_id: on_done(r, rid))
            except Exception as exc:  # noqa: BLE001 — typed over the wire
                outbox.put(("error", req_id, error_kind(exc),
                            f"{type(exc).__name__}: {exc}"))
        elif kind == "ping":
            health = server.health()
            outbox.put(("pong", msg[1], {
                "status": health["status"],
                "queue_depth": health["queue_depth"],
            }))
        elif kind == "stats":
            outbox.put(("stats_reply", msg[1], snapshot()))
        elif kind == "arm":
            for name, spec in msg[1].items():
                registry.arm(name, spec)
            outbox.put(("armed",))
        elif kind == "kill":
            os._exit(msg[1] if len(msg) > 1 else 1)
        elif kind == "drain":
            accepting = False
            server.stop(drain=True)
            outbox.put(("drained", snapshot()))
        elif kind == "stop":
            stopping = True

    server.stop(drain=False)
    outbox.put(("stopped", snapshot()))
    outbox.put(None)
    send_thread.join(timeout=5.0)
    try:
        conn.close()
    except OSError:
        pass
