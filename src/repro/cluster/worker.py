"""The cluster worker process: one serving slice behind a duplex pipe.

Each worker a :class:`~repro.cluster.supervisor.ClusterSupervisor` forks
runs :func:`worker_main`: it rebuilds its assigned workload graphs from
their serialized form, hosts one :class:`~repro.serve.session.InferenceSession`
per workload behind an in-process :class:`~repro.serve.server.FusionServer`
(dynamic batching, bounded queue, breaker, compiled-engine plan cache),
and speaks a small tuple protocol with the supervisor:

========================  =====================================================
supervisor → worker        meaning
========================  =====================================================
``("req", id, wl, feeds,
remaining_s)``             answer one inference request within the *remaining*
                           end-to-end budget (the supervisor already deducted
                           its own routing/queue time; the worker re-anchors
                           the deadline on its own monotonic clock at receipt)
``("cancel", id)``         best-effort cancel (hedge lost / deadline expired
                           supervisor-side); idempotent, never an error
``("ping", seq)``          heartbeat; worker answers ``("pong", seq, health)``
``("stats", seq)``         request a metrics snapshot
``("arm", plan)``          arm failpoints in *this* process (tests/chaos)
``("kill", code)``         hard ``os._exit`` — crash-test hook
``("drain",)``             stop accepting, finish in-flight, report stats
``("stop",)``              shut down and exit
========================  =====================================================

Replies flow back through one dedicated sender thread (``("reply", id,
payload)`` / ``("error", id, kind, msg)`` / control acks), so the pipe
is never written concurrently.  Request completions are pushed by the
:attr:`~repro.serve.batching.Request.on_done` hook — the worker never
polls or blocks a thread per request.

The schedule cache's disk tier points at the supervisor's shared
directory: together with the per-key advisory file lock in
:class:`~repro.serve.cache.TieredScheduleCache`, a given (graph, GPU)
key is compiled by exactly one process in the fleet and every other
worker loads it as a disk hit.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field

from ..core.serialize import ScheduleCache, graph_from_dict, graph_to_dict
from ..hw import get_gpu
from ..ir.graph import DataflowGraph
from ..resilience import faults
from ..serve import (
    FusionServer,
    InferenceSession,
    InvalidRequestError,
    Overloaded,
    ServeMetrics,
    SessionReply,
    TieredScheduleCache,
    WorkerCrashed,
)

#: Chaos failpoints in the worker's pipe loop (armed only by tests):
#: ``hang`` with a big delay makes the worker unresponsive to pings —
#: the reap-a-hung-worker path; ``slow`` delays request intake only —
#: the slow-replica path that forces supervisor hedges.
FP_HANG = faults.register("cluster.worker.hang")
FP_SLOW = faults.register("cluster.worker.slow")

#: Wire error kinds (worker → supervisor) and the exceptions they map to.
ERR_OVERLOADED = "overloaded"
ERR_INVALID = "invalid"
ERR_TIMEOUT = "timeout"
ERR_CRASHED = "crashed"
ERR_DRAINING = "draining"
ERR_SERVER = "server"


def error_kind(exc: BaseException) -> str:
    if isinstance(exc, Overloaded):
        return ERR_OVERLOADED
    if isinstance(exc, InvalidRequestError):
        return ERR_INVALID
    if isinstance(exc, WorkerCrashed):
        return ERR_CRASHED
    if isinstance(exc, TimeoutError):
        return ERR_TIMEOUT
    return ERR_SERVER


@dataclass
class WorkerConfig:
    """Everything a worker needs, in picklable (spawn-safe) form."""

    name: str
    #: workload name → serialized graph dict (``graph_to_dict``).
    workloads: dict[str, dict]
    gpu: str = "ampere"
    engine: str = "compiled"
    cache_dir: str | None = None
    max_batch: int = 8
    max_wait_ms: float = 1.0
    threads: int = 2
    max_queue_depth: int | None = 64
    lock_timeout_s: float = 30.0
    #: Shared tuning-database directory (see :mod:`repro.tune`).  With
    #: the whole fleet pointed at one directory, a kernel's tuning
    #: campaign runs in exactly one process — single-flighted by the
    #: DB's per-fingerprint file lock — and every other worker replays
    #: the stored winner.
    tune_db_dir: str | None = None
    #: Failpoint plan armed at boot (restart-on-crash tests re-arm this
    #: way because a fresh worker process starts with a clean registry).
    fault_plan: dict[str, str] = field(default_factory=dict)
    #: Relative compile budget per session: retry backoff never sleeps
    #: past it (see :class:`~repro.serve.session.InferenceSession`).
    compile_deadline_s: float | None = None

    @staticmethod
    def pack_workloads(graphs: dict[str, DataflowGraph]) -> dict[str, dict]:
        return {name: graph_to_dict(g) for name, g in graphs.items()}


def build_server(config: WorkerConfig,
                 metrics: ServeMetrics) -> FusionServer:
    """Construct the in-worker serving stack from its config."""
    gpu = get_gpu(config.gpu)
    disk = ScheduleCache(config.cache_dir) if config.cache_dir else None
    cache = TieredScheduleCache(disk=disk, metrics=metrics,
                                lock_timeout_s=config.lock_timeout_s)
    tune_db = None
    if config.tune_db_dir:
        from ..tune import TuneDB
        tune_db = TuneDB(config.tune_db_dir, metrics=metrics)
    sessions = {
        name: InferenceSession(graph_from_dict(gdict), gpu, cache=cache,
                               metrics=metrics, engine=config.engine,
                               tune_db=tune_db,
                               compile_deadline_s=config.compile_deadline_s)
        for name, gdict in sorted(config.workloads.items())
    }
    return FusionServer(sessions, max_batch=config.max_batch,
                        max_wait_ms=config.max_wait_ms,
                        workers=config.threads, metrics=metrics,
                        max_queue_depth=config.max_queue_depth)


class _SigTerm(Exception):
    """Raised out of the pipe loop by the SIGTERM handler: the worker
    drains in flight work and exits cleanly instead of dying mid-batch."""


def worker_main(conn, config: WorkerConfig) -> None:
    """Process entry point; returns only at clean shutdown."""
    # The forked child inherits the parent's failpoint registry — and,
    # worst case, a lock some parent thread held at fork time.  Start
    # from a clean, self-owned registry and re-arm from the config.
    registry = faults.reset_after_fork()

    # Graceful termination: SIGTERM drains (no orphaned in-flight work),
    # SIGINT is ignored — a terminal Ctrl-C signals the whole process
    # group, and shutdown must stay the supervisor's decision.
    def _on_sigterm(signum, frame):
        raise _SigTerm()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:      # not the main thread (embedded test use)
        pass

    metrics = ServeMetrics()
    server = build_server(config, metrics)
    # Arm the boot fault plan only after build_server: constructing the
    # stack imports every instrumented module (serve cache, tuning DB),
    # so each plan entry's failpoint name is registered by now even
    # under the spawn start method, where the child imports from
    # scratch.  Nothing can fire in between — serving starts below.
    for name, spec in config.fault_plan.items():
        registry.arm(name, spec)
    outbox: "queue.Queue" = queue.Queue()
    accepting = True
    #: Live request handles by wire id — the ``cancel`` book.
    handles: dict[int, object] = {}
    handles_lock = threading.Lock()

    def sender() -> None:
        while True:
            msg = outbox.get()
            if msg is None:
                return
            try:
                conn.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                return  # supervisor went away; nothing left to tell

    send_thread = threading.Thread(target=sender, name="worker-sender",
                                   daemon=True)
    send_thread.start()

    def on_done(request, req_id: int) -> None:
        with handles_lock:
            handles.pop(req_id, None)
        if request.error is not None:
            outbox.put(("error", req_id, error_kind(request.error),
                        f"{type(request.error).__name__}: {request.error}"))
        else:
            reply: SessionReply = request.reply
            outbox.put(("reply", req_id, {
                "outputs": reply.outputs,
                "degraded": reply.degraded,
                "reason": reply.reason,
                "latency_s": reply.latency_s,
            }))

    def snapshot() -> dict:
        snap = metrics.snapshot()
        snap["worker"] = config.name
        snap["pid"] = os.getpid()
        return snap

    server.start()
    outbox.put(("ready", config.name, sorted(config.workloads)))

    stopping = False
    graceful = False
    try:
        while not stopping:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # supervisor died; daemon worker just exits
            try:
                # A delay() armed here makes the worker *hung*, not
                # dead: it stops answering pings without exiting — the
                # health loop's reap path, untestable any other way.
                faults.fire(FP_HANG)
            except faults.FaultInjected:
                metrics.inc("faults.worker_hang")
            kind = msg[0]
            if kind == "req":
                _, req_id, workload, feeds, remaining_s = msg
                # Re-anchor the end-to-end deadline on this process's
                # clock *now*, before any local processing: failpoint
                # delays and queue time below burn the request's
                # remaining budget, never a fresh one.
                deadline = (time.monotonic() + remaining_s
                            if remaining_s is not None else None)
                if not accepting:
                    outbox.put(("error", req_id, ERR_DRAINING,
                                f"worker {config.name} is draining"))
                    continue
                try:
                    faults.fire(FP_SLOW)    # slow replica (chaos)
                except faults.FaultInjected:
                    metrics.inc("faults.worker_slow")
                if (deadline is not None
                        and time.monotonic() >= deadline):
                    metrics.inc("deadline.expired_ingress")
                    outbox.put(("error", req_id, ERR_TIMEOUT,
                                f"request {req_id} reached worker "
                                f"{config.name} past its deadline"))
                    continue
                try:
                    handle = server.submit(
                        workload, feeds, deadline_s=deadline,
                        on_done=lambda r, rid=req_id: on_done(r, rid))
                    with handles_lock:
                        handles[req_id] = handle
                    if handle.done():   # answered before we booked it
                        with handles_lock:
                            handles.pop(req_id, None)
                except Exception as exc:  # noqa: BLE001 — typed over the wire
                    outbox.put(("error", req_id, error_kind(exc),
                                f"{type(exc).__name__}: {exc}"))
            elif kind == "cancel":
                # Best-effort and idempotent: the request may be done,
                # unknown (already answered), or still queued — a queued
                # one is failed here and silently dropped by the batcher.
                with handles_lock:
                    handle = handles.pop(msg[1], None)
                if handle is not None and not handle.done():
                    metrics.inc("requests.cancelled")
                    handle.fail(TimeoutError(
                        f"request {msg[1]} cancelled by supervisor"))
            elif kind == "ping":
                health = server.health()
                outbox.put(("pong", msg[1], {
                    "status": health["status"],
                    "queue_depth": health["queue_depth"],
                }))
            elif kind == "stats":
                outbox.put(("stats_reply", msg[1], snapshot()))
            elif kind == "arm":
                for name, spec in msg[1].items():
                    registry.arm(name, spec)
                outbox.put(("armed",))
            elif kind == "kill":
                os._exit(msg[1] if len(msg) > 1 else 1)
            elif kind == "drain":
                accepting = False
                server.stop(drain=True)
                outbox.put(("drained", snapshot()))
            elif kind == "stop":
                stopping = True
    except _SigTerm:
        graceful = True

    server.stop(drain=graceful)
    outbox.put(("stopped", snapshot()))
    outbox.put(None)
    send_thread.join(timeout=5.0)
    try:
        conn.close()
    except OSError:
        pass
