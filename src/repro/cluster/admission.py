"""Priority- and tenant-aware admission control for the cluster tier.

The single-process :class:`~repro.serve.batching.RequestQueue` already
bounds depth; the cluster front door layers *policy* on top of that
bound: when a worker's outstanding window fills, not all traffic is
equal —

* **priority headroom** — each priority class may only use a fraction of
  a worker's outstanding slots, so low-priority (batch/backfill) traffic
  sheds first and high-priority traffic still finds room during bursts;
* **tenant fair share** — no tenant may hold more than ``tenant_share``
  of one worker's slots, so a single runaway client cannot starve the
  rest of the fleet regardless of priority.

Decisions are made (and slots reserved) *before* a request crosses the
process boundary to a worker, so a shed costs one dict lookup — the
request never serialises feeds or occupies pipe bandwidth.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Mapping

#: Priority classes, highest first.  Anything outside the map is clamped
#: to the lowest class.
PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW = 0, 1, 2

#: Fraction of a worker's outstanding window each class may fill.  High
#: priority may use the whole window; lower classes hit their ceiling
#: earlier and shed, leaving headroom for the classes above them.
DEFAULT_PRIORITY_HEADROOM: Mapping[int, float] = {
    PRIORITY_HIGH: 1.0,
    PRIORITY_NORMAL: 0.85,
    PRIORITY_LOW: 0.6,
}

#: Shed reasons reported by :meth:`AdmissionController.admit`.
SHED_CAPACITY = "capacity"      # window full even for high priority
SHED_PRIORITY = "priority"      # class headroom exhausted
SHED_TENANT = "tenant"          # tenant over its fair share
SHED_WORKER_DOWN = "worker_down"  # owner crashed, restart breaker open


@dataclass
class AdmissionPolicy:
    """Static admission configuration shared by every worker slot pool."""

    max_outstanding_per_worker: int = 64
    priority_headroom: Mapping[int, float] = field(
        default_factory=lambda: dict(DEFAULT_PRIORITY_HEADROOM))
    #: Max fraction of one worker's slots a single tenant may hold
    #: (None disables tenant fairness).
    tenant_share: float | None = 0.5

    def __post_init__(self) -> None:
        if self.max_outstanding_per_worker < 1:
            raise ValueError("max_outstanding_per_worker must be >= 1")
        for p, frac in self.priority_headroom.items():
            if not 0.0 < frac <= 1.0:
                raise ValueError(
                    f"priority {p} headroom {frac} must be in (0, 1]")
        if self.tenant_share is not None and not 0.0 < self.tenant_share <= 1.0:
            raise ValueError("tenant_share must be in (0, 1] or None")

    def limit_for(self, priority: int) -> int:
        """Outstanding ceiling for one priority class (at least 1)."""
        frac = self.priority_headroom.get(
            priority, min(self.priority_headroom.values(), default=1.0))
        return max(1, math.floor(self.max_outstanding_per_worker * frac))

    def tenant_limit(self) -> int | None:
        if self.tenant_share is None:
            return None
        return max(1, math.floor(
            self.max_outstanding_per_worker * self.tenant_share))


class AdmissionController:
    """Thread-safe outstanding-slot accounting per worker and tenant.

    The supervisor calls :meth:`admit` before dispatching (a non-None
    return is the shed reason; ``None`` reserves a slot) and
    :meth:`release` when the request completes, fails, or its worker
    dies.
    """

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._lock = threading.Lock()
        self._outstanding: dict[str, int] = {}
        self._by_tenant: dict[tuple[str, str], int] = {}

    def admit(self, worker: str, tenant: str = "default",
              priority: int = PRIORITY_NORMAL) -> str | None:
        """Try to reserve one slot on ``worker``; shed reason or None."""
        pol = self.policy
        with self._lock:
            used = self._outstanding.get(worker, 0)
            if used >= pol.max_outstanding_per_worker:
                return SHED_CAPACITY
            if used >= pol.limit_for(priority):
                return SHED_PRIORITY
            tlimit = pol.tenant_limit()
            if (tlimit is not None
                    and self._by_tenant.get((worker, tenant), 0) >= tlimit):
                return SHED_TENANT
            self._outstanding[worker] = used + 1
            tkey = (worker, tenant)
            self._by_tenant[tkey] = self._by_tenant.get(tkey, 0) + 1
            return None

    def release(self, worker: str, tenant: str = "default") -> None:
        with self._lock:
            used = self._outstanding.get(worker, 0)
            if used <= 1:
                self._outstanding.pop(worker, None)
            else:
                self._outstanding[worker] = used - 1
            tkey = (worker, tenant)
            t_used = self._by_tenant.get(tkey, 0)
            if t_used <= 1:
                self._by_tenant.pop(tkey, None)
            else:
                self._by_tenant[tkey] = t_used - 1

    def outstanding(self, worker: str) -> int:
        with self._lock:
            return self._outstanding.get(worker, 0)

    def outstanding_total(self) -> int:
        """Outstanding slots across every worker (the hedger's view of
        open load — its hedge-fraction cap is computed against this)."""
        with self._lock:
            return sum(self._outstanding.values())

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "outstanding": dict(self._outstanding),
                "outstanding_total": sum(self._outstanding.values()),
                "by_tenant": {f"{w}/{t}": n
                              for (w, t), n in self._by_tenant.items()},
            }
