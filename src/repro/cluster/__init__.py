"""repro.cluster — the sharded multi-worker serving tier.

Scales :mod:`repro.serve` past one process:

* :class:`HashRing` — consistent-hash placement of workloads onto
  workers (deterministic, ~1/N churn on membership change);
* :class:`AdmissionPolicy` / :class:`AdmissionController` — priority
  headroom and tenant fair-share shedding at the cluster front door,
  before a request crosses a process boundary;
* :class:`WorkerConfig` / :func:`worker_main` — the forked worker
  process: a full in-process :class:`~repro.serve.server.FusionServer`
  behind a duplex pipe, sharing one disk schedule cache with the fleet;
* :class:`ClusterSupervisor` — forks the workers, routes requests along
  the ring (with replica failover), health-checks with heartbeats,
  restarts crashed workers behind per-worker circuit breakers, and
  drains gracefully.
"""

from .admission import (
    DEFAULT_PRIORITY_HEADROOM,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    SHED_CAPACITY,
    SHED_PRIORITY,
    SHED_TENANT,
    SHED_WORKER_DOWN,
    AdmissionController,
    AdmissionPolicy,
)
from .sharding import HashRing
from .supervisor import (
    ClusterConfig,
    ClusterError,
    ClusterShed,
    ClusterSupervisor,
)
from .worker import WorkerConfig, build_server, worker_main

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ClusterConfig",
    "ClusterError",
    "ClusterShed",
    "ClusterSupervisor",
    "DEFAULT_PRIORITY_HEADROOM",
    "HashRing",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "SHED_CAPACITY",
    "SHED_PRIORITY",
    "SHED_TENANT",
    "SHED_WORKER_DOWN",
    "WorkerConfig",
    "build_server",
    "worker_main",
]
