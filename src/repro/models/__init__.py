"""Model zoo: evaluation subgraphs and Transformer models."""

from .layers import (
    causal_mask,
    gqa_graph,
    layernorm_graph,
    lstm_cell_graph,
    mha_graph,
    mlp_graph,
    rmsnorm_graph,
    softmax_gemm_graph,
    softmax_graph,
)
from .transformer import TransformerConfig, build_transformer_program
from .zoo import MODEL_CONFIGS, build_model, vit_sequence_length

__all__ = [
    "MODEL_CONFIGS",
    "TransformerConfig",
    "build_model",
    "build_transformer_program",
    "causal_mask",
    "gqa_graph",
    "layernorm_graph",
    "lstm_cell_graph",
    "mha_graph",
    "mlp_graph",
    "rmsnorm_graph",
    "softmax_gemm_graph",
    "softmax_graph",
    "vit_sequence_length",
]
