"""The model zoo of the end-to-end evaluation (section 6.2).

Structural configurations of the five Transformer models the paper runs —
Bert, Albert, T5, ViT and Llama2-7B — lowered to tensor programs.  Only the
properties the schedules and cost model consume matter: layer counts,
hidden/intermediate widths, head counts, normalisation and activation
flavours, and (for ALBERT) cross-layer weight sharing, which turns the
whole stack into literally one compiled layer.
"""

from __future__ import annotations

from ..ir.program import TensorProgram
from .transformer import TransformerConfig, build_transformer_program

BERT_BASE = TransformerConfig(
    name="bert", num_layers=12, hidden=768, heads=12, intermediate=3072,
    norm="layernorm", activation="gelu",
)

#: ALBERT shares one layer's weights across the stack; structurally the
#: program is identical to BERT's, and the dedup pass collapses it.
ALBERT_BASE = TransformerConfig(
    name="albert", num_layers=12, hidden=768, heads=12, intermediate=3072,
    norm="layernorm", activation="gelu",
)

T5_BASE = TransformerConfig(
    name="t5", num_layers=12, hidden=768, heads=12, intermediate=3072,
    norm="rmsnorm", activation="relu", is_decoder=True, cross_attention=True,
)

VIT_BASE = TransformerConfig(
    name="vit", num_layers=12, hidden=768, heads=12, intermediate=3072,
    norm="layernorm", activation="gelu",
)

LLAMA2_7B = TransformerConfig(
    name="llama2", num_layers=32, hidden=4096, heads=32, intermediate=11008,
    norm="rmsnorm", activation="silu_gated", is_decoder=True, pre_norm=True,
)

#: GPT-2 (124M): a pre-norm LayerNorm decoder — not in the paper's zoo but
#: a natural extension exercising the norm-into-projection fusion site.
GPT2_SMALL = TransformerConfig(
    name="gpt2", num_layers=12, hidden=768, heads=12, intermediate=3072,
    norm="layernorm", activation="gelu", is_decoder=True, pre_norm=True,
)

MODEL_CONFIGS: dict[str, TransformerConfig] = {
    "bert": BERT_BASE,
    "albert": ALBERT_BASE,
    "t5": T5_BASE,
    "vit": VIT_BASE,
    "llama2": LLAMA2_7B,
    "gpt2": GPT2_SMALL,
}


def vit_sequence_length(image_size: int, patch: int = 16) -> int:
    """Token count of a ViT input: patches plus the class token."""
    return (image_size // patch) ** 2 + 1


def build_model(name: str, batch: int, seq: int | None = None,
                image_size: int | None = None) -> TensorProgram:
    """Instantiate a zoo model as a tensor program.

    Args:
        name: one of ``bert``/``albert``/``t5``/``vit``/``llama2``.
        batch: batch size.
        seq: sequence length (language models; default 512).
        image_size: input resolution for ViT (default 224).
    """
    cfg = MODEL_CONFIGS[name]
    if name == "vit":
        seq = vit_sequence_length(image_size or 224)
    elif seq is None:
        seq = 512
    prog = build_transformer_program(cfg, batch=batch, seq=seq)
    # T5 runs an encoder stack plus a decoder stack of equal depth: the
    # decoder program above already carries cross attention; the encoder
    # adds a same-shape non-causal stack, which dedup folds into extra
    # occurrences of the structurally identical subprograms.
    if name == "t5":
        encoder_cfg = TransformerConfig(
            name="t5enc", num_layers=cfg.num_layers, hidden=cfg.hidden,
            heads=cfg.heads, intermediate=cfg.intermediate, norm="rmsnorm",
            activation="relu",
        )
        enc = build_transformer_program(encoder_cfg, batch=batch, seq=seq)
        prog.subprograms.extend(enc.subprograms)
    prog.meta["model"] = name
    return prog
