"""Evaluation subgraphs: the four workloads of the paper's Figure 10.

* (a) stacked MLP layers (GEMM + bias + ReLU chains);
* (b) a simplified LSTM cell (two GEMMs feeding gate nonlinearities);
* (c) LayerNorm decomposed into primitives;
* (d) masked/scaled Multi-Head Attention.

Each builder returns a barrier-free :class:`DataflowGraph` ready for SMG
construction.  Composite emitters tag their primitive ops with a
``fusion_group`` attribute so library-granularity baselines (PyTorch's
fused softmax/LayerNorm kernels) can re-group them.
"""

from __future__ import annotations

from ..ir.graph import DataflowGraph, GraphBuilder, TensorRef


def _tag_group(graph: DataflowGraph, op_names: list[str], group: str) -> None:
    for op in graph.ops:
        if op.name in op_names:
            op.attrs["fusion_group"] = group


def mlp_graph(num_layers: int, m: int, in_features: int, hidden: int,
              activation: str = "relu", name: str | None = None,
              ) -> DataflowGraph:
    """Figure 10(a): ``num_layers`` fused-candidate MLP layers.

    Layer i computes ``relu(X_i @ W_i^T + b_i)`` with ``W_i`` of shape
    ``(hidden, prev)``; the paper fuses up to 20 layers when the GEMM
    N/K extents stay at or below 256.
    """
    b = GraphBuilder(name or f"mlp{num_layers}")
    x = b.input("In", [("m", m), ("k0", in_features)])
    prev_dim = "k0"
    out: TensorRef = x
    for i in range(1, num_layers + 1):
        hdim = b.dim(f"h{i}", hidden)
        w = b.input(f"W{i}", [(f"h{i}", hidden), prev_dim], is_weight=True)
        bias = b.input(f"B{i}", [hdim], is_weight=True)
        mm = b.matmul(out, w, reduce_dim=prev_dim, out_name=f"mm{i}")
        biased = b.binary("add", mm, TensorRef(bias.name, (hdim,)),
                          out_name=f"pre{i}")
        out = b.unary(activation, biased,
                      out_name=f"act{i}" if i < num_layers else "Out")
        prev_dim = hdim
    return b.build()


def lstm_cell_graph(batch: int, hidden: int, input_size: int | None = None,
                    name: str | None = None) -> DataflowGraph:
    """Figure 10(b): a simplified LSTM cell.

    Two GEMMs project the input and the previous hidden state; their sum
    (plus bias) drives sigmoid/tanh gates combined with the carried cell
    state.  The unfused cuBLAS schedule of section 6.1 maps this to five
    kernels; cuBLASLt folds the second GEMM's add into four.
    """
    input_size = input_size or hidden
    b = GraphBuilder(name or "lstm_cell")
    x = b.input("In1", [("m", batch), ("k", input_size)])
    h = b.input("In2", [("m", batch), ("u", hidden)])
    c = b.input("Cell", [("m", batch), ("n", hidden)])
    wx = b.input("W1", [("n", hidden), ("k", input_size)], is_weight=True)
    wh = b.input("W2", [("n", hidden), ("u", hidden)], is_weight=True)
    bias = b.input("B", [("n", hidden)], is_weight=True)

    xw = b.matmul(x, wx, reduce_dim="k", out_name="xW")
    hw = b.matmul(h, wh, reduce_dim="u", out_name="hW")
    before = len(b.graph.ops)
    s = b.binary("add", xw, hw, out_name="gates")
    s = b.binary("add", s, bias, out_name="gates_b")
    gate_i = b.unary("sigmoid", s, out_name="gate_i")
    gate_g = b.unary("tanh", s, out_name="gate_g")
    gate_f = b.unary("sigmoid", s, out_name="gate_f")
    _tag_group(b.graph, [op.name for op in b.graph.ops[before:]], "lstm_gates")
    before = len(b.graph.ops)
    forgotten = b.binary("mul", c, gate_f, out_name="c_keep")
    written = b.binary("mul", gate_i, gate_g, out_name="c_new")
    c_next = b.binary("add", forgotten, written, out_name="CellOut")
    _tag_group(b.graph, [op.name for op in b.graph.ops[before:]], "lstm_cellup")
    before = len(b.graph.ops)
    squashed = b.unary("tanh", c_next, out_name="c_sq")
    gate_o = b.unary("sigmoid", s, out_name="gate_o")
    b.binary("mul", squashed, gate_o, out_name="Out")
    _tag_group(b.graph, [op.name for op in b.graph.ops[before:]], "lstm_out")
    graph = b.build()
    # The carried cell state is a kernel output alongside the hidden state.
    graph.declared_outputs = ["CellOut", "Out"]
    return graph


def layernorm_graph(m: int, n: int, affine: bool = True, eps: float = 1e-5,
                    name: str | None = None) -> DataflowGraph:
    """Figure 10(c): LayerNorm over 2-D input (normalised along ``n``)."""
    b = GraphBuilder(name or "layernorm")
    x = b.input("X", [("m", m), ("n", n)])
    gamma = beta = None
    if affine:
        gamma = b.input("G", [("n", n)], is_weight=True)
        beta = b.input("B", [("n", n)], is_weight=True)
    before = len(b.graph.ops)
    b.layernorm(x, dim="n", eps=eps, gamma=gamma, beta=beta, out_name="Y")
    graph = b.build()
    _tag_group(graph, [op.name for op in graph.ops[before:]], "layernorm")
    return graph


def softmax_graph(m: int, n: int, name: str | None = None) -> DataflowGraph:
    """Standalone numerically-stable softmax (Figure 1's middle stack)."""
    b = GraphBuilder(name or "softmax")
    x = b.input("X", [("m", m), ("n", n)])
    before = len(b.graph.ops)
    b.softmax(x, dim="n", out_name="P")
    graph = b.build()
    _tag_group(graph, [op.name for op in graph.ops[before:]], "softmax")
    return graph


def softmax_gemm_graph(m: int, k: int, n: int, name: str | None = None,
                       ) -> DataflowGraph:
    """The Softmax-GEMM fusion example of the paper's Figure 2."""
    b = GraphBuilder(name or "softmax_gemm")
    x = b.input("X", [("m", m), ("k", k)])
    w = b.input("W", [("n", n), ("k", k)], is_weight=True)
    before = len(b.graph.ops)
    p = b.softmax(x, dim="k")
    _tag_group(b.graph, [op.name for op in b.graph.ops[before:]], "softmax")
    b.matmul(p, w, reduce_dim="k", out_name="Out")
    return b.build()


def mha_graph(batch: int, heads: int, seq_q: int, seq_kv: int, head_dim: int,
              masked: bool = False, scaled: bool = True,
              name: str | None = None) -> DataflowGraph:
    """Figure 10(d): Multi-Head Attention with optional scale and mask.

    Batch and head become leading dependency-free dimensions of the fused
    space (the paper's BatchDim/HeadDim in Figure 5), leaving the familiar
    three-dimensional (Dim2, Dim1, Dim0) core.
    """
    b = GraphBuilder(name or "mha")
    lead = [("b", batch), ("h", heads)]
    q = b.input("Q", lead + [("m", seq_q), ("dk", head_dim)])
    k = b.input("K", lead + [("l", seq_kv), ("dk", head_dim)])
    v = b.input("V", lead + [("l", seq_kv), ("dv", head_dim)])
    qk = b.matmul(q, k, reduce_dim="dk", out_name="QK")
    scores: TensorRef = qk
    if scaled:
        scores = b.scalar("mul", scores, head_dim ** -0.5, out_name="QKs")
    if masked:
        mask = b.input("Mask", [("m", seq_q), ("l", seq_kv)])
        scores = b.binary("where_mask", scores, mask, out_name="QKm")
    before = len(b.graph.ops)
    p = b.softmax(scores, dim="l")
    _tag_group(b.graph, [op.name for op in b.graph.ops[before:]], "softmax")
    b.matmul(p, v, reduce_dim="l", out_name="Out")
    return b.build()


def causal_mask(seq_q: int, seq_kv: int, offset: int = 0):
    """Lower-triangular attention mask (1 = attend, 0 = blocked).

    ``offset`` shifts the diagonal: during autoregressive decode with a
    KV cache of length ``seq_kv`` and one new query token, use
    ``offset = seq_kv - seq_q`` so the query may attend to the whole cache.
    """
    import numpy as np

    rows = np.arange(seq_q)[:, None]
    cols = np.arange(seq_kv)[None, :]
    return (cols <= rows + offset).astype(np.float64)


def gqa_graph(batch: int, q_heads: int, kv_heads: int, seq_q: int,
              seq_kv: int, head_dim: int, name: str | None = None,
              ) -> DataflowGraph:
    """Grouped-query attention (Llama-2-70B / Mistral style).

    ``q_heads`` query heads share ``kv_heads`` key/value heads
    (``q_heads = kv_heads * group``).  In SMG terms the K/V data spaces are
    reused along the group dimension — an *input* One-to-All, so the group
    dimension stays spatially sliceable (Table 3) and the whole graph fuses
    exactly like plain MHA.  A nice stress of the abstraction beyond the
    paper's evaluation set.
    """
    if q_heads % kv_heads != 0:
        raise ValueError("q_heads must be a multiple of kv_heads")
    group = q_heads // kv_heads
    b = GraphBuilder(name or "gqa")
    q = b.input("Q", [("b", batch), ("g", kv_heads), ("r", group),
                      ("m", seq_q), ("dk", head_dim)])
    k = b.input("K", [("b", batch), ("g", kv_heads), ("l", seq_kv),
                      ("dk", head_dim)])
    v = b.input("V", [("b", batch), ("g", kv_heads), ("l", seq_kv),
                      ("dv", head_dim)])
    qk = b.matmul(q, k, reduce_dim="dk", out_name="QK")
    scores = b.scalar("mul", qk, head_dim ** -0.5)
    before = len(b.graph.ops)
    p = b.softmax(scores, dim="l")
    _tag_group(b.graph, [op.name for op in b.graph.ops[before:]], "softmax")
    b.matmul(p, v, reduce_dim="l", out_name="Out")
    return b.build()


def rmsnorm_graph(m: int, n: int, eps: float = 1e-6,
                  name: str | None = None) -> DataflowGraph:
    """RMSNorm (Llama-family): ``x * rsqrt(mean(x^2) + eps) * g``."""
    b = GraphBuilder(name or "rmsnorm")
    x = b.input("X", [("m", m), ("n", n)])
    g = b.input("G", [("n", n)], is_weight=True)
    sq = b.unary("square", x)
    ms = b.reduce("mean", sq, dim="n")
    ms_eps = b.scalar("add", ms, eps)
    inv = b.unary("rsqrt", ms_eps)
    normed = b.binary("mul", x, inv)
    b.binary("mul", normed, g, out_name="Y")
    graph = b.build()
    _tag_group(graph, [op.name for op in graph.ops], "rmsnorm")
    return graph
