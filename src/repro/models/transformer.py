"""Transformer building blocks lowered to tensor programs.

A transformer layer becomes a sequence of barrier-free subprograms cut at
the layout transformations around attention (the head split/merge), exactly
where the paper's program preprocessing cuts (section 5, Figure 9):

1. fused QKV projection (three GEMMs + biases over the token dimension);
2. ``reshape`` barrier into per-head layout;
3. the attention core (scale, mask, softmax, two GEMMs);
4. ``reshape`` barrier back to the token layout;
5. output projection + residual + norm;
6. the feed-forward block (+ residual + norm).

Repeated layers share one compilation: the program records the layer
subprograms once with an occurrence count (ALBERT's weight sharing makes
this literal in the model itself).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import DataflowGraph, GraphBuilder, TensorRef
from ..ir.program import TensorProgram
from .layers import _tag_group


@dataclass(frozen=True)
class TransformerConfig:
    """Structural hyperparameters of one transformer stack."""

    name: str
    num_layers: int
    hidden: int
    heads: int
    intermediate: int
    norm: str = "layernorm"        # "layernorm" | "rmsnorm"
    activation: str = "gelu"       # "gelu" | "relu" | "silu_gated"
    is_decoder: bool = False
    cross_attention: bool = False  # decoder attending to an encoder
    #: Pre-norm stacks (GPT/Llama) normalise *before* each sublayer; the
    #: norm then fuses with the following projections — an extra CI+MI
    #: fusion site SpaceFusion exploits.
    pre_norm: bool = False

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads


def _norm(b: GraphBuilder, x: TensorRef, cfg: TransformerConfig, dim: str,
          prefix: str, out_name: str | None = None) -> TensorRef:
    before = len(b.graph.ops)
    if cfg.norm == "rmsnorm":
        g = b.input(f"{prefix}_g", [dim], is_weight=True)
        sq = b.unary("square", x)
        ms = b.reduce("mean", sq, dim=dim)
        inv = b.unary("rsqrt", b.scalar("add", ms, 1e-6))
        y = b.binary("mul", b.binary("mul", x, inv), g, out_name=out_name)
        group = "rmsnorm"
    else:
        g = b.input(f"{prefix}_g", [dim], is_weight=True)
        beta = b.input(f"{prefix}_b", [dim], is_weight=True)
        y = b.layernorm(x, dim=dim, gamma=g, beta=beta, out_name=out_name)
        group = "layernorm"
    _tag_group(b.graph, [op.name for op in b.graph.ops[before:]],
               f"{group}:{prefix}")
    return y


def qkv_projection_graph(cfg: TransformerConfig, tokens: int,
                         name: str) -> DataflowGraph:
    """Subprogram 1: X -> Q, K, V (three biased GEMMs).

    Pre-norm stacks normalise X first; the norm stays in the same
    barrier-free subprogram, so SpaceFusion may fuse it into the
    projections (or split, if the cost model prefers)."""
    b = GraphBuilder(name)
    x = b.input("X", [("t", tokens), ("e", cfg.hidden)])
    src = _norm(b, x, cfg, dim="e", prefix="preln") if cfg.pre_norm else x
    for which in ("q", "k", "v"):
        w = b.input(f"W{which}", [(f"e{which}", cfg.hidden), "e"],
                    is_weight=True)
        bias = b.input(f"B{which}", [f"e{which}"], is_weight=True)
        mm = b.matmul(src, w, reduce_dim="e", out_name=f"{which}_mm")
        b.binary("add", mm, bias, out_name=f"{which.upper()}flat")
    graph = b.build()
    graph.declared_outputs = ["Qflat", "Kflat", "Vflat"]
    return graph


def attention_core_graph(cfg: TransformerConfig, batch: int, seq_q: int,
                         seq_kv: int, name: str, masked: bool = False,
                         ) -> DataflowGraph:
    """Subprogram 3: per-head scaled-dot-product attention."""
    b = GraphBuilder(name)
    lead = [("bb", batch), ("hh", cfg.heads)]
    q = b.input("Qh", lead + [("m", seq_q), ("dk", cfg.head_dim)])
    k = b.input("Kh", lead + [("l", seq_kv), ("dk", cfg.head_dim)])
    v = b.input("Vh", lead + [("l", seq_kv), ("dv", cfg.head_dim)])
    qk = b.matmul(q, k, reduce_dim="dk", out_name="QK")
    scores: TensorRef = b.scalar("mul", qk, cfg.head_dim ** -0.5)
    if masked:
        mask = b.input("Mask", [("m", seq_q), ("l", seq_kv)])
        scores = b.binary("where_mask", scores, mask)
    before = len(b.graph.ops)
    p = b.softmax(scores, dim="l")
    _tag_group(b.graph, [op.name for op in b.graph.ops[before:]], "softmax")
    b.matmul(p, v, reduce_dim="l", out_name="AttnOut")
    return b.build()


def proj_residual_norm_graph(cfg: TransformerConfig, tokens: int,
                             name: str) -> DataflowGraph:
    """Subprogram 5: output projection + residual add + norm."""
    b = GraphBuilder(name)
    a = b.input("A", [("t", tokens), ("e", cfg.hidden)])
    w = b.input("Wo", [("eo", cfg.hidden), "e"], is_weight=True)
    # The residual stream is consumed in the projection's output dimension
    # space ("eo" — same extent as "e"); declaring it there keeps the IR
    # alias-free (the paper's dimension alignment merges such axes).
    resid = b.input("Resid", [("t", tokens), "eo"])
    bias = b.input("Bo", ["eo"], is_weight=True)
    mm = b.matmul(a, w, reduce_dim="e", out_name="proj")
    mm = b.binary("add", mm, bias)
    resid2 = b.binary("add", mm, resid, out_name="resid2")
    if cfg.pre_norm:
        # Pre-norm stacks leave the residual stream un-normalised here.
        b.unary("identity", resid2, out_name="Y")
    else:
        _norm(b, resid2, cfg, dim="eo", prefix="ln1", out_name="Y")
    return b.build()


def ffn_graph(cfg: TransformerConfig, tokens: int, name: str,
              ) -> DataflowGraph:
    """Subprogram 6: feed-forward block + residual + norm.

    GELU/ReLU MLPs use two GEMMs; the SiLU-gated variant (Llama) uses the
    gate/up/down triple with an elementwise product.
    """
    b = GraphBuilder(name)
    x_raw = b.input("X", [("t", tokens), ("e", cfg.hidden)])
    x = _norm(b, x_raw, cfg, dim="e", prefix="preln2") if cfg.pre_norm \
        else x_raw
    if cfg.activation == "silu_gated":
        wg = b.input("Wgate", [("f", cfg.intermediate), "e"], is_weight=True)
        wu = b.input("Wup", [("f", cfg.intermediate), "e"], is_weight=True)
        wd = b.input("Wdown", [("eo", cfg.hidden), "f"], is_weight=True)
        gate = b.unary("silu", b.matmul(x, wg, reduce_dim="e"))
        up = b.matmul(x, wu, reduce_dim="e")
        inner = b.binary("mul", gate, up, out_name="ffn_inner")
        down = b.matmul(inner, wd, reduce_dim="f", out_name="ffn_down")
    else:
        w1 = b.input("W1", [("f", cfg.intermediate), "e"], is_weight=True)
        b1 = b.input("B1", [("f", cfg.intermediate)], is_weight=True)
        w2 = b.input("W2", [("eo", cfg.hidden), "f"], is_weight=True)
        b2 = b.input("B2", [("eo", cfg.hidden)], is_weight=True)
        h = b.matmul(x, w1, reduce_dim="e")
        h = b.binary("add", h, b1)
        h = b.unary(cfg.activation, h, out_name="ffn_act")
        down = b.matmul(h, w2, reduce_dim="f")
        down = b.binary("add", down, b2, out_name="ffn_down")
    # Residual stream consumed in the down-projection's output dim space
    # (a second read of the block input, as on real hardware).
    xresid = b.input("XResid", [("t", tokens), ("eo", cfg.hidden)])
    resid = b.binary("add", down, xresid, out_name="ffn_resid")
    if cfg.pre_norm:
        b.unary("identity", resid, out_name="Y")
    else:
        _norm(b, resid, cfg, dim="eo", prefix="ln2", out_name="Y")
    return b.build()


def head_split_graph(cfg: TransformerConfig, batch: int, seq: int,
                     tensors: list[str], name: str) -> DataflowGraph:
    """Subprogram 2/4: the layout barriers around the attention core."""
    b = GraphBuilder(name)
    b.dim("t", batch * seq)
    b.dim("e", cfg.hidden)
    b.dim("bb", batch)
    b.dim("hh", cfg.heads)
    b.dim("s", seq)
    b.dim("hd", cfg.head_dim)
    for tensor in tensors:
        x = b.input(tensor, ["t", "e"])
        b.barrier("reshape", x, ("bb", "hh", "s", "hd"),
                  out_name=f"{tensor}_heads")
    return b.build()


def build_transformer_program(cfg: TransformerConfig, batch: int, seq: int,
                              masked: bool | None = None) -> TensorProgram:
    """Lower a transformer stack into its per-layer subprogram sequence."""
    if masked is None:
        masked = cfg.is_decoder
    tokens = batch * seq
    prog = TensorProgram(cfg.name, meta={
        "batch": batch, "seq": seq, "hidden": cfg.hidden,
        "heads": cfg.heads, "layers": cfg.num_layers,
    })
    n = cfg.num_layers
    prog.add(qkv_projection_graph(cfg, tokens, f"{cfg.name}.qkv"), n)
    prog.add(head_split_graph(cfg, batch, seq, ["Qflat", "Kflat", "Vflat"],
                              f"{cfg.name}.split"), n)
    prog.add(attention_core_graph(cfg, batch, seq, seq, f"{cfg.name}.attn",
                                  masked=masked), n)
    prog.add(head_split_graph(cfg, batch, seq, ["AttnOut2d"],
                              f"{cfg.name}.merge"), n)
    prog.add(proj_residual_norm_graph(cfg, tokens, f"{cfg.name}.proj"), n)
    prog.add(ffn_graph(cfg, tokens, f"{cfg.name}.ffn"), n)
    if cfg.cross_attention:
        prog.add(attention_core_graph(cfg, batch, seq, seq,
                                      f"{cfg.name}.xattn", masked=False), n)
        prog.add(proj_residual_norm_graph(cfg, tokens,
                                          f"{cfg.name}.xproj"), n)
    return prog
