"""Retry with backoff, and circuit breaking, for the serving stack.

:class:`RetryPolicy` wraps an operation that may fail transiently (a
compile attempt, a plan lowering) in capped exponential backoff with
seeded jitter and a total sleep budget, so a flaky dependency costs
bounded extra latency instead of an error.

:class:`CircuitBreaker` is the classic closed → open → half-open state
machine: after ``failure_threshold`` *consecutive* failures the breaker
opens and callers stop attempting the protected path (the session routes
requests straight to the reference fallback); after ``reset_timeout_s``
one probe is allowed through (half-open) — success closes the breaker,
failure re-opens it.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable


@dataclass
class RetryPolicy:
    """Budget-capped exponential backoff with decorrelating jitter."""

    max_attempts: int = 3
    base_delay_s: float = 0.005
    max_delay_s: float = 0.1
    multiplier: float = 2.0
    #: Fraction of each delay randomised away (0 = deterministic delays).
    jitter: float = 0.5
    #: Total sleeping allowed across all retries of one call.
    sleep_budget_s: float = 1.0
    retry_on: tuple[type[BaseException], ...] = (Exception,)
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_for(self, retry_index: int,
                  rng: random.Random | None = None) -> float:
        """Backoff before retry number ``retry_index`` (0-based)."""
        delay = min(self.max_delay_s,
                    self.base_delay_s * self.multiplier ** retry_index)
        if self.jitter and rng is not None:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def call(self, fn: Callable,
             on_retry: Callable[[int, BaseException, float], None]
             | None = None,
             rng: random.Random | None = None,
             sleep: Callable[[float], None] = time.sleep,
             deadline_s: float | None = None,
             on_deadline: Callable[[int, BaseException, float], None]
             | None = None,
             clock: Callable[[], float] = time.monotonic):
        """Run ``fn`` with retries; re-raises the last error when the
        attempt count or the sleep budget is exhausted.

        ``on_retry(attempt, exc, delay_s)`` is called before each backoff
        sleep (attempt numbering starts at 1 for the first *retry*).

        ``deadline_s`` is an absolute monotonic deadline: a backoff sleep
        that would cross it is never scheduled — the last error is raised
        immediately instead, after ``on_deadline(attempt, exc, delay_s)``
        (same signature as ``on_retry``).  ``None`` keeps the
        budget-only behaviour.
        """
        if rng is None:
            rng = random.Random(self.seed)
        slept = 0.0
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except self.retry_on as exc:
                delay = self.delay_for(attempt, rng)
                if (attempt + 1 >= self.max_attempts
                        or slept + delay > self.sleep_budget_s):
                    raise
                if (deadline_s is not None
                        and clock() + delay > deadline_s):
                    # Sleeping would outlive the request's budget: the
                    # caller gets the error *now*, while there is still
                    # time to degrade (e.g. answer from the reference
                    # path) before the deadline.
                    if on_deadline is not None:
                        on_deadline(attempt + 1, exc, delay)
                    raise
                if on_retry is not None:
                    on_retry(attempt + 1, exc, delay)
                sleep(delay)
                slept += delay
        raise AssertionError("unreachable")  # pragma: no cover


#: Circuit-breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker over a fallible path.

    Callers bracket the protected operation with :meth:`allow` (False ⇒
    take the fallback immediately) and :meth:`record_success` /
    :meth:`record_failure`.  ``on_transition(old, new)`` — settable after
    construction — observes every state change (the serving layer points
    it at metrics counters); keep it cheap and non-reentrant, it runs
    under the breaker lock.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 half_open_max_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Callable[[str, str], None] | None = None,
                 ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_max_probes = half_open_max_probes
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes = 0
        self.transitions: list[tuple[str, str]] = []
        self._cycles = 0

    # -- internals (lock held) ------------------------------------------

    def _transition(self, new: str) -> None:
        old = self._state
        if old == new:
            return
        self._state = new
        self.transitions.append((old, new))
        if old == HALF_OPEN and new == CLOSED:
            self._cycles += 1
        if new == OPEN:
            self._opened_at = self._clock()
        if new == HALF_OPEN:
            self._probes = 0
        if self.on_transition is not None:
            self.on_transition(old, new)

    # -- caller protocol -------------------------------------------------

    def allow(self) -> bool:
        """May the protected path be attempted right now?

        In half-open state at most ``half_open_max_probes`` callers get
        True until a probe outcome is recorded; everyone else falls back.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._transition(HALF_OPEN)
            if self._probes < self.half_open_max_probes:
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._transition(OPEN)
            elif (self._state == CLOSED
                  and self._consecutive_failures >= self.failure_threshold):
                self._transition(OPEN)

    # -- introspection ----------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def cycles(self) -> int:
        """Completed open → half-open → closed recovery cycles."""
        with self._lock:
            return self._cycles

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": list(self.transitions),
                "recovery_cycles": self._cycles,
            }
