"""Deterministic failpoints: named, seeded fault-injection sites.

The serving stack registers *failpoints* at every place the real system
can fail — disk-cache I/O, a compile attempt, plan lowering, compiled
execution, batch assembly — following the etcd/TiKV failpoint pattern: a
site is a single ``fire(name)`` call that does nothing until a test (or
the chaos harness, :mod:`repro.resilience.chaos`) *arms* it with an
action:

* ``fail(p)``         — raise :class:`FaultInjected` with probability ``p``
  (``fail`` alone means ``fail(1)``);
* ``fail_n_times(n)`` — raise on the next ``n`` evaluations, then pass;
* ``delay(ms)``       — sleep ``ms`` milliseconds, then pass.

Disarmed cost is one module-level bool check (``_REGISTRY.armed_any``),
so instrumented hot paths pay nothing in production.  Probabilistic
actions draw from one seeded :class:`random.Random`, so a chaos run with
a fixed ``--seed`` injects the exact same fault sequence every time.

Sites that need a *behavioural* fault rather than an exception (e.g. the
compiled engine poisoning its outputs with NaNs) use
:func:`triggered(name) <triggered>`, which evaluates the armed action and
returns True instead of raising.
"""

from __future__ import annotations

import random
import re
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping


class FaultInjected(Exception):
    """An armed failpoint fired.  Carries the failpoint's name."""

    def __init__(self, name: str) -> None:
        super().__init__(f"injected fault at failpoint {name!r}")
        self.failpoint = name


class FailpointError(Exception):
    """Bad failpoint usage: unknown name or unparsable action spec."""


_SPEC_RE = re.compile(
    r"^\s*(?P<kind>fail_n_times|fail|delay)\s*"
    r"(?:\(\s*(?P<arg>[^)]*?)\s*\))?\s*$")


class _Armed:
    """One armed action; mutated under the registry lock."""

    __slots__ = ("kind", "prob", "remaining", "delay_s", "hits")

    def __init__(self, kind: str, prob: float = 1.0,
                 remaining: int | None = None,
                 delay_s: float = 0.0) -> None:
        self.kind = kind            # "fail" | "delay"
        self.prob = prob
        self.remaining = remaining  # None = unlimited
        self.delay_s = delay_s
        self.hits = 0


def parse_action(spec: str) -> _Armed:
    """Parse an action spec string (``fail(0.5)``, ``fail_n_times(2)``,
    ``delay(10)``) into its armed form."""
    m = _SPEC_RE.match(spec)
    if m is None:
        raise FailpointError(f"unparsable failpoint action {spec!r}")
    kind, arg = m.group("kind"), m.group("arg")
    try:
        if kind == "fail":
            prob = float(arg) if arg else 1.0
            if not 0.0 <= prob <= 1.0:
                raise ValueError
            return _Armed("fail", prob=prob)
        if kind == "fail_n_times":
            n = int(arg)
            if n < 1:
                raise ValueError
            return _Armed("fail", remaining=n)
        # delay(ms)
        ms = float(arg)
        if ms < 0:
            raise ValueError
        return _Armed("delay", delay_s=ms / 1e3)
    except (TypeError, ValueError):
        raise FailpointError(
            f"bad argument in failpoint action {spec!r}") from None


class FailpointRegistry:
    """Thread-safe registry of known failpoints and their armed actions."""

    def __init__(self, seed: int | None = None) -> None:
        self._lock = threading.Lock()
        self._known: set[str] = set()
        self._armed: dict[str, _Armed] = {}
        self._rng = random.Random(seed)
        #: Fast-path flag read without the lock: False ⇒ fire() is a no-op.
        self.armed_any = False

    # -- site registration (import time) -------------------------------

    def register(self, name: str) -> str:
        with self._lock:
            self._known.add(name)
        return name

    def known(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._known)

    # -- arming (test / chaos-harness side) -----------------------------

    def seed(self, seed: int | None) -> None:
        """Re-seed the shared RNG (chaos runs do this for determinism)."""
        with self._lock:
            self._rng = random.Random(seed)

    def arm(self, name: str, spec: str) -> None:
        if name not in self._known:
            raise FailpointError(
                f"unknown failpoint {name!r}; registered: "
                f"{sorted(self._known)}")
        action = parse_action(spec)
        with self._lock:
            self._armed[name] = action
            self.armed_any = True

    def disarm(self, name: str | None = None) -> None:
        """Disarm one failpoint (or every failpoint with no ``name``)."""
        with self._lock:
            if name is None:
                self._armed.clear()
            else:
                self._armed.pop(name, None)
            self.armed_any = bool(self._armed)

    @contextmanager
    def armed(self, plan: Mapping[str, str]) -> Iterator[None]:
        """Arm ``{failpoint: action-spec}`` for the duration of a block."""
        for name, spec in plan.items():
            self.arm(name, spec)
        try:
            yield
        finally:
            for name in plan:
                self.disarm(name)

    # -- evaluation (site side) -----------------------------------------

    def _evaluate(self, name: str) -> _Armed | None:
        """Consume one evaluation of ``name``; None when it should pass."""
        with self._lock:
            action = self._armed.get(name)
            if action is None:
                return None
            if action.remaining is not None:
                if action.remaining <= 0:
                    return None
                action.remaining -= 1
            elif action.prob < 1.0 and self._rng.random() >= action.prob:
                return None
            action.hits += 1
            return action

    def fire(self, name: str) -> None:
        """Evaluate a failpoint: raise, sleep, or pass through."""
        action = self._evaluate(name)
        if action is None:
            return
        if action.kind == "delay":
            time.sleep(action.delay_s)
            return
        raise FaultInjected(name)

    def triggered(self, name: str) -> bool:
        """Like :meth:`fire` but returns True instead of raising, for
        sites that inject behavioural corruption rather than an error."""
        action = self._evaluate(name)
        if action is None:
            return False
        if action.kind == "delay":
            time.sleep(action.delay_s)
            return False
        return True

    def hits(self) -> dict[str, int]:
        """How many times each armed failpoint has actually fired."""
        with self._lock:
            return {name: a.hits for name, a in self._armed.items()
                    if a.hits}


#: The process-wide registry every instrumented site reports to.
_REGISTRY = FailpointRegistry()


def registry() -> FailpointRegistry:
    return _REGISTRY


def register(name: str) -> str:
    """Declare a failpoint at import time; returns ``name`` for reuse."""
    return _REGISTRY.register(name)


def reset_after_fork(seed: int | None = None) -> FailpointRegistry:
    """Replace the process-wide registry with a fresh one after ``fork``.

    A forked child (a :mod:`repro.cluster` worker) inherits the parent's
    registry *including* its lock state and armed actions; if another
    parent thread held the lock at fork time, the child's first armed
    ``fire()`` would deadlock.  Building a new registry — keeping only
    the import-time site names, dropping armed actions — makes the child
    self-contained; worker faults are re-armed explicitly over the
    control channel.
    """
    global _REGISTRY
    fresh = FailpointRegistry(seed=seed)
    # Read _known without the (possibly wedged) inherited lock: the child
    # is single-threaded at this point, so nothing can be mutating it.
    for name in set(_REGISTRY._known):
        fresh.register(name)
    _REGISTRY = fresh
    return fresh


def fire(name: str) -> None:
    """Site hook: no-op unless armed (one bool check when disarmed)."""
    if not _REGISTRY.armed_any:
        return
    _REGISTRY.fire(name)


def triggered(name: str) -> bool:
    """Site hook for behavioural faults; False unless armed and firing."""
    if not _REGISTRY.armed_any:
        return False
    return _REGISTRY.triggered(name)
