"""Chaos harness: a seeded fault schedule against a live FusionServer.

``repro chaos --seed S [--faults plan.json]`` stands up a real serving
stack — disk-backed tiered schedule cache, compiled execution engine,
dynamic batcher, bounded admission queue, circuit breaker — arms the
registered failpoints phase by phase, drives client traffic through it,
and asserts the end-to-end invariants the resilience layer promises:

* **answered exactly once** — every accepted request completes with
  exactly one resolution (no lost or duplicated replies);
* **all answers correct** — every reply's outputs are finite and match
  the unfused reference kernels to 1e-8;
* **drains clean** — after ``stop()`` the queue is empty and nothing is
  left pending;
* **faults were really exercised** — the run must show at least one
  compile/lowering retry, one breaker open → half-open → close recovery
  cycle, one load shed, one plan quarantine, and one disk-tier error
  absorbed as a miss; a chaos run whose faults never fired proves
  nothing.

The report (``BENCH_robustness.json`` by default) records the fault
plan, per-phase request counts, exercised-fault evidence, and the full
metrics snapshot.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.serialize import ScheduleCache
from ..hw import get_gpu
from ..models import layernorm_graph, mlp_graph
from ..runtime.kernels import execute_graph_reference, random_feeds
from ..serve import (
    FusionServer,
    InferenceSession,
    Overloaded,
    ServeMetrics,
    TieredScheduleCache,
)
from . import faults
from .retry import CircuitBreaker, RetryPolicy

#: Purpose-built small workloads: the harness exercises failure paths,
#: not kernels, so compile and execute must both be quick.
CHAOS_WORKLOADS = {
    "mlp": lambda: mlp_graph(3, 64, 32, 48, name="chaos_mlp"),
    "layernorm": lambda: layernorm_graph(48, 64, name="chaos_ln"),
}

#: The canned fault plan: one entry per registered failpoint family,
#: grouped into the phase of the run that arms it.
DEFAULT_FAULT_PLAN = [
    {"failpoint": "serve.cache.disk_get", "action": "fail_n_times(1)",
     "phase": "compile"},
    {"failpoint": "serve.cache.disk_put", "action": "fail_n_times(1)",
     "phase": "compile"},
    {"failpoint": "serve.cache.compile", "action": "fail_n_times(1)",
     "phase": "compile"},
    {"failpoint": "compile.autotune", "action": "fail_n_times(1)",
     "phase": "compile"},
    {"failpoint": "runtime.lower", "action": "fail_n_times(1)",
     "phase": "compile"},
    {"failpoint": "runtime.execute", "action": "fail_n_times(3)",
     "phase": "breaker"},
    {"failpoint": "runtime.poison", "action": "fail_n_times(1)",
     "phase": "quarantine"},
    {"failpoint": "serve.batch", "action": "delay(25)",
     "phase": "overload"},
]

#: Phases a fault plan may target, in execution order.
PHASES = ("compile", "steady", "breaker", "quarantine", "overload", "drain")


class ChaosError(Exception):
    """Raised on harness misuse (bad plan, unknown workload)."""


def load_fault_plan(path: str) -> list[dict]:
    """Read a fault plan from JSON: either a bare list of entries or an
    object with a ``"faults"`` key; each entry needs ``failpoint``,
    ``action``, and ``phase``."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    entries = data.get("faults") if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ChaosError(f"fault plan {path!r}: expected a list of faults")
    for entry in entries:
        for key in ("failpoint", "action", "phase"):
            if key not in entry:
                raise ChaosError(
                    f"fault plan {path!r}: entry {entry!r} missing {key!r}")
        if entry["phase"] not in PHASES:
            raise ChaosError(
                f"fault plan {path!r}: unknown phase {entry['phase']!r}; "
                f"expected one of {PHASES}")
    return entries


@dataclass
class Invariant:
    name: str
    ok: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """Everything a chaos run observed, plus the verdicts."""

    seed: int
    workload: str
    fault_plan: list[dict]
    requests: dict[str, int] = field(default_factory=dict)
    exercised: dict[str, int] = field(default_factory=dict)
    invariants: list[Invariant] = field(default_factory=list)
    breaker_transitions: list[tuple[str, str]] = field(default_factory=list)
    health: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def to_dict(self) -> dict:
        return {
            "experiment": "chaos",
            "seed": self.seed,
            "workload": self.workload,
            "ok": self.ok,
            "elapsed_s": self.elapsed_s,
            "fault_plan": self.fault_plan,
            "requests": self.requests,
            "exercised": self.exercised,
            "invariants": [{"name": i.name, "ok": i.ok, "detail": i.detail}
                           for i in self.invariants],
            "breaker_transitions": [list(t)
                                    for t in self.breaker_transitions],
            "health": self.health,
            "metrics": self.metrics,
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        lines = [f"chaos run: seed={self.seed} workload={self.workload} "
                 f"({self.elapsed_s:.2f}s)",
                 "requests:"]
        for name in sorted(self.requests):
            lines.append(f"  {name:<22} {self.requests[name]}")
        lines.append("faults exercised:")
        for name in sorted(self.exercised):
            lines.append(f"  {name:<22} {self.exercised[name]}")
        lines.append("invariants:")
        for inv in self.invariants:
            mark = "PASS" if inv.ok else "FAIL"
            detail = f" — {inv.detail}" if inv.detail else ""
            lines.append(f"  [{mark}] {inv.name}{detail}")
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


class _Run:
    """One chaos run's mutable state (requests issued, answers checked)."""

    def __init__(self, graph, server: FusionServer, workload: str,
                 ref_seeds: int = 8) -> None:
        self.graph = graph
        self.server = server
        self.workload = workload
        self.references = {
            s: execute_graph_reference(graph, random_feeds(graph, seed=s))
            for s in range(ref_seeds)
        }
        self.lock = threading.Lock()
        self.accepted: list[tuple] = []   # (Request, ref seed)
        self.shed = 0
        self.submitted = 0
        self.wrong: list[str] = []
        self.errors: list[str] = []

    # -- traffic --------------------------------------------------------

    def _seed_for(self, i: int) -> int:
        return i % len(self.references)

    def submit_one(self, i: int):
        """Submit request ``i``; returns the handle or None when shed."""
        seed = self._seed_for(i)
        feeds = random_feeds(self.graph, seed=seed)
        with self.lock:
            self.submitted += 1
        try:
            req = self.server.submit(self.workload, feeds)
        except Overloaded:
            with self.lock:
                self.shed += 1
            return None
        with self.lock:
            self.accepted.append((req, seed))
        return req

    def infer_one(self, i: int) -> None:
        """Submit-and-wait; sheds are retried until accepted."""
        req = self.submit_one(i)
        while req is None:
            time.sleep(0.002)
            req = self.submit_one(i)
        self.check(req, timeout=60.0)

    def check(self, req, timeout: float = 60.0) -> None:
        """Wait for one accepted request and verify its outputs."""
        seed = None
        with self.lock:
            for r, s in self.accepted:
                if r is req:
                    seed = s
                    break
        assert seed is not None
        try:
            reply = req.result(timeout=timeout)
        except Exception as exc:  # noqa: BLE001 — tallied as an invariant
            with self.lock:
                self.errors.append(f"request {req.seq}: "
                                   f"{type(exc).__name__}: {exc}")
            return
        expected = self.references[seed]
        for name, ref in expected.items():
            got = reply.outputs.get(name)
            if got is None or not np.isfinite(got).all():
                with self.lock:
                    self.wrong.append(
                        f"request {req.seq}: output {name} missing or "
                        f"non-finite")
                return
            err = float(np.max(np.abs(got - ref)))
            if err > 1e-8:
                with self.lock:
                    self.wrong.append(
                        f"request {req.seq}: output {name} off by {err:.3e}")
                return

    def check_all_pending(self) -> None:
        with self.lock:
            pending = [(r, s) for r, s in self.accepted if not r.done()]
        for req, _seed in pending:
            self.check(req)


def _plan_by_phase(plan: list[dict]) -> dict[str, dict[str, str]]:
    registry = faults.registry()
    known = registry.known()
    by_phase: dict[str, dict[str, str]] = {p: {} for p in PHASES}
    for entry in plan:
        name = entry["failpoint"]
        if name not in known:
            raise ChaosError(
                f"fault plan names unknown failpoint {name!r}; "
                f"registered: {sorted(known)}")
        by_phase[entry["phase"]][name] = entry["action"]
    return by_phase


def run_chaos(seed: int = 0, requests: int = 200, workload: str = "mlp",
              fault_plan: list[dict] | None = None,
              breaker_threshold: int = 3,
              breaker_reset_s: float = 0.05,
              queue_depth: int = 8,
              workers: int = 2,
              report_path: str | None = None) -> ChaosReport:
    """Run the full chaos schedule; returns the report (never raises for
    invariant violations — the caller checks ``report.ok``)."""
    if workload not in CHAOS_WORKLOADS:
        raise ChaosError(f"unknown chaos workload {workload!r}; "
                         f"expected one of {sorted(CHAOS_WORKLOADS)}")
    plan = fault_plan if fault_plan is not None else DEFAULT_FAULT_PLAN
    by_phase = _plan_by_phase(plan)
    registry = faults.registry()
    registry.seed(seed)

    graph = CHAOS_WORKLOADS[workload]()
    gpu = get_gpu("ampere")
    metrics = ServeMetrics()
    t_start = time.perf_counter()
    phase_counts: dict[str, int] = {}

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        cache = TieredScheduleCache(
            disk=ScheduleCache(tmpdir), metrics=metrics,
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.002,
                                     max_delay_s=0.02, seed=seed))
        breaker = CircuitBreaker(failure_threshold=breaker_threshold,
                                 reset_timeout_s=breaker_reset_s)
        session = InferenceSession(graph, gpu, cache=cache, metrics=metrics,
                                   breaker=breaker)
        server = FusionServer({graph.name: session}, workers=workers,
                              max_batch=8, max_wait_ms=1.0,
                              metrics=metrics, max_queue_depth=queue_depth)
        run = _Run(graph, server, graph.name)

        def run_phase(name: str, count: int, fn) -> None:
            before = run.submitted
            with registry.armed(by_phase.get(name, {})):
                fn(count)
            phase_counts[name] = run.submitted - before

        # Phase budget: the special phases have fixed shapes; everything
        # left over becomes steady/drain traffic.
        burst = 6 * queue_depth
        special = 1 + (breaker_threshold + 4) + 1 + burst
        leftover = max(0, requests - special)
        steady_n = leftover // 2
        drain_n = leftover - steady_n

        def phase_compile(_count: int) -> None:
            # Faults on the cold path: disk read error, one failed
            # compile attempt (retried), one failed autotune campaign
            # (also absorbed by the retry), one failed lowering
            # (retried), disk write error.  The first request must still
            # be answered correctly.
            server.start()
            run.infer_one(0)

        def phase_steady(count: int) -> None:
            clients = min(4, max(1, count))

            def client(cid: int) -> None:
                for i in range(cid, count, clients):
                    run.infer_one(i)

            threads = [threading.Thread(target=client, args=(c,))
                       for c in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        def phase_breaker(_count: int) -> None:
            # `fail_n_times(threshold)` on runtime.execute: each failure
            # is answered via the reference, the breaker opens on the
            # last one.  Requests while open degrade immediately; after
            # the reset timeout one half-open probe succeeds (the
            # failpoint is exhausted) and the breaker closes.
            for i in range(breaker_threshold):
                run.infer_one(i)
            for i in range(3):
                run.infer_one(i)          # breaker open → reference path
            time.sleep(breaker_reset_s * 1.5)
            run.infer_one(0)              # half-open probe → close

        def phase_quarantine(_count: int) -> None:
            run.infer_one(0)

        def phase_overload(_count: int) -> None:
            # Workers stalled by the serve.batch delay; a concurrent
            # burst well past the queue bound must shed.  Shed requests
            # never enqueue; accepted ones all complete after the phase.
            for _attempt in range(5):
                before = run.shed
                threads = [threading.Thread(target=run.submit_one, args=(i,))
                           for i in range(burst)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                if run.shed > before:
                    break
            run.check_all_pending()

        run_phase("compile", 1, phase_compile)
        run_phase("steady", steady_n, phase_steady)
        run_phase("breaker", breaker_threshold + 4, phase_breaker)
        run_phase("quarantine", 1, phase_quarantine)
        run_phase("overload", burst, phase_overload)
        run_phase("drain", drain_n, phase_steady)

        run.check_all_pending()
        server.stop(drain=True)
        health = server.health()
        queue_left = server.queue.depth()

        # ---- invariants ------------------------------------------------
        snap = metrics.snapshot()
        report = ChaosReport(
            seed=seed, workload=workload, fault_plan=plan,
            breaker_transitions=list(breaker.transitions),
            health=health, metrics=snap,
            elapsed_s=time.perf_counter() - t_start)
        report.requests = dict(phase_counts)
        report.requests.update(
            submitted=run.submitted,
            accepted=len(run.accepted),
            shed=run.shed,
        )

        unresolved = [r.seq for r, _ in run.accepted if not r.done()]
        multi = [r.seq for r, _ in run.accepted if r.resolutions != 1]
        retries = (metrics.get("cache.compile_retries")
                   + metrics.get("lower.retries"))
        report.exercised = {
            "compile_retries": metrics.get("cache.compile_retries"),
            "lower_retries": metrics.get("lower.retries"),
            "breaker_cycles": breaker.cycles,
            "sheds": run.shed,
            "quarantines": metrics.get("plans.quarantined"),
            "disk_errors": metrics.get("cache.disk_errors"),
        }

        inv = report.invariants.append
        inv(Invariant(
            "answered_exactly_once",
            not unresolved and not multi,
            (f"unresolved={unresolved[:5]} multi={multi[:5]}"
             if unresolved or multi else
             f"{len(run.accepted)} accepted requests, one resolution "
             f"each")))
        inv(Invariant(
            "all_answers_correct",
            not run.wrong and not run.errors,
            "; ".join((run.wrong + run.errors)[:5])
            or "all outputs finite and equal to the unfused reference"))
        inv(Invariant(
            "drains_clean", queue_left == 0,
            f"queue depth after stop: {queue_left}"))
        inv(Invariant(
            "retry_exercised", retries >= 1,
            f"compile+lower retries: {retries}"))
        inv(Invariant(
            "breaker_cycle_exercised", breaker.cycles >= 1,
            f"open→half-open→close cycles: {breaker.cycles}, "
            f"transitions: {breaker.transitions}"))
        inv(Invariant(
            "shed_exercised", run.shed >= 1,
            f"load sheds: {run.shed}"))
        inv(Invariant(
            "quarantine_exercised",
            metrics.get("plans.quarantined") >= 1,
            f"plans quarantined: {metrics.get('plans.quarantined')}"))
        inv(Invariant(
            "disk_errors_absorbed",
            metrics.get("cache.disk_errors") >= 1,
            f"disk-tier errors counted as misses: "
            f"{metrics.get('cache.disk_errors')}"))

    if report_path:
        report.write(report_path)
    return report
