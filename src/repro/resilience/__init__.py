"""repro.resilience — fault injection, retries, and circuit breaking.

The robustness layer for the serving stack: deterministic, seeded
failpoints (:mod:`repro.resilience.faults`) wired into every failure
mode of the compile → cache → execute → serve pipeline; retry with
backoff and circuit breaking (:mod:`repro.resilience.retry`); and a
chaos harness (:mod:`repro.resilience.chaos`, run via ``repro chaos``)
that injects a seeded fault schedule against a live
:class:`~repro.serve.server.FusionServer` and asserts the end-to-end
invariants — every request answered exactly once, every answer finite
and equal to the unfused reference, the server drains clean.

:mod:`~repro.resilience.chaos` imports the serving stack, so it is kept
out of this package namespace to avoid import cycles (``core`` and
``runtime`` modules import :mod:`~repro.resilience.faults`).
"""

from .faults import (
    FailpointError,
    FailpointRegistry,
    FaultInjected,
    fire,
    register,
    registry,
    triggered,
)
from .retry import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, RetryPolicy

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "FailpointError",
    "FailpointRegistry",
    "FaultInjected",
    "HALF_OPEN",
    "OPEN",
    "RetryPolicy",
    "fire",
    "register",
    "registry",
    "triggered",
]
