"""Cluster-tier chaos harness: seeded faults against a live worker fleet.

``repro chaos --cluster --seed S`` stands up a real
:class:`~repro.cluster.supervisor.ClusterSupervisor` — forked worker
processes behind duplex pipes, consistent-hash sharding with replicas,
admission control, heartbeat health checks, breaker-gated restarts,
end-to-end deadlines, and hedged replica requests — then walks a seeded
phase plan through every cluster-level failure mode the single-process
harness (:mod:`repro.resilience.chaos`) cannot reach:

* **crash mid-flight** — a worker is hard-killed with requests
  executing; the in-flight book fails them typed
  (:class:`~repro.serve.batching.WorkerCrashed`), the breaker-gated
  restart brings the worker back, and post-restart traffic is answered
  correctly;
* **hung worker reaped** — a ``cluster.worker.hang`` delay makes a
  worker stop answering pings without exiting; the health loop must
  reap and replace it;
* **slow replica → hedge** — a ``cluster.worker.slow`` delay on the
  routed worker forces the supervisor's hedge timer to re-issue to the
  next replica; the hedge must win and the loser must be cancelled;
* **deadline storm** — tiny budgets plus a ``cluster.dispatch`` delay
  burn requests' budgets supervisor-side; expired work is cancelled at
  the boundary and **nothing is ever answered past its deadline**;
* **cold-path disk faults after restart** — the restarted worker
  re-arms the supervisor's fault plan at boot and must absorb schedule
  cache and tuning-database disk errors as counted misses;
* **deadline-capped compile** — a persistently failing compile under a
  tiny ``compile_deadline_s`` must stop retrying at the budget
  (``retry.deadline_capped``) and degrade to the always-correct
  reference instead of retrying into a dead deadline.

Fleet-wide invariants asserted over the whole run: every accepted
request resolves **exactly once**; every successful answer is finite
and matches the unfused float64 reference to 1e-8; **zero** replies
land past their end-to-end deadline; at least one hedge won, one
restart recovered, one hung worker was reaped, one retry chain was
deadline-capped, and the disk faults really fired; the final drain is
clean.  The report lands in the ``cluster`` section of
``BENCH_robustness.json`` (merged next to the single-process chaos
report, never clobbering it).
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..cluster import ClusterConfig, ClusterShed, ClusterSupervisor
from ..models import layernorm_graph, mlp_graph
from ..runtime.kernels import execute_graph_reference, random_feeds
from ..serve import ServeMetrics, WorkerCrashed
from . import faults
from .chaos import ChaosError, Invariant

#: Purpose-built small workloads (same shapes as the single-process
#: harness): the run exercises failure paths, not kernels.
CLUSTER_WORKLOADS = {
    "chaos_mlp": lambda: mlp_graph(3, 64, 32, 48, name="chaos_mlp"),
    "chaos_ln": lambda: layernorm_graph(48, 64, name="chaos_ln"),
}

#: Reference feed seeds checked per workload.
REF_SEEDS = 6

#: Slack added to a deadline before a completion counts as "late": the
#: supervisor's expiry/publish gates run on timer threads, so a reply
#: can legitimately land a scheduling quantum after the exact deadline
#: while still having been *decided* before it.
DEADLINE_SLACK_S = 0.1

#: Exceptions a phase may legitimately answer a request with.
_SHEDDABLE = (ClusterShed,)
_CRASHABLE = (WorkerCrashed, ClusterShed, TimeoutError)
_EXPIRABLE = (TimeoutError, ClusterShed)


class _Flight:
    """One submitted request plus everything needed to judge it later."""

    __slots__ = ("request", "workload", "seed", "phase", "deadline_wall",
                 "done_at", "expect")

    def __init__(self, request, workload: str, seed: int, phase: str,
                 deadline_wall: float | None,
                 expect: tuple = ()) -> None:
        self.request = request
        self.workload = workload
        self.seed = seed
        self.phase = phase
        #: Absolute monotonic deadline this request was submitted under.
        self.deadline_wall = deadline_wall
        #: Monotonic completion time, stamped by the ``on_done`` hook.
        self.done_at: float | None = None
        #: Exception types that count as an *expected* typed failure in
        #: this phase (anything else failing is an invariant violation).
        self.expect = expect


@dataclass
class ClusterChaosReport:
    """Everything a cluster chaos run observed, plus the verdicts."""

    seed: int
    workers: int
    phases: dict[str, int] = field(default_factory=dict)
    exercised: dict[str, int] = field(default_factory=dict)
    invariants: list[Invariant] = field(default_factory=list)
    restarts: dict[str, int] = field(default_factory=dict)
    supervisor_metrics: dict = field(default_factory=dict)
    worker_totals: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def to_dict(self) -> dict:
        return {
            "experiment": "chaos",
            "mode": "cluster",
            "seed": self.seed,
            "workers": self.workers,
            "ok": self.ok,
            "elapsed_s": self.elapsed_s,
            "phases": self.phases,
            "exercised": self.exercised,
            "invariants": [{"name": i.name, "ok": i.ok, "detail": i.detail}
                           for i in self.invariants],
            "restarts": self.restarts,
            "supervisor_metrics": self.supervisor_metrics,
            "worker_totals": self.worker_totals,
        }

    def write(self, path: str) -> None:
        """Merge this run into ``path`` as its ``cluster`` section so the
        single-process chaos report in the same file survives."""
        data: dict = {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            if isinstance(existing, dict):
                data = existing
        except (OSError, ValueError):
            pass
        data.setdefault("experiment", "chaos")
        data["cluster"] = self.to_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        lines = [f"cluster chaos run: seed={self.seed} "
                 f"workers={self.workers} ({self.elapsed_s:.2f}s)",
                 "requests per phase:"]
        for name, count in self.phases.items():
            lines.append(f"  {name:<24} {count}")
        lines.append("faults exercised:")
        for name in sorted(self.exercised):
            lines.append(f"  {name:<24} {self.exercised[name]}")
        lines.append("invariants:")
        for inv in self.invariants:
            mark = "PASS" if inv.ok else "FAIL"
            detail = f" — {inv.detail}" if inv.detail else ""
            lines.append(f"  [{mark}] {inv.name}{detail}")
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


class _Run:
    """Mutable run state: flights, references, verdict accumulators."""

    def __init__(self, supervisor: ClusterSupervisor,
                 graphs: dict) -> None:
        self.sup = supervisor
        self.graphs = graphs
        self.references = {
            name: {s: execute_graph_reference(g, random_feeds(g, seed=s))
                   for s in range(REF_SEEDS)}
            for name, g in graphs.items()
        }
        self.flights: list[_Flight] = []
        self.shed = 0
        self.wrong: list[str] = []
        self.unexpected: list[str] = []
        self.late: list[str] = []

    # -- traffic --------------------------------------------------------

    def submit(self, workload: str, seed: int, phase: str,
               timeout: float | None = None,
               expect: tuple = ()) -> _Flight | None:
        """Submit one request; None when admission shed it (tallied)."""
        seed = seed % REF_SEEDS
        feeds = random_feeds(self.graphs[workload], seed=seed)
        deadline_wall = (time.monotonic() + timeout
                         if timeout is not None else None)
        flight = _Flight(None, workload, seed, phase, deadline_wall,
                         expect)

        def stamp(_request) -> None:
            flight.done_at = time.monotonic()

        try:
            flight.request = self.sup.submit(
                workload, feeds, timeout=timeout, on_done=stamp)
        except ClusterShed:
            self.shed += 1
            return None
        self.flights.append(flight)
        return flight

    def infer(self, workload: str, seed: int, phase: str,
              timeout: float | None = None, expect: tuple = (),
              wait: float = 60.0) -> _Flight | None:
        flight = self.submit(workload, seed, phase, timeout=timeout,
                             expect=expect)
        if flight is not None:
            self.check(flight, wait=wait)
        return flight

    # -- judging --------------------------------------------------------

    def check(self, flight: _Flight, wait: float = 60.0) -> None:
        """Wait for one flight and judge its outcome against the phase's
        expectations and the float64 reference."""
        req = flight.request
        try:
            reply = req.result(timeout=wait)
        except Exception as exc:  # noqa: BLE001 — judged below
            if not isinstance(exc, flight.expect):
                self.unexpected.append(
                    f"[{flight.phase}] request {req.seq}: "
                    f"{type(exc).__name__}: {exc}")
            return
        if (flight.deadline_wall is not None and flight.done_at is not None
                and flight.done_at > flight.deadline_wall
                + DEADLINE_SLACK_S):
            self.late.append(
                f"[{flight.phase}] request {req.seq} answered "
                f"{flight.done_at - flight.deadline_wall:.3f}s past its "
                f"deadline")
        expected = self.references[flight.workload][flight.seed]
        for name, ref in expected.items():
            got = reply.outputs.get(name)
            if got is None or not np.isfinite(got).all():
                self.wrong.append(
                    f"[{flight.phase}] request {req.seq}: output {name} "
                    f"missing or non-finite")
                return
            err = float(np.max(np.abs(got - ref)))
            if err > 1e-8:
                self.wrong.append(
                    f"[{flight.phase}] request {req.seq}: output {name} "
                    f"off by {err:.3e}")
                return

    def check_all_pending(self, wait: float = 60.0) -> None:
        for flight in self.flights:
            if not flight.request.done():
                self.check(flight, wait=wait)


def _wait(predicate, timeout: float = 20.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def run_cluster_chaos(seed: int = 0, workers: int = 2,
                      requests: int = 60,
                      report_path: str | None = None,
                      ) -> ClusterChaosReport:
    """Run the cluster-tier chaos plan; returns the report (never raises
    for invariant violations — the caller checks ``report.ok``)."""
    if workers < 2:
        raise ChaosError("cluster chaos needs at least 2 workers "
                         "(hedging and failover target a replica)")
    faults.registry().seed(seed)
    graphs = {name: make() for name, make in CLUSTER_WORKLOADS.items()}
    metrics = ServeMetrics()
    t_start = time.perf_counter()
    phase_counts: dict[str, int] = {}

    with tempfile.TemporaryDirectory(prefix="repro-cluster-chaos-") as tmp:
        config = ClusterConfig(
            workers=workers,
            replication=2,
            cache_dir=f"{tmp}/cache",
            tune_db_dir=f"{tmp}/tunedb",
            health_interval_s=0.1,
            heartbeat_timeout_s=2.5,
            restart_breaker_threshold=4,
            restart_breaker_reset_s=0.5,
            worker_queue_depth=64,
            # Adaptive hedging stays quiet this early (< min samples);
            # the slow-replica phase switches to a fixed delay.
            hedge=True,
            hedge_min_samples=10_000,
        )
        sup = ClusterSupervisor(graphs, config, metrics=metrics)
        sup.start()
        run = _Run(sup, graphs)
        try:
            def run_phase(name: str, fn) -> None:
                before = len(run.flights)
                fn()
                phase_counts[name] = len(run.flights) - before

            mlp_primary = sup.owners_for("chaos_mlp")[0]
            ln_primary = sup.owners_for("chaos_ln")[0]

            # -- phase 1: warmup — cold compile, correct answers -------
            def phase_warmup() -> None:
                budget = max(4, min(16, requests // 4))
                for i in range(budget):
                    for wl in graphs:
                        run.infer(wl, i, "warmup", timeout=60.0,
                                  expect=_SHEDDABLE)

            # -- phase 2: crash mid-flight, breaker-gated restart ------
            def phase_crash() -> None:
                gen_before = sup.metrics.get("workers.restarts")
                assert sup.arm_faults(mlp_primary,
                                      {"runtime.execute": "delay(400)"})
                inflight = [run.submit("chaos_mlp", i, "crash",
                                       expect=_CRASHABLE)
                            for i in range(3)]
                time.sleep(0.15)        # let them reach the executor
                sup.kill_worker(mlp_primary)
                for flight in inflight:
                    if flight is not None:
                        run.check(flight, wait=30.0)
                _wait(lambda: sup.metrics.get("workers.restarts")
                      > gen_before
                      and sup.health()["workers"][mlp_primary]["up"])
                # Post-restart traffic through the same shard must be
                # answered correctly (warm disk cache ⇒ fast recompile).
                for i in range(2):
                    run.infer("chaos_mlp", i, "crash_recovered",
                              timeout=60.0, expect=_SHEDDABLE)

            # -- phase 3: hung worker reaped by the health loop --------
            def phase_hang() -> None:
                hung_before = sup.metrics.get("workers.hung")
                target = sup.owners_for("chaos_ln")[0]
                assert sup.arm_faults(target,
                                      {"cluster.worker.hang": "delay(6000)"})
                _wait(lambda: sup.metrics.get("workers.hung") > hung_before,
                      timeout=30.0)
                _wait(lambda: sup.health()["workers"][target]["up"],
                      timeout=30.0)
                run.infer("chaos_ln", 0, "hang_recovered", timeout=60.0,
                          expect=_SHEDDABLE)

            # -- phase 4: slow replica forces a winning hedge ----------
            def phase_hedge() -> None:
                sup.config.hedge_delay_s = 0.05
                sup.config.hedge_max_fraction = 0.5
                primary = sup.owners_for("chaos_mlp")[0]
                assert sup.arm_faults(primary,
                                      {"cluster.worker.slow": "delay(400)"})
                try:
                    for i in range(4):
                        run.infer("chaos_mlp", i, "hedge", timeout=20.0,
                                  expect=_SHEDDABLE, wait=30.0)
                        if sup.metrics.get("hedge.won") >= 2:
                            break
                finally:
                    sup.config.hedge_delay_s = None
                    sup.config.hedge_max_fraction = 0.1
                    sup.arm_faults(primary,
                                   {"cluster.worker.slow": "delay(0)"})

            # -- phase 5: deadline storm — budgets die at the boundary -
            def phase_deadlines() -> None:
                sup.config.hedge = False
                registry = faults.registry()
                # 30ms of supervisor-side routing burns a 15ms budget
                # whole: the request must die at dispatch, typed, and
                # never cross the wire.
                with registry.armed({"cluster.dispatch": "delay(30)"}):
                    for i in range(3):
                        run.infer("chaos_mlp", i, "deadline_storm",
                                  timeout=0.015, expect=_EXPIRABLE,
                                  wait=10.0)
                    # A budget that survives dispatch must still never
                    # be answered late (worker ingress / publish gates).
                    for i in range(3):
                        run.infer("chaos_mlp", i, "deadline_tight",
                                  timeout=0.08, expect=_EXPIRABLE,
                                  wait=10.0)
                sup.config.hedge = True

            # -- phase 6: restart re-arms cold-path disk faults --------
            def phase_cold_faults() -> None:
                sup.config.hedge = False
                sup.config.fault_plan = {
                    "serve.cache.disk_get": "fail_n_times(2)",
                    "tune.db.get": "fail_n_times(2)",
                    "tune.db.put": "fail_n_times(2)",
                }
                restarts_before = sup.metrics.get("workers.restarts")
                try:
                    sup.kill_worker(mlp_primary)
                    _wait(lambda: sup.metrics.get("workers.restarts")
                          > restarts_before
                          and sup.health()["workers"][mlp_primary]["up"])
                    # The reborn worker armed the plan at boot: its first
                    # compile must absorb a disk-cache read error (counted
                    # miss ⇒ full recompile) and tuning-DB read+write
                    # errors (counted drops) while still answering right.
                    for i in range(3):
                        run.infer("chaos_mlp", i, "cold_faults",
                                  timeout=60.0, expect=_CRASHABLE)
                finally:
                    sup.config.fault_plan = {}
                    sup.config.hedge = True

            # -- phase 7: compile retries capped by the deadline -------
            def phase_deadline_capped() -> None:
                sup.config.hedge = False
                sup.config.fault_plan = {
                    "serve.cache.disk_get": "fail",
                    "serve.cache.compile": "fail",
                }
                # Tight enough that the *first* retry backoff (~5ms
                # base) would already cross it — the cap must fire
                # before the attempt count runs out.
                sup.config.compile_deadline_s = 0.002
                restarts_before = sup.metrics.get("workers.restarts")
                try:
                    sup.kill_worker(ln_primary)
                    _wait(lambda: sup.metrics.get("workers.restarts")
                          > restarts_before
                          and sup.health()["workers"][ln_primary]["up"])
                    # Every compile attempt fails and the 50ms budget
                    # forbids backoff past it: the session must cap the
                    # retry chain and serve the reference — a degraded
                    # but *correct* answer, never a hang or an error.
                    for i in range(3):
                        run.infer("chaos_ln", i, "deadline_capped",
                                  timeout=60.0, expect=_CRASHABLE)
                finally:
                    sup.config.fault_plan = {}
                    sup.config.compile_deadline_s = None
                    sup.config.hedge = True

            # -- phase 8: drain ---------------------------------------
            def phase_drain() -> None:
                budget = max(4, min(12, requests // 6))
                for i in range(budget):
                    for wl in graphs:
                        run.infer(wl, i, "drain", timeout=60.0,
                                  expect=_SHEDDABLE)

            run_phase("warmup", phase_warmup)
            run_phase("crash_recovery", phase_crash)
            run_phase("hang_reap", phase_hang)
            run_phase("slow_hedge", phase_hedge)
            run_phase("deadline_storm", phase_deadlines)
            run_phase("cold_faults", phase_cold_faults)
            run_phase("deadline_capped", phase_deadline_capped)
            run_phase("drain", phase_drain)

            run.check_all_pending()
        finally:
            sup.stop(drain=True)

        aggregate = sup.aggregate()
        totals = aggregate["worker_totals"]
        snap = aggregate["supervisor"]

        report = ClusterChaosReport(
            seed=seed, workers=workers,
            restarts=aggregate["restarts"],
            supervisor_metrics=snap,
            worker_totals=totals,
            elapsed_s=time.perf_counter() - t_start)
        report.phases = dict(phase_counts)
        report.phases["submitted"] = len(run.flights)
        report.phases["shed"] = run.shed

        def total(key: str) -> float:
            return totals.get(key, 0) + snap.get(key, 0)

        report.exercised = {
            "workers_crashed": snap.get("workers.crashed", 0),
            "workers_hung": snap.get("workers.hung", 0),
            "workers_restarted": snap.get("workers.restarts", 0),
            "hedges_issued": snap.get("hedge.issued", 0),
            "hedges_won": snap.get("hedge.won", 0),
            "deadline_expired_dispatch":
                snap.get("deadline.expired_dispatch", 0),
            "deadline_expired_total":
                sum(v for k, v in {**snap, **totals}.items()
                    if k.startswith("deadline.expired")),
            "retry_deadline_capped": total("retry.deadline_capped"),
            "cache_disk_errors": total("cache.disk_errors"),
            "tunedb_disk_errors": total("tunedb.disk_errors"),
            "requests_cancelled": totals.get("requests.cancelled", 0),
        }

        # ---- invariants ------------------------------------------------
        unresolved = [f.request.seq for f in run.flights
                      if not f.request.done()]
        multi = [f.request.seq for f in run.flights
                 if f.request.resolutions != 1]
        inv = report.invariants.append
        inv(Invariant(
            "resolved_exactly_once",
            not unresolved and not multi,
            (f"unresolved={unresolved[:5]} multi={multi[:5]}"
             if unresolved or multi else
             f"{len(run.flights)} accepted requests, one resolution "
             f"each across crashes, hedges, and expiries")))
        inv(Invariant(
            "answers_match_reference",
            not run.wrong and not run.unexpected,
            "; ".join((run.wrong + run.unexpected)[:5])
            or "every answer finite and equal to the float64 reference; "
               "every failure a typed, phase-expected error"))
        inv(Invariant(
            "no_post_deadline_replies",
            not run.late,
            "; ".join(run.late[:5])
            or "no deadline-bearing request was ever answered past its "
               "budget"))
        inv(Invariant(
            "hedge_won",
            report.exercised["hedges_won"] >= 1,
            f"hedges issued={report.exercised['hedges_issued']} "
            f"won={report.exercised['hedges_won']}"))
        inv(Invariant(
            "restart_recovered",
            report.exercised["workers_crashed"] >= 1
            and report.exercised["workers_restarted"] >= 1,
            f"crashes={report.exercised['workers_crashed']} "
            f"restarts={report.exercised['workers_restarted']}"))
        inv(Invariant(
            "hung_worker_reaped",
            report.exercised["workers_hung"] >= 1,
            f"hung workers reaped: {report.exercised['workers_hung']}"))
        inv(Invariant(
            "deadline_expired_at_boundary",
            report.exercised["deadline_expired_dispatch"] >= 1,
            f"expired at dispatch: "
            f"{report.exercised['deadline_expired_dispatch']}, "
            f"expired total: "
            f"{report.exercised['deadline_expired_total']}"))
        inv(Invariant(
            "retry_deadline_capped",
            report.exercised["retry_deadline_capped"] >= 1,
            f"retry chains capped by the compile budget: "
            f"{report.exercised['retry_deadline_capped']}"))
        inv(Invariant(
            "disk_faults_absorbed",
            report.exercised["cache_disk_errors"] >= 1
            and report.exercised["tunedb_disk_errors"] >= 1,
            f"schedule-cache disk errors: "
            f"{report.exercised['cache_disk_errors']}, tuning-DB disk "
            f"errors: {report.exercised['tunedb_disk_errors']}"))
        inv(Invariant(
            "drains_clean",
            not unresolved,
            "stop(drain=True) left nothing pending"
            if not unresolved else
            f"{len(unresolved)} request(s) stranded by the drain"))

    if report_path:
        report.write(report_path)
    return report
