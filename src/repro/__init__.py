"""repro: a reproduction of SpaceFusion (EuroSys '25) in pure Python."""

__version__ = "1.0.0"
