"""Inference sessions: one compiled model serving many requests.

An :class:`InferenceSession` owns everything needed to answer requests for
one workload graph on one GPU: it compiles through the two-tier cache
(:class:`~repro.serve.cache.TieredScheduleCache`), lowers the schedule
through the plan cache of the compiled execution engine
(:mod:`repro.runtime.compiled`), and executes request feeds.  Lowered
programs are pure functions over a per-request environment dict, so any
number of threads can execute concurrently on one session.

Two engines are available (``engine=`` constructor argument):

* ``"compiled"`` (default) — the lower-once engine: vectorized
  whole-tensor kernels, cached :class:`~repro.runtime.compiled.CompiledProgram`
  artifacts shared across sessions via the process-wide plan cache;
* ``"interpreter"`` — the schedule interpreter, kept as the always-correct
  fallback and as the parity oracle the compiled engine is tested against.

Graceful degradation — the ladder is compiled → interpreter → reference:

* if compilation fails (after the cache's retry policy is exhausted), or
  a request's deadline expires before the compiled artifact is ready,
  the session serves the request through the unfused reference kernels
  (:func:`repro.runtime.kernels.execute_graph_reference`);
* if the compiled engine *errors* on a request, the session answers via
  the reference and counts the failure against a per-workload
  :class:`~repro.resilience.retry.CircuitBreaker` — after N consecutive
  failures the breaker opens and requests skip the fused path entirely
  until a half-open probe succeeds;
* if the compiled engine returns **non-finite** outputs that the
  interpreter disagrees with, the poisoned plan is quarantined (evicted
  from the :class:`~repro.runtime.compiled.PlanCache`), the request is
  re-answered by the interpreter, and the schedule is re-lowered fresh.

Every downgrade is recorded — a slow correct answer instead of an error.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.compiler import FusionOptions
from ..core.schedule import ProgramSchedule
from ..hw.specs import GPUSpec
from ..ir.graph import DataflowGraph
from ..obs import event as obs_event
from ..obs import span as obs_span
from ..resilience.retry import CircuitBreaker
from ..runtime.compiled import (
    CompiledProgram,
    PlanCache,
    compile_schedule,
    default_plan_cache,
    outputs_finite,
)
from ..runtime.executor import ScheduleExecutor
from ..runtime.kernels import execute_graph_reference
from .cache import TieredScheduleCache
from .metrics import ServeMetrics

#: Compile lifecycle states.
PENDING, READY, FAILED = "pending", "ready", "failed"

#: Execution engines a session can run on.
ENGINE_COMPILED, ENGINE_INTERPRETER = "compiled", "interpreter"
ENGINES = (ENGINE_COMPILED, ENGINE_INTERPRETER)


class SessionError(Exception):
    """Raised on invalid session usage (not on degraded requests)."""


@dataclass
class SessionReply:
    """One answered request: outputs plus how they were produced."""

    outputs: dict[str, np.ndarray]
    degraded: bool = False
    reason: str | None = None
    latency_s: float = 0.0


@dataclass
class SessionInfo:
    """Introspection snapshot for reporting."""

    workload: str
    gpu: str
    state: str
    engine: str = ENGINE_COMPILED
    requests: int = 0
    degraded_requests: int = 0
    compile_error: str | None = None
    kernels: int = 0
    meta: dict = field(default_factory=dict)


class InferenceSession:
    """Serve one workload graph: compile once (cached), execute many."""

    def __init__(self, graph: DataflowGraph, gpu: GPUSpec,
                 options: FusionOptions | None = None,
                 cache: TieredScheduleCache | None = None,
                 metrics: ServeMetrics | None = None,
                 compile_fn: Callable[[], ProgramSchedule] | None = None,
                 eager: bool = False,
                 engine: str = ENGINE_COMPILED,
                 plan_cache: PlanCache | None = None,
                 breaker: CircuitBreaker | None = None,
                 tune_db=None,
                 compile_deadline_s: float | None = None) -> None:
        if engine not in ENGINES:
            raise SessionError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.graph = graph
        self.gpu = gpu
        self.options = options
        #: Optional :class:`repro.tune.TuneDB` — schedule-cache misses
        #: compile through the guided tuner, so a cold schedule cache on
        #: a warm tuning database still skips the tuning campaigns.
        self.tune_db = tune_db
        self.engine = engine
        self.plan_cache = plan_cache
        self.metrics = metrics or (cache.metrics if cache is not None
                                   else ServeMetrics())
        self.cache = cache if cache is not None else \
            TieredScheduleCache(metrics=self.metrics)
        #: Relative budget for the whole compile (cache resolution plus
        #: lowering): past it, retry backoff sleeps are skipped and the
        #: last error surfaces so the session degrades promptly instead
        #: of retrying into a dead deadline (None = retry freely).
        self.compile_deadline_s = compile_deadline_s
        self.breaker = breaker or CircuitBreaker()
        if self.breaker.on_transition is None:
            self.breaker.on_transition = self._on_breaker_transition
        self._compile_fn = compile_fn or self._default_compile
        self._state = PENDING
        self._ready = threading.Event()
        self._compile_started = threading.Lock()
        self._compile_thread: threading.Thread | None = None
        self.compile_error: str | None = None
        self.schedule: ProgramSchedule | None = None
        self.program: CompiledProgram | None = None
        self._interpreter: ScheduleExecutor | None = None
        self._requests = 0
        self._degraded = 0
        self._count_lock = threading.Lock()
        if eager:
            self.ensure_compiled()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _default_compile(self) -> ProgramSchedule:
        from ..pipeline import compile_for

        # The serve path never reads per-config timing traces; dropping
        # them keeps long-lived sessions from pinning one list per
        # kernel.  Benchmarks pass explicit options with the default
        # keep_timings=True.  The field is repr-excluded, so cache keys
        # (derived from repr(options)) are unaffected.
        options = self.options if self.options is not None \
            else FusionOptions(keep_timings=False)
        schedule, stats = compile_for(self.graph, self.gpu, options,
                                      tune_db=self.tune_db,
                                      tune_metrics=self.metrics)
        if stats is not None:
            self.metrics.add_gauge("tuning.wall_time_s",
                                   stats.tuning_wall_time)
            self.metrics.inc("tuning.configs_evaluated",
                             stats.configs_evaluated)
            self.metrics.inc("tuning.configs_quit_early",
                             stats.configs_quit_early)
        return schedule

    def _options_repr(self) -> str:
        return repr(self.options) if self.options is not None else ""

    def _compile_once(self) -> None:
        deadline = (time.monotonic() + self.compile_deadline_s
                    if self.compile_deadline_s is not None else None)
        try:
            with obs_span("session_compile", category="compile",
                          workload=self.graph.name, gpu=self.gpu.name):
                schedule = self.cache.get_or_compile(
                    self.graph, self.gpu.name, self._compile_fn,
                    self._options_repr(), deadline_s=deadline)
            with obs_span("session_lower", category="compile",
                          workload=self.graph.name, engine=self.engine):
                if self.engine == ENGINE_COMPILED:
                    # Lowering gets the same transient-fault retry
                    # treatment as the compile itself.
                    self.program = self.cache.retry_policy.call(
                        lambda: compile_schedule(
                            schedule, cache=self.plan_cache),
                        on_retry=lambda n, exc, d:
                            self.metrics.inc("lower.retries"),
                        deadline_s=deadline,
                        on_deadline=lambda n, exc, d:
                            self.metrics.inc("retry.deadline_capped"))
                else:
                    self._interpreter = ScheduleExecutor()
            self.schedule = schedule
            self._state = READY
        except Exception as exc:  # noqa: BLE001 — any compile failure degrades
            self.compile_error = f"{type(exc).__name__}: {exc}"
            self._state = FAILED
            self.metrics.inc("compile_failures")
        finally:
            self._ready.set()

    def start_compile(self) -> None:
        """Kick off compilation in the background (idempotent)."""
        with self._compile_started:
            if self._compile_thread is None and not self._ready.is_set():
                self._compile_thread = threading.Thread(
                    target=self._compile_once,
                    name=f"compile-{self.graph.name}", daemon=True)
                self._compile_thread.start()

    def ensure_compiled(self, timeout: float | None = None) -> bool:
        """Wait until compilation settled; True iff the fused path is ready.

        With a ``timeout`` the wait is bounded: returning False means the
        caller should degrade to the reference path for *this* request
        while compilation keeps running for future ones.
        """
        if self._state == READY:
            return True
        self.start_compile()
        self._ready.wait(timeout)
        return self._state == READY

    @property
    def state(self) -> str:
        return self._state

    @property
    def num_kernels(self) -> int:
        if self.program is not None:
            return len(self.program.kernels)
        if self.schedule is not None:
            return self.schedule.num_kernels
        return 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_fused(self, feeds: dict[str, np.ndarray],
                       ) -> dict[str, np.ndarray]:
        if self.engine == ENGINE_COMPILED:
            assert self.program is not None
            env = self.program.execute(feeds)
        else:
            assert self._interpreter is not None and self.schedule is not None
            env = self._interpreter.execute_program(self.schedule, feeds)
        return {t: env[t] for t in self.graph.output_tensors}

    def _execute_reference(self, feeds: dict[str, np.ndarray],
                           ) -> dict[str, np.ndarray]:
        return execute_graph_reference(self.graph, feeds)

    # -- resilience hooks ----------------------------------------------

    #: Numeric breaker-state encoding for the Prometheus gauge
    #: (``0`` healthy, higher = worse, so alert rules can threshold it).
    BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.metrics.inc(f"breaker.{new}")
        self.metrics.set_gauge(f"breaker_state.{self.graph.name}",
                               self.BREAKER_STATE_CODES.get(new, -1))
        obs_event("breaker_transition", category="serve",
                  workload=self.graph.name, old=old, new=new)

    def _get_interpreter(self) -> ScheduleExecutor:
        if self._interpreter is None:
            self._interpreter = ScheduleExecutor()
        return self._interpreter

    def _quarantine_and_reanswer(self, feeds: dict[str, np.ndarray],
                                 ) -> tuple[dict[str, np.ndarray], str]:
        """The compiled engine produced non-finite outputs: re-answer via
        the interpreter and decide whether the *plan* is to blame.

        If the interpreter's answer is finite, the plan is poisoned —
        evict it from the plan cache and re-lower fresh.  If the
        interpreter agrees the result is non-finite, the data (not the
        plan) produced it, and the plan stays.
        """
        assert self.schedule is not None and self.program is not None
        env = self._get_interpreter().execute_program(self.schedule, feeds)
        outputs = {t: env[t] for t in self.graph.output_tensors}
        if not outputs_finite(outputs, self.graph.output_tensors):
            self.metrics.inc("plans.nonfinite_data")
            return outputs, "nonfinite_data"
        cache = self.plan_cache or default_plan_cache()
        cache.evict(self.program.key)
        self.metrics.inc("plans.quarantined")
        obs_event("plan_quarantine", category="serve",
                  workload=self.graph.name, program=self.program.name)
        self.program = compile_schedule(self.schedule, cache=cache)
        return outputs, "plan_quarantined"

    def execute(self, feeds: dict[str, np.ndarray],
                timeout: float | None = None) -> SessionReply:
        """Answer one request; degrade down the ladder when needed.

        The ladder: compiled plan (breaker permitting) → interpreter
        (only to re-answer a quarantined plan's request) → unfused
        reference (compile trouble, open breaker, or an engine error).
        """
        t0 = time.perf_counter()
        degraded_reason: str | None = None
        with obs_span("execute", category="serve",
                      workload=self.graph.name, engine=self.engine) as sp:
            outputs: dict[str, np.ndarray] | None = None
            if not self.ensure_compiled(timeout):
                degraded_reason = ("compile_failed" if self._state == FAILED
                                   else "compile_timeout")
            elif not self.breaker.allow():
                degraded_reason = "breaker_open"
            else:
                try:
                    outputs = self._execute_fused(feeds)
                    if (self.engine == ENGINE_COMPILED
                            and not outputs_finite(
                                outputs, self.graph.output_tensors)):
                        outputs, degraded_reason = \
                            self._quarantine_and_reanswer(feeds)
                    self.breaker.record_success()
                except Exception as exc:  # noqa: BLE001 — degrade, don't error
                    self.breaker.record_failure()
                    degraded_reason = "engine_error"
                    sp.note(engine_error=f"{type(exc).__name__}: {exc}")
                    outputs = None
            if outputs is None:
                outputs = self._execute_reference(feeds)
            if degraded_reason is not None:
                self.metrics.record_fallback(degraded_reason)
            sp.note(degraded=degraded_reason is not None,
                    reason=degraded_reason)
        latency = time.perf_counter() - t0
        with self._count_lock:
            self._requests += 1
            if degraded_reason is not None:
                self._degraded += 1
        self.metrics.observe_request(latency, workload=self.graph.name)
        return SessionReply(outputs=outputs,
                            degraded=degraded_reason is not None,
                            reason=degraded_reason, latency_s=latency)

    def __call__(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        return self.execute(feeds).outputs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def info(self) -> SessionInfo:
        with self._count_lock:
            requests, degraded = self._requests, self._degraded
        meta = {"cache": self.cache.stats(),
                "breaker": self.breaker.snapshot()}
        if self.program is not None:
            meta["plan_kinds"] = self.program.kind_counts()
        if self.tune_db is not None:
            meta["tunedb"] = self.tune_db.disk_stats()
        return SessionInfo(
            workload=self.graph.name, gpu=self.gpu.name, state=self._state,
            engine=self.engine,
            requests=requests, degraded_requests=degraded,
            compile_error=self.compile_error,
            kernels=self.num_kernels,
            meta=meta,
        )
