"""Parallel model compilation: fan subprogram tuning across a worker pool.

``SpaceFusionCompiler.compile_model`` walks a model's unique subprograms
serially; for a Transformer that means the QKV projection, the attention
core, the FFN block, and every barrier each wait on the previous one's
autotuning campaign.  Those campaigns are independent, so this module
fans them across a ``concurrent.futures`` pool.

Determinism: each worker gets its **own** compiler instance (and its own
timing function via the factory), so no tuner state is shared across
threads; results are merged back in the program's subprogram order, which
makes the merged :class:`CompiledModel` — chosen configs, simulated kernel
times, and the float-summed :class:`CompileStats` — bit-for-bit identical
to the serial ``compile_model`` path.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from ..core.compiler import (
    CompiledModel,
    CompiledSubprogram,
    CompileStats,
    FusionOptions,
    SpaceFusionCompiler,
)
from ..hw.specs import GPUSpec
from ..ir.program import Subprogram, TensorProgram

CompilerFactory = Callable[[], SpaceFusionCompiler]


def default_max_workers() -> int:
    return min(8, os.cpu_count() or 1)


def compile_model_parallel(program: TensorProgram, gpu: GPUSpec,
                           options: FusionOptions | None = None,
                           max_workers: int | None = None,
                           compiler_factory: CompilerFactory | None = None,
                           tune_db=None,
                           tune_metrics=None,
                           ) -> CompiledModel:
    """Compile ``program`` with per-subprogram parallelism.

    Equivalent to ``make_compiler(gpu, options).compile_model(program)``
    but with unique subprograms compiled concurrently.  ``max_workers=1``
    degenerates to the serial path (still through the pool, same merge).

    ``tune_db`` is shared across the workers: the database is
    thread-safe, each worker still gets its own ``GuidedTuner`` (the
    predictor is per-compiler state), and the deterministic tie-break in
    the tuner means DB-induced evaluation reordering cannot change any
    worker's chosen configs — the merge stays bit-identical.
    """
    if compiler_factory is None:
        from ..pipeline import make_compiler
        compiler_factory = lambda: make_compiler(  # noqa: E731
            gpu, options, tune_db=tune_db, tune_metrics=tune_metrics)

    subs = program.unique_subprograms()
    workers = max_workers or default_max_workers()
    workers = max(1, min(workers, len(subs) or 1))

    def compile_one(sub: Subprogram) -> CompiledSubprogram:
        # A fresh compiler per task: the tuner and the fusion-pattern
        # census are instance state, and sharing them across threads would
        # race (and make the census order scheduling-dependent).
        return compiler_factory().compile_subprogram(sub)

    if workers == 1:
        compiled = [compile_one(sub) for sub in subs]
    else:
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="sf-compile") as pool:
            # executor.map preserves input order: the deterministic merge.
            compiled = list(pool.map(compile_one, subs))

    total = CompileStats()
    for csub in compiled:
        total.merge(csub.stats)
    return CompiledModel(program.name, compiled, total)
