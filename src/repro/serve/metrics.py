"""Serving metrics: counters and latency histograms for the runtime.

Every component of :mod:`repro.serve` reports into one
:class:`ServeMetrics` instance — compile cache tier hits and misses, queue
depth at enqueue time, realised batch sizes, per-request latency, and
fallback downgrades — so a single ``render_report()`` call gives the
operator view (`repro serve` prints it when the demo drains).

All mutation goes through one lock; the hot-path cost is a dict update,
which is what a production counter library would also do per sample.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: Histogram bucket upper bounds in seconds (last bucket is +inf).
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count (Prometheus-style)."""

    buckets: tuple[float, ...] = LATENCY_BUCKETS_S
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    samples: int = 0
    max_seen: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        i = 0
        while i < len(self.buckets) and value > self.buckets[i]:
            i += 1
        self.counts[i] += 1
        self.total += value
        self.samples += 1
        self.max_seen = max(self.max_seen, value)

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket bound containing the q-quantile sample."""
        if not self.samples:
            return 0.0
        rank = q * self.samples
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return (self.buckets[i] if i < len(self.buckets)
                        else self.max_seen)
        return self.max_seen

    def merge(self, other: "Histogram") -> None:
        assert self.buckets == other.buckets
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.samples += other.samples
        self.max_seen = max(self.max_seen, other.max_seen)


class ServeMetrics:
    """Thread-safe metrics registry for one serving process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.request_latency = Histogram()
        self.compile_latency = Histogram()
        self.queue_wait = Histogram()
        self.batch_sizes = Histogram(buckets=(1, 2, 4, 8, 16, 32, 64))
        self.queue_depths = Histogram(buckets=(0, 1, 2, 4, 8, 16, 32, 64))
        #: Per-workload request latency — the online estimate behind the
        #: supervisor's adaptive hedge delay (p95 per workload).
        self._workload_latency: dict[str, Histogram] = {}

    def _histograms(self) -> tuple[tuple[str, Histogram], ...]:
        return (("request_latency", self.request_latency),
                ("compile_latency", self.compile_latency),
                ("queue_wait", self.queue_wait),
                ("batch_size", self.batch_sizes),
                ("queue_depth", self.queue_depths))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + by

    def get(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (last write wins, e.g. breaker state)."""
        with self._lock:
            self.gauges[name] = float(value)

    def add_gauge(self, name: str, delta: float) -> None:
        """Accumulate into a float gauge (e.g. tuning wall-time saved).

        Counters are integers here; this is the float-valued analogue for
        quantities that accumulate fractional seconds.
        """
        with self._lock:
            self.gauges[name] = self.gauges.get(name, 0.0) + float(delta)

    def get_gauge(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self.gauges.get(name, default)

    def _derived_gauges(self) -> dict[str, float]:
        """Gauges computed from counters at read time (lock held).

        ``shed_rate`` is the fraction of submit attempts rejected by
        admission control — exported directly so the loadtest report and
        scrapers don't each re-derive it from two counters.
        """
        shed = self.counters.get("requests.shed", 0)
        submitted = self.counters.get("requests.submitted", 0)
        return {"shed_rate": shed / submitted if submitted else 0.0}

    def observe_request(self, latency_s: float,
                        workload: str | None = None) -> None:
        with self._lock:
            self.counters["requests_served"] = \
                self.counters.get("requests_served", 0) + 1
            self.request_latency.observe(latency_s)
            if workload is not None:
                hist = self._workload_latency.get(workload)
                if hist is None:
                    hist = self._workload_latency[workload] = Histogram()
                hist.observe(latency_s)

    def workload_latency_quantile(self, workload: str, q: float,
                                  min_samples: int = 1) -> float | None:
        """Online latency quantile for one workload, or ``None`` until at
        least ``min_samples`` requests have been observed.

        The ``min_samples`` gate matters for hedging: the first requests
        of a cold workload include compile time, and hedging off those
        samples would double-compile the fleet for nothing.
        """
        with self._lock:
            hist = self._workload_latency.get(workload)
            if hist is None or hist.samples < min_samples:
                return None
            return hist.quantile(q)

    def observe_compile(self, latency_s: float) -> None:
        with self._lock:
            self.compile_latency.observe(latency_s)

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.counters["batches_dispatched"] = \
                self.counters.get("batches_dispatched", 0) + 1
            self.batch_sizes.observe(size)

    def observe_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depths.observe(depth)

    def observe_queue_wait(self, wait_s: float) -> None:
        with self._lock:
            self.queue_wait.observe(wait_s)

    def record_fallback(self, reason: str) -> None:
        with self._lock:
            self.counters["fallbacks"] = self.counters.get("fallbacks", 0) + 1
            key = f"fallbacks.{reason}"
            self.counters[key] = self.counters.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter plus histogram summaries."""
        with self._lock:
            snap = dict(self.counters)
            for name, value in {**self.gauges,
                                **self._derived_gauges()}.items():
                snap[f"gauge.{name}"] = value
            for name, hist in self._histograms():
                snap[f"{name}.count"] = hist.samples
                snap[f"{name}.mean"] = hist.mean
                snap[f"{name}.p50"] = hist.quantile(0.50)
                snap[f"{name}.p95"] = hist.quantile(0.95)
                snap[f"{name}.p99"] = hist.quantile(0.99)
                snap[f"{name}.max"] = hist.max_seen
            for wl, hist in self._workload_latency.items():
                snap[f"workload_latency.{wl}.count"] = hist.samples
                snap[f"workload_latency.{wl}.p95"] = hist.quantile(0.95)
            return snap

    def render_report(self) -> str:
        """Human-readable serve-stats report (the `repro serve` epilogue)."""
        snap = self.snapshot()
        counter_keys = sorted(
            k for k in snap
            if isinstance(snap[k], int)
            and ("." not in k
                 or k.startswith(("fallbacks.", "requests.", "cache.",
                                  "breaker.", "plans.", "faults.",
                                  "lower.", "tunedb.", "tuning."))))
        lines = ["serve-stats", "==========="]
        lines.append("counters:")
        for name in counter_keys:
            lines.append(f"  {name:<24} {snap[name]}")
        lines.append("latency (seconds):")
        for name in ("request_latency", "compile_latency", "queue_wait"):
            lines.append(
                f"  {name:<16} n={snap[f'{name}.count']:<5} "
                f"mean={snap[f'{name}.mean']:.6f} "
                f"p50<={snap[f'{name}.p50']:.6f} "
                f"p95<={snap[f'{name}.p95']:.6f} "
                f"p99<={snap[f'{name}.p99']:.6f} "
                f"max={snap[f'{name}.max']:.6f}")
        lines.append("distributions:")
        for name in ("batch_size", "queue_depth"):
            lines.append(
                f"  {name:<16} n={snap[f'{name}.count']:<5} "
                f"mean={snap[f'{name}.mean']:.2f} "
                f"p50<={snap[f'{name}.p50']:g} max={snap[f'{name}.max']:g}")
        return "\n".join(lines)

    #: ``report()`` is the documented operator entry point; ``render_report``
    #: remains for callers from before the observability layer.
    report = render_report

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text-exposition dump of every counter and histogram.

        Counter names are sanitised (dots become underscores); histograms
        follow the convention of cumulative ``_bucket{le=...}`` series
        plus ``_sum`` and ``_count``.
        """
        def sanitize(name: str) -> str:
            return "".join(c if c.isalnum() or c == "_" else "_"
                           for c in name)

        lines: list[str] = []
        with self._lock:
            for name in sorted(self.counters):
                metric = f"{prefix}_{sanitize(name)}"
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {self.counters[name]}")
            gauges = {**self.gauges, **self._derived_gauges()}
            for name in sorted(gauges):
                metric = f"{prefix}_{sanitize(name)}"
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {gauges[name]:g}")
            for name, hist in self._histograms():
                metric = f"{prefix}_{sanitize(name)}"
                lines.append(f"# TYPE {metric} histogram")
                cumulative = 0
                for bound, count in zip(hist.buckets, hist.counts):
                    cumulative += count
                    lines.append(
                        f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
                cumulative += hist.counts[-1]
                lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{metric}_sum {hist.total:g}")
                lines.append(f"{metric}_count {hist.samples}")
        return "\n".join(lines) + "\n"
