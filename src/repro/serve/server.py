"""FusionServer: the concurrent serving front-end.

Clients ``submit()`` request feeds and get a future-like
:class:`~repro.serve.batching.Request` back; worker threads drain the
shared queue in dynamic batches and answer each request through its
workload's :class:`~repro.serve.session.InferenceSession`.  The server
never *errors* a request for compiler trouble: sessions degrade to the
unfused reference kernels on compile failure or deadline pressure, and
every downgrade is visible in the metrics report.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..obs import event as obs_event
from ..obs import span as obs_span
from ..resilience import faults as _faults
from ..resilience.retry import CLOSED as BREAKER_CLOSED
from ..resilience.retry import OPEN as BREAKER_OPEN
from .batching import (
    Overloaded,
    Request,
    RequestQueue,
    WorkerCrashed,
    validate_feeds,
)
from .metrics import ServeMetrics
from .session import FAILED, InferenceSession, SessionReply

#: Failpoint in the batch-assembly loop (armed only by tests/chaos).
FP_BATCH = _faults.register("serve.batch")
#: Failpoint that kills a worker thread with a batch in flight (the
#: crash-containment path: the batch must fail typed, not hang).
FP_WORKER_CRASH = _faults.register("serve.worker_crash")


class ServerError(Exception):
    """Raised on invalid server usage (unknown workload, closed server)."""


class FusionServer:
    """Thread-pooled request server over one or more inference sessions."""

    def __init__(self, sessions: dict[str, InferenceSession] | None = None,
                 *, max_batch: int = 8, max_wait_ms: float = 2.0,
                 workers: int = 2,
                 metrics: ServeMetrics | None = None,
                 max_queue_depth: int | None = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.sessions: dict[str, InferenceSession] = dict(sessions or {})
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self.num_workers = max(1, workers)
        self.metrics = metrics or ServeMetrics()
        self.queue = RequestQueue(on_expired=self._on_expired,
                                  max_depth=max_queue_depth)
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Session registry
    # ------------------------------------------------------------------

    def register(self, name: str, session: InferenceSession) -> None:
        self.sessions[name] = session

    def session(self, name: str) -> InferenceSession:
        try:
            return self.sessions[name]
        except KeyError:
            raise ServerError(
                f"unknown workload {name!r}; registered: "
                f"{sorted(self.sessions)}") from None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "FusionServer":
        if self._started:
            return self
        self._started = True
        # Warm every session's compile in the background so the first
        # requests overlap with (rather than wait serially on) tuning.
        for session in self.sessions.values():
            session.start_compile()
        for i in range(self.num_workers):
            t = threading.Thread(target=self._worker_main,
                                 name=f"serve-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down: close the queue and join workers.

        With ``drain=True`` (default) queued requests are still answered;
        with ``drain=False`` pending requests are failed immediately.
        Either way nothing is left unanswered: any request still queued
        after the workers exit (a submit racing the drain, or a server
        that was never started and so has no workers) is failed too, so
        no client can block forever in ``Request.result()``.
        """
        if self._stopped:
            return
        self._stopped = True
        if not drain:
            self._fail_pending()
        self.queue.close()
        for t in self._threads:
            t.join(timeout=30.0)
        self._threads.clear()
        self._fail_pending()

    def _fail_pending(self) -> None:
        for req in self.queue.drain_pending():
            req.fail(ServerError("server stopped before dispatch"))

    def __enter__(self) -> "FusionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def submit(self, workload: str, feeds: dict[str, np.ndarray],
               timeout: float | None = None,
               on_done=None, deadline_s: float | None = None) -> Request:
        """Enqueue one request; returns its future-like handle.

        Raises :class:`~repro.serve.batching.InvalidRequestError` for
        garbage feeds (non-finite values, uncastable dtypes, missing
        inputs) and :class:`~repro.serve.batching.Overloaded` when the
        queue is at its depth bound — both *before* the request enters
        the batcher.

        ``on_done(request)`` (optional) fires exactly once on the first
        resolve/fail — push-style completion for callers (the cluster
        worker, the load harness) that must not block a thread per
        request.

        ``deadline_s`` (optional) is an *absolute* monotonic deadline —
        the end-to-end budget anchored at cluster ingress.  Unlike
        ``timeout`` it is strict: results are never published past it.
        """
        if self._stopped:
            raise ServerError("server is stopped")
        self.metrics.inc("requests.submitted")
        session = self.session(workload)  # validate early, before enqueueing
        validate_feeds(feeds, required=session.graph.input_tensors)
        request = Request(workload=workload, feeds=feeds, timeout_s=timeout,
                          on_done=on_done, deadline_s=deadline_s)
        try:
            depth = self.queue.put(request)
        except Overloaded:
            self.metrics.inc("requests.shed")
            obs_event("load_shed", category="serve", workload=workload)
            raise
        self.metrics.observe_queue_depth(depth)
        return request

    def infer(self, workload: str, feeds: dict[str, np.ndarray],
              timeout: float | None = None) -> SessionReply:
        """Synchronous convenience: submit and wait for the reply."""
        return self.submit(workload, feeds, timeout=timeout).result()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _on_expired(self, request: Request) -> None:
        """Queue callback: a deadline passed before dispatch."""
        self.metrics.inc("requests.expired")

    def _worker_main(self) -> None:
        """Thread entry: run the loop, contain crashes, restart.

        A worker that dies with a batch in flight must not strand its
        submitters until their timeouts: every undispatched request of
        the batch is failed with a typed :class:`WorkerCrashed` first
        (``_worker_loop`` does that), the crash is counted, and — unless
        the server is stopping — the same thread re-enters the loop so
        serving capacity survives the crash.
        """
        while True:
            try:
                self._worker_loop()
                return  # queue closed and drained
            except Exception as exc:  # noqa: BLE001 — crash containment
                self.metrics.inc("workers.crashed")
                obs_event("worker_crash", category="serve",
                          worker=threading.current_thread().name,
                          error=f"{type(exc).__name__}: {exc}")
                if self._stopped:
                    return

    def _worker_loop(self) -> None:
        while True:
            try:
                # Failpoint for the batcher itself: a delay stalls batch
                # assembly (queue backs up, admission control sheds); a
                # fail skips one round — requests stay queued and are
                # picked up next iteration, never lost.
                _faults.fire(FP_BATCH)
            except _faults.FaultInjected:
                self.metrics.inc("faults.batching")
                continue
            with obs_span("batch_assembly", category="serve") as asp:
                batch = self.queue.take_batch(self.max_batch,
                                              self.max_wait_s)
                asp.note(batch=len(batch))
            if not batch:
                return  # queue closed and drained
            try:
                _faults.fire(FP_WORKER_CRASH)
                self.metrics.observe_batch(len(batch))
                session = self.sessions.get(batch[0].workload)
                for request in batch:
                    self._answer(session, request)
            except BaseException as exc:
                # The batch left the queue but this worker is dying: no
                # other worker will ever see these requests again, so
                # fail whatever was not answered yet with a typed error.
                worker = threading.current_thread().name
                for request in batch:
                    if not request.done():
                        request.fail(WorkerCrashed(
                            worker, f"{type(exc).__name__}: {exc}"))
                        self.metrics.inc("requests.worker_crashed")
                raise

    def _answer(self, session: InferenceSession | None,
                request: Request) -> None:
        queue_wait_s = time.monotonic() - request.enqueued_at
        self.metrics.observe_queue_wait(queue_wait_s)
        if session is None:
            request.fail(ServerError(
                f"workload {request.workload!r} was unregistered"))
            return
        try:
            with obs_span("request", category="serve",
                          workload=request.workload,
                          seq=request.seq) as sp:
                sp.note(queue_wait_s=queue_wait_s)
                reply = session.execute(request.feeds,
                                        timeout=request.remaining())
                sp.note(degraded=reply.degraded, reason=reply.reason)
            # Publish gate: a strict end-to-end deadline is never
            # answered late — a reply that became stale during execution
            # is dropped here, the last boundary before the client.
            if (request.deadline_s is not None
                    and time.monotonic() > request.deadline_s):
                self.metrics.inc("deadline.expired_publish")
                request.fail(TimeoutError(
                    f"request {request.seq} for {request.workload!r} "
                    "completed past its end-to-end deadline; "
                    "result withheld"))
                return
            request.resolve(reply)
        except Exception as exc:  # noqa: BLE001 — surface to the client
            self.metrics.inc("request_errors")
            request.fail(exc)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """Operator health snapshot: ``healthy``/``degraded``/``unhealthy``.

        A session is *impaired* when its compile failed outright or its
        circuit breaker is not closed (open = fused path disabled,
        half-open = probing recovery).  The server is ``degraded`` while
        any session is impaired (impaired sessions still answer — via
        the reference fallback) and ``unhealthy`` when it is stopped or
        *every* session's fused path is down (FAILED or breaker open).
        """
        sessions: dict[str, dict] = {}
        impaired = hard_down = 0
        for name, s in self.sessions.items():
            b_state = s.breaker.state
            sessions[name] = {"state": s.state, "breaker": b_state,
                              "engine": s.engine}
            if s.state == FAILED or b_state != BREAKER_CLOSED:
                impaired += 1
            if s.state == FAILED or b_state == BREAKER_OPEN:
                hard_down += 1
        if self._stopped or (self.sessions
                             and hard_down == len(self.sessions)):
            status = "unhealthy"
        elif impaired:
            status = "degraded"
        else:
            status = "healthy"
        return {
            "status": status,
            "stopped": self._stopped,
            "queue_depth": self.queue.depth(),
            "queue_bound": self.queue.max_depth,
            "shed": self.metrics.get("requests.shed"),
            "fallbacks": self.metrics.get("fallbacks"),
            "sessions": sessions,
        }

    def stats_report(self) -> str:
        """The serve-stats report: metrics plus per-session summaries."""
        lines = [self.metrics.render_report(), "", "sessions:"]
        for name in sorted(self.sessions):
            info = self.sessions[name].info()
            cache = info.meta.get("cache", {})
            breaker = info.meta.get("breaker", {})
            lines.append(
                f"  {name}: state={info.state} engine={info.engine} "
                f"kernels={info.kernels} "
                f"requests={info.requests} degraded={info.degraded_requests}"
                + (f" breaker={breaker['state']}" if breaker else "")
                + (f" error={info.compile_error!r}"
                   if info.compile_error else ""))
            if cache:
                lines.append(
                    f"    cache: memory_hits={cache.get('memory_hits', 0)} "
                    f"disk_hits={cache.get('disk_hits', 0)} "
                    f"compile_misses={cache.get('compile_misses', 0)} "
                    f"resident={cache.get('resident', 0)}")
        return "\n".join(lines)
