"""repro.serve — the concurrent inference-serving subsystem.

The layer that amortises SpaceFusion's compilation cost across traffic:

* :class:`TieredScheduleCache` — in-memory LRU over the on-disk
  :class:`~repro.core.serialize.ScheduleCache`, with single-flight
  compilation;
* :class:`InferenceSession` — owns one compiled workload (compile through
  the cache, lower once via the compiled execution engine — or interpret
  with ``engine="interpreter"`` — execute requests, degrade gracefully);
* :func:`compile_model_parallel` — per-subprogram parallel compilation
  with a deterministic merge matching the serial path;
* :class:`FusionServer` — thread-pooled front-end with dynamic batching
  and per-request timeouts;
* :class:`ServeMetrics` — the counters/histograms behind ``repro serve``'s
  serve-stats report.
"""

from .batching import (
    InvalidRequestError,
    Overloaded,
    Request,
    RequestQueue,
    WorkerCrashed,
    batch_key,
    validate_feeds,
)
from .cache import TieredScheduleCache
from .filelock import HAVE_FCNTL, FileLock
from .metrics import Histogram, ServeMetrics
from .parallel import compile_model_parallel, default_max_workers
from .server import FusionServer, ServerError
from .session import (
    ENGINE_COMPILED,
    ENGINE_INTERPRETER,
    ENGINES,
    InferenceSession,
    SessionError,
    SessionInfo,
    SessionReply,
)

__all__ = [
    "ENGINES",
    "ENGINE_COMPILED",
    "ENGINE_INTERPRETER",
    "FileLock",
    "FusionServer",
    "HAVE_FCNTL",
    "Histogram",
    "WorkerCrashed",
    "InferenceSession",
    "InvalidRequestError",
    "Overloaded",
    "Request",
    "RequestQueue",
    "ServeMetrics",
    "ServerError",
    "SessionError",
    "SessionInfo",
    "SessionReply",
    "TieredScheduleCache",
    "batch_key",
    "validate_feeds",
    "compile_model_parallel",
    "default_max_workers",
]
