"""Request queue and dynamic batcher for the fusion server.

Requests carry a *batch key* (workload name + input shapes).  The batcher
pops the oldest request and then coalesces further same-key requests into
one batch, waiting up to ``max_wait_s`` for stragglers but never exceeding
``max_batch`` — the classic dynamic-batching tradeoff between tail latency
and dispatch amortisation.  Requests with other keys are left queued for
the next dispatch round.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

_seq = itertools.count()


def batch_key(workload: str, feeds: dict[str, np.ndarray]) -> tuple:
    """Coalescing key: workload plus every input's shape."""
    shapes = tuple(sorted((name, np.asarray(arr).shape)
                          for name, arr in feeds.items()))
    return (workload, shapes)


@dataclass
class Request:
    """One in-flight inference request."""

    workload: str
    feeds: dict[str, np.ndarray]
    timeout_s: float | None = None
    seq: int = field(default_factory=lambda: next(_seq))
    enqueued_at: float = field(default_factory=time.monotonic)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)
    reply: Any = None
    error: Exception | None = None

    @property
    def key(self) -> tuple:
        return batch_key(self.workload, self.feeds)

    def remaining(self) -> float | None:
        """Seconds left before this request's deadline (None = unbounded)."""
        if self.timeout_s is None:
            return None
        return self.timeout_s - (time.monotonic() - self.enqueued_at)

    # -- completion (server side) --------------------------------------

    def resolve(self, reply) -> None:
        self.reply = reply
        self._done.set()

    def fail(self, error: Exception) -> None:
        self.error = error
        self._done.set()

    # -- waiting (client side) -----------------------------------------

    def result(self, timeout: float | None = None):
        """Block for the reply; raises the server-side error if any."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.seq} for {self.workload!r} still pending")
        if self.error is not None:
            raise self.error
        return self.reply

    def done(self) -> bool:
        return self._done.is_set()


class RequestQueue:
    """FIFO of requests with key-aware extraction under one condition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._items: list[Request] = []
        self._closed = False

    def put(self, request: Request) -> int:
        """Enqueue; returns the queue depth *after* insertion."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            self._items.append(request)
            depth = len(self._items)
            self._cond.notify()
            return depth

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def drain_pending(self) -> list[Request]:
        """Remove and return everything still queued (for abrupt stops)."""
        with self._cond:
            pending = list(self._items)
            self._items.clear()
            return pending

    # ------------------------------------------------------------------
    # Batch extraction
    # ------------------------------------------------------------------

    def take_batch(self, max_batch: int, max_wait_s: float,
                   poll_s: float = 0.0005) -> list[Request]:
        """Dequeue one dynamic batch (empty list once closed and drained).

        Blocks for the first request; then keeps absorbing requests with
        the same batch key until the batch is full or ``max_wait_s`` has
        elapsed since the batch opened.
        """
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if not self._items:
                return []
            head = self._items.pop(0)
        batch = [head]
        deadline = time.monotonic() + max_wait_s
        while len(batch) < max_batch:
            with self._cond:
                matched = None
                for i, req in enumerate(self._items):
                    if req.key == head.key:
                        matched = self._items.pop(i)
                        break
                closed = self._closed
            if matched is not None:
                batch.append(matched)
                continue
            if closed or time.monotonic() >= deadline:
                break
            time.sleep(poll_s)
        return batch
