"""Request queue and dynamic batcher for the fusion server.

Requests carry a *batch key* (workload name + input shapes).  The batcher
pops the oldest request and then coalesces further same-key requests into
one batch, waiting up to ``max_wait_s`` for stragglers but never exceeding
``max_batch`` — the classic dynamic-batching tradeoff between tail latency
and dispatch amortisation.  Requests with other keys are left queued for
the next dispatch round.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

_seq = itertools.count()


class Overloaded(RuntimeError):
    """Typed load-shed rejection: the request queue is at its bound.

    Raised at submit time — the request never entered the queue, so
    retrying later (or against another replica) is always safe.
    """

    def __init__(self, depth: int, bound: int) -> None:
        super().__init__(
            f"request queue at depth bound ({depth}/{bound}); shed")
        self.depth = depth
        self.bound = bound


class InvalidRequestError(ValueError):
    """Typed rejection for malformed request feeds (pre-queue)."""


class WorkerCrashed(RuntimeError):
    """A request was in flight on a worker (thread or process) that died.

    The request was dispatched but never answered: it may or may not have
    executed, so the submitter must treat it as *failed with unknown
    side effects* and decide about retrying (inference is idempotent, so
    retrying is safe here).  Raised instead of letting the submitter hang
    in ``Request.result()`` until its timeout.
    """

    def __init__(self, worker: str, detail: str = "") -> None:
        super().__init__(
            f"worker {worker!r} died with this request in flight"
            + (f": {detail}" if detail else ""))
        self.worker = worker


def validate_feeds(feeds: dict[str, np.ndarray],
                   required=None) -> None:
    """Reject garbage feeds before they reach the batcher.

    Non-finite values and non-numeric dtypes would surface deep in the
    engine as execution failures (and wrongly trip the circuit breaker);
    catching them at submit time turns them into an immediate, typed
    client error instead.
    """
    if not isinstance(feeds, dict):
        raise InvalidRequestError(
            f"feeds must be a dict of arrays, got {type(feeds).__name__}")
    for name, value in feeds.items():
        arr = np.asarray(value)
        if arr.dtype.kind not in "fiub":
            raise InvalidRequestError(
                f"feed {name!r} has unsupported dtype {arr.dtype} "
                f"(would not cast cleanly to the engine dtype)")
        if arr.dtype.kind == "f" and not np.isfinite(arr).all():
            raise InvalidRequestError(
                f"feed {name!r} contains non-finite values")
    if required is not None:
        missing = sorted(set(required) - set(feeds))
        if missing:
            raise InvalidRequestError(
                f"missing required input feeds: {missing}")


def batch_key(workload: str, feeds: dict[str, np.ndarray]) -> tuple:
    """Coalescing key: workload plus every input's shape."""
    shapes = tuple(sorted((name, np.asarray(arr).shape)
                          for name, arr in feeds.items()))
    return (workload, shapes)


@dataclass
class Request:
    """One in-flight inference request."""

    workload: str
    feeds: dict[str, np.ndarray]
    timeout_s: float | None = None
    seq: int = field(default_factory=lambda: next(_seq))
    enqueued_at: float = field(default_factory=time.monotonic)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)
    _resolve_lock: threading.Lock = field(default_factory=threading.Lock,
                                          repr=False)
    reply: Any = None
    error: Exception | None = None
    #: Completion attempts (resolve + fail).  Exactly 1 for a healthy
    #: request; the chaos harness asserts no request is ever answered
    #: twice.  First completion wins, later ones only bump the count.
    resolutions: int = 0
    #: Optional completion hook, called exactly once — after the first
    #: resolve/fail, outside the resolve lock.  The cluster worker uses
    #: it to push replies back over the supervisor pipe and the load
    #: harness to timestamp completions without polling.  Keep it cheap
    #: and non-raising; it runs on the answering worker's thread.
    on_done: Callable[["Request"], None] | None = field(default=None,
                                                       repr=False)
    #: Absolute monotonic deadline (end-to-end budget).  When set it wins
    #: over ``timeout_s``: the clock was anchored once at ingress and is
    #: *not* restarted by re-enqueues or process hops, so time spent in a
    #: supervisor queue or on the wire counts against the budget.  The
    #: server also refuses to *publish* a result past this deadline (the
    #: plain ``timeout_s`` path keeps its lenient legacy semantics).
    deadline_s: float | None = None

    @property
    def key(self) -> tuple:
        return batch_key(self.workload, self.feeds)

    def remaining(self) -> float | None:
        """Seconds left before this request's deadline (None = unbounded)."""
        if self.deadline_s is not None:
            return self.deadline_s - time.monotonic()
        if self.timeout_s is None:
            return None
        return self.timeout_s - (time.monotonic() - self.enqueued_at)

    # -- completion (server side) --------------------------------------

    def _first_completion(self) -> bool:
        with self._resolve_lock:
            self.resolutions += 1
            return self.resolutions == 1

    def resolve(self, reply) -> None:
        if self._first_completion():
            self.reply = reply
            self._done.set()
            self._notify_done()
        else:
            self._done.set()

    def fail(self, error: Exception) -> None:
        if self._first_completion():
            self.error = error
            self._done.set()
            self._notify_done()
        else:
            self._done.set()

    def _notify_done(self) -> None:
        if self.on_done is not None:
            try:
                self.on_done(self)
            except Exception:  # noqa: BLE001 — a hook must not kill a worker
                pass

    # -- waiting (client side) -----------------------------------------

    def result(self, timeout: float | None = None):
        """Block for the reply; raises the server-side error if any."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.seq} for {self.workload!r} still pending")
        if self.error is not None:
            raise self.error
        return self.reply

    def done(self) -> bool:
        return self._done.is_set()


class RequestQueue:
    """FIFO of requests with key-aware extraction under one condition.

    ``on_expired`` (optional) is called — with the queue lock held, after
    the request has been failed with :class:`TimeoutError` — for every
    request whose deadline passed before it could be dispatched.

    ``max_depth`` (optional) bounds the queue: a :meth:`put` that would
    exceed it raises :class:`Overloaded` instead of growing latency
    without limit — admission control, not backpressure-by-blocking.
    """

    def __init__(self, on_expired: Callable[[Request], None] | None = None,
                 max_depth: int | None = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None)")
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._items: list[Request] = []
        self._closed = False
        self._on_expired = on_expired
        self.max_depth = max_depth

    def put(self, request: Request) -> int:
        """Enqueue; returns the queue depth *after* insertion.

        Raises :class:`Overloaded` when the depth bound is reached — the
        request is *not* enqueued and will never be dispatched.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            if (self.max_depth is not None
                    and len(self._items) >= self.max_depth):
                raise Overloaded(len(self._items), self.max_depth)
            self._items.append(request)
            depth = len(self._items)
            # notify_all, not notify: a single wake-up could land on a
            # coalescing worker whose batch key doesn't match while an
            # idle worker (who could dispatch this request) sleeps on.
            self._cond.notify_all()
            return depth

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def drain_pending(self) -> list[Request]:
        """Remove and return everything still queued (for abrupt stops)."""
        with self._cond:
            pending = list(self._items)
            self._items.clear()
            return pending

    # ------------------------------------------------------------------
    # Batch extraction
    # ------------------------------------------------------------------

    def _expire(self, request: Request) -> None:
        """Fail a request whose deadline passed while it sat queued."""
        budget = (f"after {request.timeout_s:.3g}s"
                  if request.timeout_s is not None
                  else "past its end-to-end deadline")
        request.fail(TimeoutError(
            f"request {request.seq} for {request.workload!r} expired "
            f"{budget} before dispatch"))
        if self._on_expired is not None:
            self._on_expired(request)

    def _pop_live(self, key: tuple | None = None) -> Request | None:
        """Pop the oldest non-expired request (same-``key`` only if given).

        Expired requests encountered during the scan are failed and
        dropped so a dead deadline is never dispatched.  Caller must hold
        the lock.
        """
        i = 0
        while i < len(self._items):
            req = self._items[i]
            if req.done():
                # Cancelled (or hedge-lost) while queued: the resolution
                # already happened elsewhere, just drop it silently.
                del self._items[i]
                continue
            remaining = req.remaining()
            if remaining is not None and remaining <= 0:
                del self._items[i]
                self._expire(req)
                continue
            if key is None or req.key == key:
                del self._items[i]
                return req
            i += 1
        return None

    def take_batch(self, max_batch: int, max_wait_s: float,
                   ) -> list[Request]:
        """Dequeue one dynamic batch (empty list once closed and drained).

        Blocks on the condition for the first live request — requests
        whose deadline already passed are failed with ``TimeoutError`` at
        dequeue, never dispatched — then keeps absorbing same-key
        requests until the batch is full or ``max_wait_s`` has elapsed
        since the batch opened.  All waiting happens in
        ``Condition.wait``: enqueues wake coalescers immediately and idle
        workers burn no CPU.
        """
        with self._cond:
            head = self._pop_live()
            while head is None:
                if self._closed:
                    return []
                self._cond.wait()
                head = self._pop_live()
            batch = [head]
            deadline = time.monotonic() + max_wait_s
            while len(batch) < max_batch and not self._closed:
                matched = self._pop_live(key=head.key)
                if matched is not None:
                    batch.append(matched)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        return batch
