"""Request queue and dynamic batcher for the fusion server.

Requests carry a *batch key* (workload name + input shapes).  The batcher
pops the oldest request and then coalesces further same-key requests into
one batch, waiting up to ``max_wait_s`` for stragglers but never exceeding
``max_batch`` — the classic dynamic-batching tradeoff between tail latency
and dispatch amortisation.  Requests with other keys are left queued for
the next dispatch round.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

_seq = itertools.count()


def batch_key(workload: str, feeds: dict[str, np.ndarray]) -> tuple:
    """Coalescing key: workload plus every input's shape."""
    shapes = tuple(sorted((name, np.asarray(arr).shape)
                          for name, arr in feeds.items()))
    return (workload, shapes)


@dataclass
class Request:
    """One in-flight inference request."""

    workload: str
    feeds: dict[str, np.ndarray]
    timeout_s: float | None = None
    seq: int = field(default_factory=lambda: next(_seq))
    enqueued_at: float = field(default_factory=time.monotonic)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)
    reply: Any = None
    error: Exception | None = None

    @property
    def key(self) -> tuple:
        return batch_key(self.workload, self.feeds)

    def remaining(self) -> float | None:
        """Seconds left before this request's deadline (None = unbounded)."""
        if self.timeout_s is None:
            return None
        return self.timeout_s - (time.monotonic() - self.enqueued_at)

    # -- completion (server side) --------------------------------------

    def resolve(self, reply) -> None:
        self.reply = reply
        self._done.set()

    def fail(self, error: Exception) -> None:
        self.error = error
        self._done.set()

    # -- waiting (client side) -----------------------------------------

    def result(self, timeout: float | None = None):
        """Block for the reply; raises the server-side error if any."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.seq} for {self.workload!r} still pending")
        if self.error is not None:
            raise self.error
        return self.reply

    def done(self) -> bool:
        return self._done.is_set()


class RequestQueue:
    """FIFO of requests with key-aware extraction under one condition.

    ``on_expired`` (optional) is called — with the queue lock held, after
    the request has been failed with :class:`TimeoutError` — for every
    request whose deadline passed before it could be dispatched.
    """

    def __init__(self, on_expired: Callable[[Request], None] | None = None,
                 ) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._items: list[Request] = []
        self._closed = False
        self._on_expired = on_expired

    def put(self, request: Request) -> int:
        """Enqueue; returns the queue depth *after* insertion."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            self._items.append(request)
            depth = len(self._items)
            # notify_all, not notify: a single wake-up could land on a
            # coalescing worker whose batch key doesn't match while an
            # idle worker (who could dispatch this request) sleeps on.
            self._cond.notify_all()
            return depth

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def drain_pending(self) -> list[Request]:
        """Remove and return everything still queued (for abrupt stops)."""
        with self._cond:
            pending = list(self._items)
            self._items.clear()
            return pending

    # ------------------------------------------------------------------
    # Batch extraction
    # ------------------------------------------------------------------

    def _expire(self, request: Request) -> None:
        """Fail a request whose deadline passed while it sat queued."""
        request.fail(TimeoutError(
            f"request {request.seq} for {request.workload!r} expired "
            f"after {request.timeout_s:.3g}s before dispatch"))
        if self._on_expired is not None:
            self._on_expired(request)

    def _pop_live(self, key: tuple | None = None) -> Request | None:
        """Pop the oldest non-expired request (same-``key`` only if given).

        Expired requests encountered during the scan are failed and
        dropped so a dead deadline is never dispatched.  Caller must hold
        the lock.
        """
        i = 0
        while i < len(self._items):
            req = self._items[i]
            remaining = req.remaining()
            if remaining is not None and remaining <= 0:
                del self._items[i]
                self._expire(req)
                continue
            if key is None or req.key == key:
                del self._items[i]
                return req
            i += 1
        return None

    def take_batch(self, max_batch: int, max_wait_s: float,
                   ) -> list[Request]:
        """Dequeue one dynamic batch (empty list once closed and drained).

        Blocks on the condition for the first live request — requests
        whose deadline already passed are failed with ``TimeoutError`` at
        dequeue, never dispatched — then keeps absorbing same-key
        requests until the batch is full or ``max_wait_s`` has elapsed
        since the batch opened.  All waiting happens in
        ``Condition.wait``: enqueues wake coalescers immediately and idle
        workers burn no CPU.
        """
        with self._cond:
            head = self._pop_live()
            while head is None:
                if self._closed:
                    return []
                self._cond.wait()
                head = self._pop_live()
            batch = [head]
            deadline = time.monotonic() + max_wait_s
            while len(batch) < max_batch and not self._closed:
                matched = self._pop_live(key=head.key)
                if matched is not None:
                    batch.append(matched)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        return batch
