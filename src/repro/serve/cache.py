"""Two-tier compile cache: in-memory LRU over the on-disk schedule cache.

Tier 1 is a bounded LRU of live :class:`~repro.core.schedule.ProgramSchedule`
objects (no deserialisation cost on hit); tier 2 is the persistent
:class:`~repro.core.serialize.ScheduleCache` shared across processes.  A
miss in both tiers compiles under a per-key *single-flight* lock so that
concurrent sessions racing on the same cold graph run one autotuning
campaign, not N — the others block and reuse the winner's schedule.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

from ..core.schedule import ProgramSchedule
from ..core.serialize import ScheduleCache, SerializeError, cache_key
from ..ir.graph import DataflowGraph
from ..obs import span as obs_span
from ..resilience import faults as _faults
from ..resilience.retry import RetryPolicy
from .filelock import HAVE_FCNTL, FileLock
from .metrics import ServeMetrics

CompileFn = Callable[[], ProgramSchedule]

#: Failpoints on the cold-resolution path (armed only by tests/chaos).
FP_DISK_GET = _faults.register("serve.cache.disk_get")
FP_DISK_PUT = _faults.register("serve.cache.disk_put")
FP_COMPILE = _faults.register("serve.cache.compile")

#: Disk-tier errors that count as a miss instead of failing the request.
_DISK_ERRORS = (OSError, SerializeError, _faults.FaultInjected)


class _Flight:
    """Per-key single-flight state: a lock plus a waiter refcount.

    The refcount lets the *last* thread through drop the registry entry —
    without it, one lock per unique key would leak forever; dropping the
    entry eagerly instead would let a late waiter race a fresh lock while
    the original holders still serialize on the old one.
    """

    __slots__ = ("lock", "waiters")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.waiters = 0


class TieredScheduleCache:
    """Thread-safe memory-LRU + disk compile cache."""

    def __init__(self, capacity: int = 64,
                 disk: ScheduleCache | None = None,
                 metrics: ServeMetrics | None = None,
                 retry_policy: RetryPolicy | None = None,
                 lock_timeout_s: float = 30.0) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk = disk
        #: Bound on waiting for another *process* compiling the same key
        #: (see :meth:`_resolve_cold`).  On timeout we compile anyway: a
        #: stuck fleet member may cost a duplicate campaign, never a hang.
        self.lock_timeout_s = lock_timeout_s
        self.metrics = metrics or ServeMetrics()
        #: Backoff policy around compile attempts (and, via the session,
        #: plan lowering): transient compiler faults retry instead of
        #: degrading the session for its whole lifetime.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=0.005, max_delay_s=0.05)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, ProgramSchedule]" = OrderedDict()
        self._inflight: dict[str, _Flight] = {}

    # ------------------------------------------------------------------
    # Key derivation (matches ScheduleCache's on-disk key inputs)
    # ------------------------------------------------------------------

    @staticmethod
    def key_for(graph: DataflowGraph, gpu_name: str,
                options_repr: str = "") -> str:
        return cache_key(graph, gpu_name, options_repr)

    # ------------------------------------------------------------------
    # Tier access
    # ------------------------------------------------------------------

    def _memory_get(self, key: str) -> ProgramSchedule | None:
        with self._lock:
            sched = self._entries.get(key)
            if sched is not None:
                self._entries.move_to_end(key)
            return sched

    def _memory_put(self, key: str, schedule: ProgramSchedule) -> None:
        with self._lock:
            self._entries[key] = schedule
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.metrics.inc("cache.memory_evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # The cache protocol
    # ------------------------------------------------------------------

    def get_or_compile(self, graph: DataflowGraph, gpu_name: str,
                       compile_fn: CompileFn,
                       options_repr: str = "",
                       deadline_s: float | None = None) -> ProgramSchedule:
        """Return the schedule for ``graph`` on ``gpu_name``.

        Resolution order: memory LRU, disk cache, ``compile_fn()`` (which
        runs at most once per key at a time; losers of the race reuse the
        winner's result).  Whatever tier resolves, the result is promoted
        into every tier above it.

        ``deadline_s`` (absolute monotonic, optional) caps the compile
        retry backoff: a retry sleep that would cross the deadline is
        skipped and the last compile error raised immediately, so the
        caller can degrade while its request still has budget.
        """
        key = self.key_for(graph, gpu_name, options_repr)
        with obs_span("cache_lookup", category="serve",
                      workload=graph.name) as sp:
            sched = self._memory_get(key)
            if sched is not None:
                self.metrics.inc("cache.memory_hits")
                sp.note(tier="memory")
                return sched

            # Single-flight: one compile (or disk load) per key at a time.
            with self._lock:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = self._inflight[key] = _Flight()
                flight.waiters += 1
            try:
                with flight.lock:
                    return self._resolve_cold(key, graph, gpu_name,
                                              compile_fn, options_repr, sp,
                                              deadline_s)
            finally:
                with self._lock:
                    flight.waiters -= 1
                    if (flight.waiters == 0
                            and self._inflight.get(key) is flight):
                        del self._inflight[key]

    def _resolve_cold(self, key: str, graph: DataflowGraph, gpu_name: str,
                      compile_fn: CompileFn, options_repr: str,
                      sp, deadline_s: float | None = None) -> ProgramSchedule:
        """Resolve a memory miss while holding the key's flight lock."""
        sched = self._memory_get(key)
        if sched is not None:           # raced: the winner already filled it
            self.metrics.inc("cache.memory_hits")
            sp.note(tier="memory")
            return sched
        if self.disk is None:
            return self._compile_and_store(graph, gpu_name, compile_fn,
                                           options_repr, key, sp, deadline_s)
        sched = self._disk_get(key, graph, gpu_name, options_repr, sp)
        if sched is not None:
            return sched
        # Cross-process single-flight: the in-process flight lock cannot
        # see other fleet members, so an advisory file lock per key makes
        # "compile once fleet-wide" hold across process boundaries.  A
        # waiter that wins the lock re-checks the disk first — the
        # previous holder usually compiled and persisted while we waited.
        # A timeout (live-but-stuck holder) falls back to compiling
        # unlocked: worst case one duplicate campaign, never a wedged
        # fleet; a *crashed* holder releases the flock automatically.
        lock = FileLock(self.disk.lock_path(key),
                        timeout_s=self.lock_timeout_s)
        acquired = lock.acquire()
        try:
            if acquired:
                # Only a contended acquire warrants a second disk read:
                # an instantly-free lock means nobody was compiling this
                # key when we checked, so the miss above still stands.
                if lock.waited:
                    sched = self._disk_get(key, graph, gpu_name,
                                           options_repr, sp)
                    if sched is not None:
                        sp.note(fleet_lock="hit_after_wait")
                        return sched
            elif HAVE_FCNTL:    # a real timeout, not a platform gap
                self.metrics.inc("cache.lock_timeouts")
                sp.note(fleet_lock="timeout")
            return self._compile_and_store(graph, gpu_name, compile_fn,
                                           options_repr, key, sp, deadline_s)
        finally:
            lock.release()

    def _disk_get(self, key: str, graph: DataflowGraph, gpu_name: str,
                  options_repr: str, sp) -> ProgramSchedule | None:
        """Disk-tier lookup; a broken disk tier must never fail the
        request: an I/O or deserialisation error is a miss (we can still
        compile)."""
        try:
            _faults.fire(FP_DISK_GET)
            sched = self.disk.get(graph, gpu_name, options_repr)
        except _DISK_ERRORS as exc:
            self.metrics.inc("cache.disk_errors")
            sp.note(disk_error=f"{type(exc).__name__}: {exc}")
            sched = None
        if sched is None:
            return None
        self.metrics.inc("cache.disk_hits")
        sp.note(tier="disk")
        self._memory_put(key, sched)
        return sched

    def _compile_and_store(self, graph: DataflowGraph, gpu_name: str,
                           compile_fn: CompileFn, options_repr: str,
                           key: str, sp,
                           deadline_s: float | None = None) -> ProgramSchedule:
        self.metrics.inc("cache.compile_misses")
        sp.note(tier="compile")
        t0 = time.perf_counter()
        sched = self._compile_with_retry(compile_fn, sp, deadline_s)
        self.metrics.observe_compile(time.perf_counter() - t0)
        if self.disk is not None:
            # Same policy on the write side: the compiled schedule is
            # already in hand, a failed persist only loses warm restarts.
            try:
                _faults.fire(FP_DISK_PUT)
                self.disk.put(graph, gpu_name, sched, options_repr)
            except _DISK_ERRORS as exc:
                self.metrics.inc("cache.disk_errors")
                sp.note(disk_put_error=f"{type(exc).__name__}: {exc}")
        self._memory_put(key, sched)
        return sched

    def _compile_with_retry(self, compile_fn: CompileFn, sp,
                            deadline_s: float | None = None,
                            ) -> ProgramSchedule:
        def attempt() -> ProgramSchedule:
            _faults.fire(FP_COMPILE)
            return compile_fn()

        def on_retry(attempt_no: int, exc: BaseException,
                     delay_s: float) -> None:
            self.metrics.inc("cache.compile_retries")
            sp.note(compile_retries=attempt_no,
                    last_error=f"{type(exc).__name__}: {exc}")

        def on_deadline(attempt_no: int, exc: BaseException,
                        delay_s: float) -> None:
            self.metrics.inc("retry.deadline_capped")
            sp.note(retry_deadline_capped=attempt_no)

        return self.retry_policy.call(attempt, on_retry=on_retry,
                                      deadline_s=deadline_s,
                                      on_deadline=on_deadline)

    def inflight_keys(self) -> int:
        """Live single-flight registry size (0 whenever nothing compiles)."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> dict[str, int]:
        m = self.metrics
        return {
            "memory_hits": m.get("cache.memory_hits"),
            "disk_hits": m.get("cache.disk_hits"),
            "compile_misses": m.get("cache.compile_misses"),
            "compile_retries": m.get("cache.compile_retries"),
            "disk_errors": m.get("cache.disk_errors"),
            "lock_timeouts": m.get("cache.lock_timeouts"),
            "memory_evictions": m.get("cache.memory_evictions"),
            "resident": len(self),
            "inflight": self.inflight_keys(),
        }
