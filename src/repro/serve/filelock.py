"""Advisory cross-process file locks for the disk schedule cache.

The disk tier of the compile cache is shared by every serving process in
a fleet (and every worker of a :class:`~repro.cluster.ClusterSupervisor`).
``os.replace`` already makes *writes* atomic, but atomicity alone does
not stop two processes that both cold-miss the same key from each running
a full autotuning campaign.  :class:`FileLock` extends single-flight
across process boundaries with a ``fcntl.flock`` advisory lock per cache
key.

Failure semantics are deliberately forgiving:

* a **crashed lock holder cannot wedge the fleet** — the kernel releases
  a ``flock`` the moment the holder's fd closes, including on SIGKILL;
* a **live but stuck** holder is bounded by ``timeout_s``: a waiter that
  cannot acquire within the timeout proceeds *without* the lock (it may
  duplicate one compile — correctness is unaffected because the disk
  ``put`` is atomic and idempotent);
* on platforms without ``fcntl`` (Windows) the lock degrades to a no-op
  and in-process threads still single-flight through
  :class:`~repro.serve.cache.TieredScheduleCache`'s own registry.

Lock files live next to the cache entries (``<key>.lock``) and are tiny
and append-free; they are never deleted while in use (deleting an flock'd
file re-opens a race on the inode).
"""

from __future__ import annotations

import os
import time

try:  # pragma: no cover - import guard exercised only on exotic platforms
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None  # type: ignore[assignment]

#: True when real advisory locking is available on this platform.
HAVE_FCNTL = fcntl is not None


class FileLock:
    """One advisory lock on ``path``, acquired with a bounded wait.

    Usage::

        lock = FileLock(path, timeout_s=5.0)
        acquired = lock.acquire()   # False ⇒ timed out, proceed unlocked
        try:
            ...
        finally:
            lock.release()

    ``acquire``/``release`` are not thread-safe on one instance — create
    one :class:`FileLock` per acquisition attempt (they are cheap).
    """

    def __init__(self, path: str | os.PathLike,
                 timeout_s: float = 30.0,
                 poll_s: float = 0.005) -> None:
        if timeout_s < 0:
            raise ValueError("timeout_s must be >= 0")
        self.path = os.fspath(path)
        self.timeout_s = timeout_s
        self.poll_s = max(1e-4, poll_s)
        self._fd: int | None = None
        #: True when the last :meth:`acquire` had to wait for another
        #: holder.  Callers use it to decide whether a competitor could
        #: have finished the protected work in the meantime (the cache
        #: re-checks disk only then).
        self.waited = False

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> bool:
        """Take the lock; False when the timeout elapsed (or no fcntl).

        The wait is a non-blocking poll loop rather than a blocking
        ``flock`` so a stuck holder costs at most ``timeout_s`` — the
        caller then falls back to compiling unlocked.
        """
        if fcntl is None:
            return False
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path!r} already held")
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    return False
                self.waited = True
                time.sleep(self.poll_s)
                continue
            self._fd = fd
            return True

    def release(self) -> None:
        """Drop the lock (no-op when it was never acquired)."""
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)  # type: ignore[union-attr]
        finally:
            os.close(fd)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
