"""Terminal plotting: render experiment results as ASCII charts.

No plotting stack is available offline, so the figures render as labelled
horizontal bars and series grids — enough to eyeball the paper's shapes
(who wins, where the crossovers are) straight from a terminal.
"""

from __future__ import annotations

from .reporting import ExperimentResult

_BAR = "█"
_HALF = "▌"


def bar_chart(labels: list[str], values: list[float], title: str = "",
              width: int = 48, unit: str = "x") -> str:
    """Horizontal bar chart; bars scale to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    finite = [v for v in values if v is not None]
    peak = max(finite) if finite else 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if value is None:
            lines.append(f"{label:>{label_w}} │ -")
            continue
        frac = value / peak if peak else 0.0
        cells = frac * width
        bar = _BAR * int(cells)
        if cells - int(cells) >= 0.5:
            bar += _HALF
        lines.append(f"{label:>{label_w}} │{bar} {value:.2f}{unit}")
    return "\n".join(lines)


def series_chart(result: ExperimentResult, x: str, y: str,
                 group_by: str | None = None, width: int = 48,
                 title: str | None = None) -> str:
    """One bar row per x point, optionally one chart per group."""
    chunks = []
    if group_by is None:
        groups = {None: result.rows}
    else:
        groups = {}
        for row in result.rows:
            groups.setdefault(row.get(group_by), []).append(row)
    for key, rows in groups.items():
        head = title or f"{result.experiment}: {y} vs {x}"
        if key is not None:
            head += f"  [{group_by}={key}]"
        labels = [str(r.get(x)) for r in rows]
        values = [r.get(y) for r in rows]
        chunks.append(bar_chart(labels, values, title=head, width=width))
    return "\n\n".join(chunks)


def comparison_chart(result: ExperimentResult, label_col: str,
                     value_cols: list[str], width: int = 40) -> str:
    """Grouped comparison: one section per row, one bar per column."""
    sections = []
    for row in result.rows:
        head = " / ".join(str(row.get(c)) for c in [label_col])
        labels = [c for c in value_cols]
        values = [row.get(c) for c in value_cols]
        sections.append(bar_chart(labels, values, title=head, width=width))
    return "\n\n".join(sections)
