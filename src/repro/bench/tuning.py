"""Tuning-amortization benchmark: cold vs warm TuneDB compile walls.

Compiles a model zoo three ways and compares the *simulated tuning
wall-clock* (the §6.5 campaign accounting behind Tables 4/5):

1. **baseline** — no database, plain enumeration-order campaigns;
2. **cold**     — guided tuner against a fresh database directory
                  (within-compile replay across partition candidates +
                  feature-guided candidate ordering);
3. **warm**     — a *new* :class:`~repro.tune.TuneDB` instance over the
                  same directory (forces the disk tier — this is the
                  restart / sibling-worker case), where every kernel
                  replays as a one-run confirmation.

Alongside the walls it checks the invariant that makes the database safe
to deploy: the chosen configuration of every kernel is identical across
all three runs, so Figures 11–13 and the runtime tables are unchanged —
the database buys compile time, never schedule quality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..hw.specs import GPUSpec
from ..models.zoo import build_model
from ..pipeline import compile_model_for
from ..serve.metrics import ServeMetrics
from ..tune import TuneDB

#: Zoo slice the benchmark (and the CI smoke) compiles.  bert+albert on
#: purpose: distinct models with structurally identical blocks, the
#: cross-model reuse case the database exists for.
DEFAULT_MODELS = ("bert", "albert")


@dataclass
class TuningBenchReport:
    """Everything `repro bench-tuning` prints / writes as JSON."""

    models: list[str]
    gpu: str
    batch: int
    seq: int
    #: model -> {"baseline": s, "cold": s, "warm": s} simulated walls.
    walls: dict[str, dict[str, float]] = field(default_factory=dict)
    totals: dict[str, float] = field(default_factory=dict)
    #: baseline_wall / cold_wall (guided search speedup, cold DB).
    cold_reduction: float = 0.0
    #: baseline_wall / warm_wall (replay speedup, warm DB).
    warm_reduction: float = 0.0
    configs_identical: bool = False
    tunedb: dict = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    wall_saved_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "models": self.models, "gpu": self.gpu,
            "batch": self.batch, "seq": self.seq,
            "walls": self.walls, "totals": self.totals,
            "cold_reduction": self.cold_reduction,
            "warm_reduction": self.warm_reduction,
            "configs_identical": self.configs_identical,
            "tunedb": self.tunedb,
            "counters": self.counters,
            "wall_saved_s": self.wall_saved_s,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def render(self) -> str:
        lines = ["tuning-bench (simulated tuning wall-clock, seconds)",
                 "=" * 51]
        lines.append(f"{'model':<10} {'baseline':>10} {'cold DB':>10} "
                     f"{'warm DB':>10}")
        for model in self.models:
            w = self.walls[model]
            lines.append(f"{model:<10} {w['baseline']:>10.4f} "
                         f"{w['cold']:>10.4f} {w['warm']:>10.4f}")
        t = self.totals
        lines.append(f"{'total':<10} {t['baseline']:>10.4f} "
                     f"{t['cold']:>10.4f} {t['warm']:>10.4f}")
        lines.append(f"cold-DB reduction: {self.cold_reduction:.2f}x   "
                     f"warm-DB reduction: {self.warm_reduction:.2f}x")
        lines.append(f"configs identical across runs: "
                     f"{self.configs_identical}")
        lines.append(f"tunedb: {self.counters.get('tunedb.hits', 0)} hits, "
                     f"{self.counters.get('tunedb.misses', 0)} misses, "
                     f"{self.counters.get('tunedb.warm_starts', 0)} "
                     f"warm starts, {self.counters.get('tunedb.guided', 0)} "
                     f"guided; {self.wall_saved_s:.4f}s saved")
        return "\n".join(lines)


def _config_signature(model) -> list[tuple]:
    """Order-stable (kernel, chosen config) signature of a compiled model."""
    sig = []
    for sub in model.subprograms:
        for kernel in sub.schedule.kernels:
            cfg = kernel.config
            sig.append((kernel.name,
                        None if cfg is None else (cfg.block, cfg.tile)))
    return sig


def run_tuning_bench(db_dir: str,
                     models: tuple[str, ...] = DEFAULT_MODELS,
                     gpu: GPUSpec | None = None,
                     batch: int = 1, seq: int = 64) -> TuningBenchReport:
    """Run the three-way comparison against ``db_dir`` (should be empty
    or fresh — pre-existing entries would flatter the cold run)."""
    if gpu is None:
        from ..hw import AMPERE
        gpu = AMPERE
    report = TuningBenchReport(models=list(models), gpu=gpu.name,
                               batch=batch, seq=seq)
    programs = {m: build_model(m, batch=batch, seq=seq) for m in models}

    baseline_sigs = {}
    for name, program in programs.items():
        compiled = compile_model_for(program, gpu)
        baseline_sigs[name] = _config_signature(compiled)
        report.walls[name] = {
            "baseline": compiled.stats.tuning_wall_time}

    metrics = ServeMetrics()
    cold_db = TuneDB(db_dir)
    identical = True
    for name, program in programs.items():
        compiled = compile_model_for(program, gpu, tune_db=cold_db,
                                     tune_metrics=metrics)
        identical &= _config_signature(compiled) == baseline_sigs[name]
        report.walls[name]["cold"] = compiled.stats.tuning_wall_time

    # Fresh TuneDB instance on the same directory: an empty LRU forces
    # every lookup through the disk tier, modelling a process restart or
    # a sibling fleet member.
    warm_db = TuneDB(db_dir)
    for name, program in programs.items():
        compiled = compile_model_for(program, gpu, tune_db=warm_db,
                                     tune_metrics=metrics)
        identical &= _config_signature(compiled) == baseline_sigs[name]
        report.walls[name]["warm"] = compiled.stats.tuning_wall_time

    report.configs_identical = identical
    for phase in ("baseline", "cold", "warm"):
        report.totals[phase] = sum(report.walls[m][phase] for m in models)
    report.cold_reduction = (report.totals["baseline"]
                             / max(report.totals["cold"], 1e-12))
    report.warm_reduction = (report.totals["baseline"]
                             / max(report.totals["warm"], 1e-12))
    report.tunedb = warm_db.disk_stats()
    snap = metrics.snapshot()
    report.counters = {k: v for k, v in snap.items()
                       if k.startswith("tunedb.") and isinstance(v, int)}
    report.wall_saved_s = metrics.get_gauge("tunedb.wall_saved_s")
    return report
