"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """One regenerated table/figure: labelled rows of measurements."""

    experiment: str          # e.g. "fig13"
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list:
        return [r.get(name) for r in self.rows]

    def filtered(self, **match) -> list[dict]:
        return [r for r in self.rows
                if all(r.get(k) == v for k, v in match.items())]

    def render(self, float_fmt: str = "{:.2f}") -> str:
        def fmt(v) -> str:
            if v is None:
                return "-"
            if isinstance(v, float):
                return float_fmt.format(v)
            return str(v)

        table = [[c for c in self.columns]]
        for row in self.rows:
            table.append([fmt(row.get(c)) for c in self.columns])
        widths = [max(len(r[i]) for r in table) for i in range(len(self.columns))]
        lines = [f"== {self.experiment}: {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(table[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for r in table[1:]:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def geomean(values: list[float]) -> float:
    vals = [v for v in values if v is not None and v > 0]
    if not vals:
        return float("nan")
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))
