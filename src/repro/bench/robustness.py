"""Robustness of the conclusions to the cost model's constants.

Every timing in this reproduction flows through a handful of modelling
constants (GEMM efficiency, SIMT efficiency, DRAM efficiency, the L2 spill
reuse factor).  A conclusion that held only for one magic combination
would be worthless — so this study re-runs the headline comparisons under
perturbed constants and checks that the *orderings* the paper reports
survive:

* fused SpaceFusion beats the unfused PyTorch schedule on MHA;
* SpaceFusion stays within the FlashAttention-2 band;
* the fused LayerNorm beats the unfused pipeline;
* the tile-graph fusion failure at K=1024 stays a SpaceFusion win.
"""

from __future__ import annotations

from contextlib import contextmanager

from .. import hw
from ..baselines import (
    schedule_flash_attention,
    schedule_pytorch,
    schedule_unfused_primitive,
)
from ..hw import ARCHITECTURES
from ..models import layernorm_graph, mha_graph
from ..pipeline import compile_for, simulate
from .reporting import ExperimentResult

#: The model constants under perturbation, with their nominal values.
CONSTANTS = {
    "_GEMM_BASE_EFFICIENCY": 0.70,
    "_SIMT_EFFICIENCY": 0.60,
    "_DRAM_EFFICIENCY": 0.80,
    "_L2_SPILL_REUSE": 0.25,
}


@contextmanager
def perturbed_model(**overrides: float):
    """Temporarily override simulator constants (see CONSTANTS)."""
    sim_mod = hw.simulator
    saved = {}
    try:
        for name, value in overrides.items():
            if name not in CONSTANTS:
                raise KeyError(f"unknown model constant {name!r}")
            saved[name] = getattr(sim_mod, name)
            setattr(sim_mod, name, value)
        yield
    finally:
        for name, value in saved.items():
            setattr(sim_mod, name, value)


def _headline_orderings(arch: str) -> dict[str, bool]:
    gpu = ARCHITECTURES[arch]
    mha = mha_graph(8, 16, 1024, 1024, 64)
    ln = layernorm_graph(4096, 4096)

    fused_mha, _ = compile_for(mha, gpu)
    t_sf = simulate(fused_mha, gpu).time_s
    t_eager = simulate(schedule_pytorch(mha, gpu), gpu).time_s
    t_fa2 = simulate(schedule_flash_attention(mha, gpu, "fa2"), gpu).time_s

    fused_ln, _ = compile_for(ln, gpu)
    t_ln = simulate(fused_ln, gpu).time_s
    t_ln_unfused = simulate(
        schedule_unfused_primitive(ln, gpu, efficiency=1.0), gpu).time_s

    return {
        "mha_fused_beats_eager": t_eager / t_sf > 1.5,
        "mha_within_fa2_band": 0.4 < t_fa2 / t_sf < 2.5,
        "ln_fused_beats_unfused": t_ln_unfused / t_ln > 2.0,
    }


def model_robustness(arch: str = "ampere",
                     scales=(0.5, 0.75, 1.0, 1.5, 2.0)) -> ExperimentResult:
    """Scale each constant independently and re-check the orderings."""
    result = ExperimentResult(
        "robustness", "Conclusion stability under model-constant scaling",
        ["constant", "scale", "mha_fused_beats_eager",
         "mha_within_fa2_band", "ln_fused_beats_unfused"])
    for name, nominal in CONSTANTS.items():
        for scale in scales:
            value = min(nominal * scale, 1.0)
            with perturbed_model(**{name: value}):
                checks = _headline_orderings(arch)
            result.add_row(constant=name, scale=scale, **checks)
    return result
