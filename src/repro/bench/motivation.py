"""The Figure-2 motivation experiment: shape alignment vs SpaceFusion.

The paper's Figure 2 contrasts fusing Softmax-GEMM by aligning
intermediate tile shapes (a ``TileM x K`` intermediate pinned in shared
memory, failing as K grows) with SpaceFusion's dependency-transformed
schedule (Figure 2(d): reordered tiles, memory overlap, fusion surviving
large K).  This experiment plays that contrast out quantitatively across K
on the tile-graph implementation and the real compiler.
"""

from __future__ import annotations

from ..baselines.welder_tilegraph import (
    DEFAULT_TILE,
    group_smem_bytes,
    propagate_tiles,
    schedule_welder,
)
from ..hw import ARCHITECTURES
from ..models import softmax_gemm_graph
from ..pipeline import compile_for, simulate
from .reporting import ExperimentResult


def fig2_motivation(arch: str = "volta",
                    k_values=(256, 512, 1024, 2048, 4096),
                    m: int = 4096, n: int = 64) -> ExperimentResult:
    """Softmax-GEMM fusion across the reduced extent K.

    Columns report, for each K: the aligned intermediate-tile bytes the
    tile-graph schedule must pin in shared memory (the paper's
    ``16 x K`` example), whether alignment still manages a single fused
    kernel, and the modelled speedup of SpaceFusion over the tile-graph
    schedule.
    """
    gpu = ARCHITECTURES[arch]
    result = ExperimentResult(
        "fig2", "Softmax-GEMM: shape alignment vs SpaceFusion",
        ["k", "aligned_tile_kb", "welder_kernels", "welder_fused",
         "spacefusion_kernels", "speedup_vs_welder"])
    for k in k_values:
        graph = softmax_gemm_graph(m, k, n)
        ops = graph.topological_ops()
        plan = propagate_tiles(graph, ops,
                               {d: DEFAULT_TILE for d in graph.dims.names()})
        aligned_kb = group_smem_bytes(graph, ops, plan) / 1024

        welder = schedule_welder(graph, gpu)
        fused, _ = compile_for(graph, gpu)
        # Same launch regime for both: this experiment isolates the fusion
        # capability, not the CUDA-graphs replay advantage.
        t_welder = simulate(welder, gpu, cuda_graphs=False).time_s
        t_sf = simulate(fused, gpu, cuda_graphs=False).time_s
        result.add_row(
            k=k,
            aligned_tile_kb=aligned_kb,
            welder_kernels=welder.num_kernels,
            welder_fused=welder.num_kernels == 1,
            spacefusion_kernels=fused.num_kernels,
            speedup_vs_welder=t_welder / t_sf)
    return result
